"""Pytest bootstrap: make ``src/`` importable without installation.

The library is a normal src-layout package (``pip install -e .`` works where
the ``wheel`` package is available); this shim only exists so the test suite
and benchmarks run in pristine checkouts and offline environments.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
