"""Ablation B — bloom join (design choice of §5.2).

"for equi-join queries, the system employs bloom join algorithm to reduce
the volume of data transmitted through the network."  Measures bytes
shipped and latency for a selective join with the optimization on and off;
results must be identical.
"""

from repro.bench import print_series
from repro.bench.harness import (
    DATA_SCALE,
    SEED,
    bench_compute_model,
    bench_mr_config,
    bench_network_config,
)
from repro.core import BestPeerConfig, BestPeerNetwork
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

NUM_PEERS = 10
SQL = (
    "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_orderdate > DATE '1998-06-01'"
)


def build(bloom_enabled):
    network = BestPeerNetwork(
        TPCH_SCHEMAS,
        SECONDARY_INDICES,
        config=BestPeerConfig(bloom_join_enabled=bloom_enabled),
        mr_config=bench_mr_config(),
        compute_model=bench_compute_model(),
        network_config=bench_network_config(),
    )
    generator = TpchGenerator(seed=SEED, scale=DATA_SCALE)
    for index in range(NUM_PEERS):
        network.add_peer(f"corp-{index}")
        network.load_peer(f"corp-{index}", generator.generate_peer(index))
    return network


def run_experiment():
    with_bloom = build(True).execute(SQL, engine="basic")
    without_bloom = build(False).execute(SQL, engine="basic")
    return with_bloom, without_bloom


def test_ablation_bloomjoin(benchmark):
    with_bloom, without_bloom = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_series(
        "Ablation B — bloom join on a selective equi-join (10 peers)",
        ["variant", "bytes shipped", "latency (s)", "rows"],
        [
            ["bloom join", with_bloom.bytes_transferred,
             with_bloom.latency_s, len(with_bloom.records)],
            ["plain fetch", without_bloom.bytes_transferred,
             without_bloom.latency_s, len(without_bloom.records)],
        ],
    )
    # Exactness: bloom filters have no false negatives.
    assert sorted(with_bloom.records) == sorted(without_bloom.records)
    assert with_bloom.bloom_joins == 1
    assert without_bloom.bloom_joins == 0
    # The optimization ships far fewer bytes on a selective join.
    assert with_bloom.bytes_transferred < without_bloom.bytes_transferred / 2
