"""Figure 13 — supplier performance: latency vs throughput at 50 peers.

Paper result: "the light-weight supplier queries achieve better performance
with less than 1 second latency when throughput peaks" — the curve is flat
until the supplier peers saturate, then latency hockey-sticks.
"""

from repro.bench import open_loop_sweep, print_series
from repro.bench.workloads import get_supply_chain

NUM_PEERS = 50


def run_experiment():
    bench = get_supply_chain(NUM_PEERS)
    sample = bench.sample_role("supplier")
    capacity = sample.capacity_qps
    offered = [capacity * fraction for fraction in
               (0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.3)]
    return sample, open_loop_sweep(sample, offered)


def test_fig13_supplier(benchmark):
    sample, points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 13 — supplier latency vs throughput (50 peers)",
        ["offered q/s", "achieved q/s", "avg latency (s)"],
        [[p.offered_qps, p.achieved_qps, p.avg_latency_s] for p in points],
    )
    below = [p for p in points if p.offered_qps < sample.capacity_qps]
    above = [p for p in points if p.offered_qps > sample.capacity_qps]
    # Well below saturation the offered load is fully served, and latency
    # stays near the bare service time.  (Near the aggregate capacity the
    # slowest individual peers saturate first — service times are
    # heterogeneous — so only the clearly-unsaturated points are exact.)
    for p in below[:2]:
        assert abs(p.achieved_qps - p.offered_qps) < 1e-6 * p.offered_qps
    assert below[0].avg_latency_s < 2 * sample.mean_service_time
    # Past saturation: throughput stops increasing, latency explodes.
    for p in above:
        assert p.achieved_qps <= sample.capacity_qps * 1.001
        assert p.avg_latency_s > 10 * below[0].avg_latency_s
    # Latency is monotone in offered load.
    latencies = [p.avg_latency_s for p in points]
    assert latencies == sorted(latencies)
