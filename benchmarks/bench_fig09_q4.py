"""Figure 9 — Q4 (PartSupp ⋈ Part + aggregation), BestPeer++ vs HadoopDB.

Paper result: BestPeer++ still wins but the gap is much smaller, and
HadoopDB (two MapReduce jobs, join + aggregation distributed over workers)
scales better than BestPeer++'s submitting-peer join.
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_performance_comparison
from repro.tpch import Q1, Q4


def run_experiment():
    return run_performance_comparison("Q4", Q4()) + run_performance_comparison(
        "Q1-ref", Q1()
    )


def test_fig09_q4(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    q4 = [p for p in points if p.query == "Q4"]
    q1 = [p for p in points if p.query == "Q1-ref"]
    print_series(
        "Fig. 9 — Q4: PartSupp join Part + aggregation",
        ["nodes", "BestPeer++ (s)", "HadoopDB (s)", "HadoopDB jobs"],
        [
            [
                nodes,
                latency_of(q4, "BestPeer++", nodes),
                latency_of(q4, "HadoopDB", nodes),
                2,
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    for nodes in CLUSTER_SIZES:
        # "BestPeer++ still outperforms HadoopDB."
        assert latency_of(q4, "BestPeer++", nodes) < latency_of(
            q4, "HadoopDB", nodes
        )
    # "But the performance gap between the two systems are much smaller."
    def ratio(points, nodes):
        return latency_of(points, "HadoopDB", nodes) / latency_of(
            points, "BestPeer++", nodes
        )

    assert ratio(q4, 50) < ratio(q1, 50) / 2
    # "HadoopDB achieves better scalability than BestPeer++."
    bp_growth = latency_of(q4, "BestPeer++", 50) / latency_of(q4, "BestPeer++", 10)
    hdb_growth = latency_of(q4, "HadoopDB", 50) / latency_of(q4, "HadoopDB", 10)
    assert bp_growth > hdb_growth
