"""Figure 11 — adaptive query processing on Q5.

Paper result: "The P2P engine works better in a smaller scale (10 data
nodes). With the increase of data scale ... the MapReduce engine ...
outperforms the P2P engine at the scale of 20 and 50 data nodes. ... the
performance of the adaptive engine approaches whatever the better one."
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_adaptive_comparison
from repro.tpch import Q5


def run_experiment():
    return run_adaptive_comparison(Q5())


def test_fig11_adaptive(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 11 — adaptive query processing (Q5)",
        ["nodes", "P2P (s)", "MapReduce (s)", "Adaptive (s)", "adaptive ran"],
        [
            [
                nodes,
                latency_of(points, "P2P engine", nodes),
                latency_of(points, "MapReduce engine", nodes),
                latency_of(points, "Adaptive engine", nodes),
                next(
                    p.details["strategy"]
                    for p in points
                    if p.system == "Adaptive engine" and p.nodes == nodes
                ),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    # P2P wins at 10 nodes; MapReduce wins at 20 and 50.
    assert latency_of(points, "P2P engine", 10) < latency_of(
        points, "MapReduce engine", 10
    )
    for nodes in (20, 50):
        assert latency_of(points, "MapReduce engine", nodes) < latency_of(
            points, "P2P engine", nodes
        )
    # The adaptive engine tracks the winner within a small planning margin.
    for nodes in CLUSTER_SIZES:
        best = min(
            latency_of(points, "P2P engine", nodes),
            latency_of(points, "MapReduce engine", nodes),
        )
        adaptive = latency_of(points, "Adaptive engine", nodes)
        assert adaptive <= best * 1.10
