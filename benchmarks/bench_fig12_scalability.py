"""Figure 12 — throughput scalability of the supply-chain network.

Paper result: "BestPeer++ achieves near linear scalability in both
heavy-weight workload (i.e., retailer queries) and light-weight workload
(i.e., supplier queries)" thanks to the single-peer optimization.
"""

from repro.bench import closed_loop_throughput, print_series
from repro.bench.workloads import get_supply_chain

PEER_COUNTS = (10, 20, 50)


def run_experiment():
    results = {}
    for num_peers in PEER_COUNTS:
        bench = get_supply_chain(num_peers)
        clients = num_peers // 2
        supplier_sample = bench.sample_role("supplier")
        retailer_sample = bench.sample_role("retailer")
        results[num_peers] = {
            "supplier_qps": closed_loop_throughput(supplier_sample, clients),
            "retailer_qps": closed_loop_throughput(retailer_sample, clients),
        }
    return results


def test_fig12_scalability(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 12 — throughput scalability (closed loop)",
        ["peers", "supplier q/s", "retailer q/s"],
        [
            [n, results[n]["supplier_qps"], results[n]["retailer_qps"]]
            for n in PEER_COUNTS
        ],
    )
    for role in ("supplier_qps", "retailer_qps"):
        # Near-linear: going 10 -> 50 peers must scale throughput by at
        # least 4x (ideal is 5x).
        assert results[50][role] > 4.0 * results[10][role]
        # And monotonic in between.
        assert results[10][role] < results[20][role] < results[50][role]
    # Light-weight supplier queries sustain much higher throughput than
    # heavy-weight retailer queries (19,000 vs 3,400 q/s in the paper).
    for n in PEER_COUNTS:
        assert results[n]["supplier_qps"] > 3.0 * results[n]["retailer_qps"]
