"""Figure 6 — Q1 (selection on LineItem), BestPeer++ vs HadoopDB.

Paper result: both systems answer quickly thanks to the secondary indexes on
l_shipdate/l_commitdate, but BestPeer++ is *significantly* faster because
HadoopDB pays the ~10-15 s MapReduce job-startup cost, which dominates this
short query at every cluster size.
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_performance_comparison
from repro.tpch import Q1


def run_experiment():
    return run_performance_comparison("Q1", Q1())


def test_fig06_q1(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 6 — Q1: selection on LineItem",
        ["nodes", "BestPeer++ (s)", "HadoopDB (s)"],
        [
            [
                nodes,
                latency_of(points, "BestPeer++", nodes),
                latency_of(points, "HadoopDB", nodes),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    for nodes in CLUSTER_SIZES:
        bestpeer = latency_of(points, "BestPeer++", nodes)
        hadoopdb = latency_of(points, "HadoopDB", nodes)
        # "the performance of BestPeer++ is significantly better".
        assert bestpeer < hadoopdb / 5
        # "This startup cost, therefore, dominates the query processing."
        assert hadoopdb >= 12.0
