"""Figure 7 — Q2 (aggregation on LineItem), BestPeer++ vs HadoopDB.

Paper result: "BestPeer++ still outperforms HadoopDB by a factor of ten" —
the gap comes from job startup plus the pull-based shuffle delay, while
BestPeer++ pushes the whole aggregate to the owners and merges partials.
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_performance_comparison
from repro.tpch import Q2

# A less selective date than the library default so each peer aggregates a
# substantial share of its LineItem partition, as in the paper's workload.
Q2_SQL = Q2(ship_date="1995-06-01")


def run_experiment():
    return run_performance_comparison("Q2", Q2_SQL)


def test_fig07_q2(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 7 — Q2: aggregation on LineItem",
        ["nodes", "BestPeer++ (s)", "HadoopDB (s)"],
        [
            [
                nodes,
                latency_of(points, "BestPeer++", nodes),
                latency_of(points, "HadoopDB", nodes),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    for nodes in CLUSTER_SIZES:
        bestpeer = latency_of(points, "BestPeer++", nodes)
        hadoopdb = latency_of(points, "HadoopDB", nodes)
        # "outperforms HadoopDB by a factor of ten".
        assert bestpeer < hadoopdb / 8
