"""Ablation D — partial indexing ([26], design choice in DESIGN.md).

The partial indexing scheme trades index size for query cost: tables below
the row threshold publish nothing into BATON, and lookups for them degrade
to a broadcast.  Measures both sides of the trade on a network where most
tables are small.
"""

from repro.bench import print_series
from repro.core import BestPeerNetwork
from repro.core.indexer import FULL_INDEX_POLICY, PartialIndexPolicy
from repro.sqlengine import Column, ColumnType, TableSchema

NUM_PEERS = 10


def schemas():
    tables = {}
    # One big fact table and five small dimension tables.
    tables["facts"] = TableSchema(
        "facts",
        [Column("id", ColumnType.INTEGER), Column("v", ColumnType.FLOAT)],
        primary_key="id",
    )
    for i in range(5):
        tables[f"dim{i}"] = TableSchema(
            f"dim{i}",
            [Column("id", ColumnType.INTEGER), Column("w", ColumnType.FLOAT)],
            primary_key="id",
        )
    return tables


def build(policy):
    net = BestPeerNetwork(schemas(), index_policy=policy)
    for index in range(NUM_PEERS):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        data = {
            "facts": [(index * 10**6 + i, float(i)) for i in range(200)]
        }
        for d in range(5):
            data[f"dim{d}"] = [
                (index * 10**6 + i, float(i)) for i in range(5)
            ]
        net.load_peer(peer_id, data)
    return net


def measure(net):
    index_entries = sum(node.item_count for node in net.overlay.overlay.nodes())
    fact_query = net.execute("SELECT COUNT(*) FROM facts", engine="basic")
    dim_query = net.execute("SELECT COUNT(*) FROM dim0", engine="basic")
    return {
        "index_entries": index_entries,
        "fact_rows": fact_query.scalar(),
        "dim_rows": dim_query.scalar(),
        "dim_peers": dim_query.peers_contacted,
    }


def run_experiment():
    return {
        "full": measure(build(FULL_INDEX_POLICY)),
        "partial": measure(build(PartialIndexPolicy(min_table_rows=50))),
    }


def test_ablation_partial_index(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation D — partial indexing (10 peers, 1 big + 5 small tables)",
        ["policy", "index entries", "dim lookup peers"],
        [
            ["full", results["full"]["index_entries"],
             results["full"]["dim_peers"]],
            ["partial (>=50 rows)", results["partial"]["index_entries"],
             results["partial"]["dim_peers"]],
        ],
    )
    # Same answers either way.
    assert results["full"]["fact_rows"] == results["partial"]["fact_rows"]
    assert results["full"]["dim_rows"] == results["partial"]["dim_rows"]
    # The partial policy cuts the index size dramatically (five unindexed
    # dimension tables x 3 columns x 10 peers)...
    assert results["partial"]["index_entries"] < (
        results["full"]["index_entries"] / 2
    )
    # ...at the price of broadcasting small-table lookups to every peer.
    assert results["partial"]["dim_peers"] == NUM_PEERS
    assert results["full"]["dim_peers"] == NUM_PEERS  # all host dim0 anyway
