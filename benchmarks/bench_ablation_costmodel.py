"""Ablation A — cost-model crossover sweep (design choice of §5.5).

Sweeps join depth and partition count through the analytical cost models
(Eqs. 8 and 11) and checks the planner's documented decision surface: small
shallow queries go P2P, deep joins over many partitions go MapReduce, and
the crossover moves to smaller clusters as queries get deeper.
"""

from repro.bench import print_series
from repro.bench.harness import bench_cost_params
from repro.core.costmodel import LevelSpec, estimate

TABLE_BYTES = 4e6
# Foreign-key join selectivity: the intermediate result roughly doubles per
# level, so g = 2/S(T) (see AdaptiveEngine.levels_for).
SELECTIVITY = 2.0 / TABLE_BYTES


def levels(depth, partitions):
    return [
        LevelSpec(f"t{i}", TABLE_BYTES, SELECTIVITY, partitions)
        for i in range(depth)
    ]


def run_experiment():
    params = bench_cost_params()
    rows = []
    for depth in (1, 2, 3, 4):
        for partitions in (5, 10, 20, 50, 100):
            costs = estimate(params, levels(depth, partitions), TABLE_BYTES)
            rows.append(
                (depth, partitions, costs.p2p, costs.mapreduce,
                 costs.cheaper_engine)
            )
    return rows


def test_ablation_costmodel(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation A — cost-model decision surface",
        ["joins", "partitions", "C_BP", "C_MR", "winner"],
        rows,
    )
    by_key = {(depth, parts): winner for depth, parts, _, _, winner in rows}
    # Shallow query on a small cluster: P2P.
    assert by_key[(1, 5)] == "p2p"
    # Deep join over a large cluster: MapReduce.
    assert by_key[(4, 100)] == "mapreduce"
    # Monotone decision surface: once MapReduce wins at some partition
    # count, it keeps winning for larger ones (same depth).
    for depth in (1, 2, 3, 4):
        winners = [by_key[(depth, parts)] for parts in (5, 10, 20, 50, 100)]
        if "mapreduce" in winners:
            first = winners.index("mapreduce")
            assert all(w == "mapreduce" for w in winners[first:])
    # Deeper queries flip to MapReduce at equal-or-smaller partition counts.
    def flip_point(depth):
        for parts in (5, 10, 20, 50, 100):
            if by_key[(depth, parts)] == "mapreduce":
                return parts
        return float("inf")

    assert flip_point(4) <= flip_point(2)
