"""Figure 8 — Q3 (LineItem ⋈ Orders), BestPeer++ vs HadoopDB.

Paper result: the gap *narrows* — the bigger workload amortizes Hadoop's
startup cost, and BestPeer++'s query-submitting peer does the final join
serially, so HadoopDB scales slightly better with the cluster size.
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_performance_comparison
from repro.tpch import Q1, Q3


def run_experiment():
    return run_performance_comparison("Q3", Q3()) + run_performance_comparison(
        "Q1-ref", Q1()
    )


def test_fig08_q3(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    q3 = [p for p in points if p.query == "Q3"]
    q1 = [p for p in points if p.query == "Q1-ref"]
    print_series(
        "Fig. 8 — Q3: LineItem join Orders",
        ["nodes", "BestPeer++ (s)", "HadoopDB (s)"],
        [
            [
                nodes,
                latency_of(q3, "BestPeer++", nodes),
                latency_of(q3, "HadoopDB", nodes),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    for nodes in CLUSTER_SIZES:
        # BestPeer++ still wins on Q3...
        assert latency_of(q3, "BestPeer++", nodes) < latency_of(
            q3, "HadoopDB", nodes
        )
    # ...but the gap is smaller than on Q1 ("the performance gap ... becomes
    # smaller. This is because this query requires to process more tuples").
    def ratio(points, nodes):
        return latency_of(points, "HadoopDB", nodes) / latency_of(
            points, "BestPeer++", nodes
        )

    assert ratio(q3, 50) < ratio(q1, 50)
    # HadoopDB's scalability is slightly better: BestPeer++'s latency grows
    # faster with the cluster size than HadoopDB's.
    bp_growth = latency_of(q3, "BestPeer++", 50) / latency_of(q3, "BestPeer++", 10)
    hdb_growth = latency_of(q3, "HadoopDB", 50) / latency_of(q3, "HadoopDB", 10)
    assert bp_growth > hdb_growth
