"""Figure 14 — retailer performance: latency vs throughput at 50 peers.

Paper result: "The heavy-weight retailer workload suffers from higher
latency because of its higher computational demand" — same hockey-stick
shape as Fig. 13 but with a much lower saturation throughput and higher
latency than the supplier workload.
"""

from repro.bench import open_loop_sweep, print_series
from repro.bench.workloads import get_supply_chain

NUM_PEERS = 50


def run_experiment():
    bench = get_supply_chain(NUM_PEERS)
    retailer = bench.sample_role("retailer")
    supplier = bench.sample_role("supplier")
    offered = [retailer.capacity_qps * fraction for fraction in
               (0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.3)]
    return retailer, supplier, open_loop_sweep(retailer, offered)


def test_fig14_retailer(benchmark):
    retailer, supplier, points = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_series(
        "Fig. 14 — retailer latency vs throughput (50 peers)",
        ["offered q/s", "achieved q/s", "avg latency (s)"],
        [[p.offered_qps, p.achieved_qps, p.avg_latency_s] for p in points],
    )
    # The heavy-weight workload peaks at a much lower throughput than the
    # light-weight one (3,400 vs 19,000 q/s in the paper)...
    assert retailer.capacity_qps < supplier.capacity_qps / 3
    # ...and its single-query latency is much higher.
    assert retailer.mean_service_time > 3 * supplier.mean_service_time
    # Same saturation shape as Fig. 13.
    below = [p for p in points if p.offered_qps < retailer.capacity_qps]
    above = [p for p in points if p.offered_qps > retailer.capacity_qps]
    for p in above:
        assert p.achieved_qps <= retailer.capacity_qps * 1.001
        assert p.avg_latency_s > 10 * below[0].avg_latency_s
    latencies = [p.avg_latency_s for p in points]
    assert latencies == sorted(latencies)
