"""Figure 10 — Q5 (multi-table join), BestPeer++ vs HadoopDB.

Paper result: "Overall, HadoopDB performs better than BestPeer++ in
evaluating this query" — the submitting peer joins *all* qualified tuples
and becomes the bottleneck at 20 and 50 nodes, while HadoopDB spreads its
four MapReduce jobs over every worker.
"""

from repro.bench import print_series
from repro.bench.harness import CLUSTER_SIZES, latency_of, run_performance_comparison
from repro.tpch import Q5


def run_experiment():
    return run_performance_comparison("Q5", Q5())


def test_fig10_q5(benchmark):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig. 10 — Q5: multi-table join (4 tables, 4 HadoopDB jobs)",
        ["nodes", "BestPeer++ (s)", "HadoopDB (s)"],
        [
            [
                nodes,
                latency_of(points, "BestPeer++", nodes),
                latency_of(points, "HadoopDB", nodes),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )
    # "at a large scale (20 and 50 nodes), the query submitting peer becomes
    # the bottleneck".
    for nodes in (20, 50):
        assert latency_of(points, "BestPeer++", nodes) > latency_of(
            points, "HadoopDB", nodes
        )
    # At the small scale the P2P strategy is still competitive (Fig. 11
    # shows it winning at 10 nodes).
    assert latency_of(points, "BestPeer++", 10) < latency_of(
        points, "HadoopDB", 10
    )
    # HadoopDB "utilizes all nodes to perform joins in parallel and hence
    # has a better scalability".
    bp_growth = latency_of(points, "BestPeer++", 50) / latency_of(
        points, "BestPeer++", 10
    )
    hdb_growth = latency_of(points, "HadoopDB", 50) / latency_of(
        points, "HadoopDB", 10
    )
    assert bp_growth > 2 * hdb_growth
