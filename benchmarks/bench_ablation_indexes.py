"""Ablation C — index priority Range > Column > Table (design choice §4.3).

"In query processing, the priorities of indices are (Range Index > Column
Index > Table Index). We will use the more accurate index whenever
possible."  Measures how many peers a nation-constrained lookup touches
under each index type.
"""

from repro.bench import print_series
from repro.baton import BatonOverlay, ReplicatedOverlay
from repro.core.indexer import DataIndexer

NUM_PEERS = 20


def build_indexer(publish_ranges, publish_columns):
    overlay = ReplicatedOverlay(BatonOverlay())
    for index in range(NUM_PEERS):
        overlay.join(f"peer-{index}")
    indexer = DataIndexer(overlay, cache_enabled=False)
    for index in range(NUM_PEERS):
        peer = f"peer-{index}"
        indexer.publish_table("lineitem", peer)
        if publish_columns:
            indexer.publish_column("l_nationkey", peer, ["lineitem"])
        if publish_ranges:
            # Each peer hosts exactly one nation: min == max == its nation.
            indexer.publish_range(
                "lineitem", "l_nationkey", index % 25, index % 25, peer
            )
    return indexer


def run_experiment():
    rows = []
    for label, ranges, columns in [
        ("range index", True, True),
        ("column index", False, True),
        ("table index", False, False),
    ]:
        indexer = build_indexer(ranges, columns)
        lookup = indexer.locate("lineitem", "l_nationkey", low=3, high=3)
        rows.append((label, lookup.index_used, len(lookup.peers), lookup.hops))
    return rows


def test_ablation_indexes(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation C — peers touched per index type (20 peers, 1 nation)",
        ["published", "index used", "peers touched", "BATON hops"],
        rows,
    )
    by_label = {label: (used, peers) for label, used, peers, _ in rows}
    # The range index pins the single owning peer.
    assert by_label["range index"] == ("range", 1)
    # The column index cannot discriminate values: every hosting peer.
    assert by_label["column index"][0] == "column"
    assert by_label["column index"][1] == NUM_PEERS
    # The table index is the worst case ("the query processor needs to
    # communicate with every peer that has part of the lineitem table").
    assert by_label["table index"] == ("table", NUM_PEERS)
