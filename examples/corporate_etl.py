#!/usr/bin/env python3
"""The offline data flow end-to-end (§4.1-§4.2, Fig. 2).

A company joins the network with a production system whose schema does not
match the global one.  The example walks the full ETL story:

1. start from the provider's **mapping template** for the production system
   and override the local table name (§4.1),
2. for a second table with no schema information at all, *infer* the mapping
   from data samples (**instance-level matching**, [19]),
3. run the **initial load**, then a **differential refresh** — the loader
   fingerprints both snapshots with 32-bit Rabin fingerprints and applies
   only the delta (§4.2),
4. show the refreshed data immediately visible to network queries.

Run:  python examples/corporate_etl.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork, InstanceMatcher, SchemaMapping
from repro.core.schema_mapping import MappingTemplate
from repro.sqlengine import Column, ColumnType, TableSchema

GLOBAL_SCHEMAS = {
    "customer": TableSchema(
        "customer",
        [
            Column("c_custkey", ColumnType.INTEGER),
            Column("c_name", ColumnType.TEXT),
            Column("c_nation", ColumnType.TEXT),
        ],
        primary_key="c_custkey",
    ),
    "product": TableSchema(
        "product",
        [
            Column("p_id", ColumnType.INTEGER),
            Column("p_name", ColumnType.TEXT),
            Column("p_price", ColumnType.FLOAT),
        ],
        primary_key="p_id",
    ),
}

# The provider ships one template per popular production system (§4.1).
SAP_TEMPLATE = MappingTemplate(
    system="SAP",
    tables={
        "customer": {"kunnr": "c_custkey", "name1": "c_name", "land1": "c_nation"}
    },
    local_table_names={"customer": "kna1"},
)


def main():
    net = BestPeerNetwork(GLOBAL_SCHEMAS)

    # An existing member provides reference data (and samples for matching).
    net.add_peer("incumbent")
    incumbent_products = [(i, f"part-{i}", 10.0 + i) for i in range(40)]
    net.load_peer(
        "incumbent",
        {
            "customer": [(i, f"Customer#{i}", "FRANCE") for i in range(20)],
            "product": incumbent_products,
        },
    )

    # --- the newcomer's mapping ---------------------------------------
    mapping = SchemaMapping(GLOBAL_SCHEMAS)
    # 1. Template with a site-specific table name override.
    SAP_TEMPLATE.instantiate(mapping, overrides={"customer": "zkna1_prod"})
    mapping.mapping_for("zkna1_prod").value_map["c_nation"] = {
        "DE": "GERMANY", "FR": "FRANCE",
    }
    print("customer mapping from SAP template (table override zkna1_prod)")

    # 2. No schema info for the product dump: infer from the data.
    matcher = InstanceMatcher(GLOBAL_SCHEMAS)
    matcher.register_global_sample("product", incumbent_products)
    dump_rows = [(5 + i, f"part-{5 + i}", 15.0 + i) for i in range(25)]
    inferred = matcher.match("dump_0042", ["f0", "f1", "f2"], dump_rows)
    mapping.add_table_mapping(inferred.mapping)
    print(
        f"product mapping inferred from data: {inferred.mapping.column_map} "
        f"(confidence {inferred.confidence:.2f})"
    )

    net.add_peer("newcomer", mapping=mapping)
    peer = net.peers["newcomer"]

    # --- initial load ---------------------------------------------------
    crm_rows = [(1, "ACME", "DE"), (2, "Bolt SARL", "FR")]
    peer.load_initial("zkna1_prod", ["kunnr", "name1", "land1"], crm_rows,
                      now=net.clock.now)
    peer.load_initial("dump_0042", ["f0", "f1", "f2"], dump_rows,
                      now=net.clock.now)
    peer.publish_indices(net.indexers["newcomer"])
    for indexer in net.indexers.values():
        indexer.clear_cache()
    total = net.execute("SELECT COUNT(*) FROM customer").scalar()
    print(f"\nafter initial load: {total} customers network-wide")

    # --- differential refresh --------------------------------------------
    # The production system changed: one update, one insert, one delete.
    crm_rows_v2 = [(1, "ACME AG", "DE"), (3, "Neu GmbH", "DE")]
    delta = peer.refresh(
        "zkna1_prod", ["kunnr", "name1", "land1"], crm_rows_v2,
        now=net.clock.now,
    )
    print(
        f"refresh delta via Rabin-fingerprint snapshot diff: "
        f"{len(delta.inserted)} inserted, {len(delta.deleted)} deleted"
    )

    germans = net.execute(
        "SELECT c_name FROM customer WHERE c_nation = 'GERMANY' "
        "ORDER BY c_name"
    )
    print(f"German customers now visible network-wide: "
          f"{germans.column('c_name')}")


if __name__ == "__main__":
    main()
