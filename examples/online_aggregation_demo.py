#!/usr/bin/env python3
"""Distributed online aggregation ([25], cited in §2/§7).

Runs a network-wide SUM progressively: the estimate (with a 95% confidence
interval) tightens as each peer's partial aggregate arrives, and the query
can stop early once the requested precision is reached — without waiting
for the slowest peer.

Run:  python examples/online_aggregation_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork, online_aggregate
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def main():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=13)
    for index in range(8):
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", generator.generate_peer(index))

    sql = "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_discount < 0.05"
    exact = net.execute(sql, engine="basic").scalar()
    print(f"exact answer (all 8 peers): {exact:,.2f}\n")

    print(f"{'peers':>5}  {'estimate':>16}  {'95% interval':>34}  {'rel.err':>8}")
    for estimate in online_aggregate(net, sql):
        if estimate.half_width == float("inf"):
            interval = "(insufficient data)"
        else:
            interval = f"[{estimate.low:,.0f}, {estimate.high:,.0f}]"
        print(
            f"{estimate.peers_observed:>5}  {estimate.estimate:>16,.0f}  "
            f"{interval:>34}  {estimate.relative_error:>8.3f}"
        )

    print("\nStopping early at 10% relative error:")
    estimates = list(online_aggregate(net, sql, target_relative_error=0.10))
    final = estimates[-1]
    print(
        f"stopped after {final.peers_observed}/{final.peers_total} peers "
        f"with estimate {final.estimate:,.0f} "
        f"(true answer {exact:,.0f}, off by "
        f"{abs(final.estimate - exact) / exact:.1%})"
    )


if __name__ == "__main__":
    main()
