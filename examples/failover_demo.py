#!/usr/bin/env python3
"""Auto fail-over, fault injection and strong consistency (§3.2, Algorithm 1).

Part 1 crashes a peer's instance mid-workload and shows that (a) the
bootstrap daemon detects it through CloudWatch, launches a fresh instance
and restores the database from the latest EBS snapshot, and (b) queries
touching the failed peer *block* until recovery completes — they never
return partial answers.

Part 2 installs a seeded :class:`FaultPlan` — random message drops plus a
transient unavailability window — and shows the retry/backoff layer
absorbing every fault: the answer stays identical while the fault counters
prove the chaos actually happened.

Run:  python examples/failover_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork
from repro.sim import FaultPlan, Outage
from repro.tpch import Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def build_network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    for index in range(3):
        net.add_peer(f"corp-{index}")
        # load_peer also takes the initial EBS snapshot.
        net.load_peer(f"corp-{index}", TpchGenerator(seed=9).generate_peer(index))
    return net


def crash_demo(net, baseline):
    victim = "corp-1"
    old_host = net.peers[victim].host
    net.crash_peer(victim)
    print(f"\ncrashed {victim} (instance {old_host})")

    execution = net.execute(Q2(ship_date="1995-01-01"), engine="basic")
    blocked = execution.engine_details.get("blocked_on_failover_s", 0.0)
    print(
        f"query blocked {blocked:.1f}s for fail-over, then answered "
        f"{execution.scalar():,.2f} in {execution.latency_s:.1f}s total"
    )
    assert abs(execution.scalar() - baseline.scalar()) < 1e-6

    peer = net.peers[victim]
    print(
        f"{victim} is back: instance {old_host} -> {peer.host}, "
        f"{peer.database.execute('SELECT COUNT(*) FROM lineitem').scalar():,} "
        "lineitem rows restored from EBS"
    )


def chaos_demo(net, baseline):
    # 20% of remote deliveries are dropped, and corp-2's instance refuses
    # a window of deliveries — both seeded, so the run is reproducible.
    plan = FaultPlan(
        seed=11,
        drop_probability=0.2,
        outages=[Outage(net.peers["corp-2"].host, start=2, end=5)],
    )
    net.install_fault_plan(plan)
    print("\ninstalled FaultPlan(seed=11): 20% drops + corp-2 outage window")

    execution = net.execute(Q2(ship_date="1995-01-01"), engine="basic")
    net.install_fault_plan(None)

    faults = net.metrics.faults
    print(
        f"answered {execution.scalar():,.2f} under chaos "
        f"in {execution.latency_s:.1f}s "
        f"(backoff {execution.engine_details.get('retry_backoff_s', 0.0):.2f}s)"
    )
    print(
        "faults absorbed: "
        + ", ".join(f"{k}={v}" for k, v in faults.as_dict().items() if v)
    )
    assert abs(execution.scalar() - baseline.scalar()) < 1e-6


def main():
    net = build_network()
    baseline = net.execute(Q2(ship_date="1995-01-01"), engine="basic")
    print(f"baseline revenue: {baseline.scalar():,.2f} "
          f"({baseline.latency_s:.3f}s)")

    crash_demo(net, baseline)
    chaos_demo(net, baseline)
    print("\nstrong consistency held: identical answers through crash and chaos")


if __name__ == "__main__":
    main()
