#!/usr/bin/env python3
"""Auto fail-over and strong consistency (§3.2, Algorithm 1).

Crashes a peer's instance mid-workload and shows that (a) the bootstrap
daemon detects it through CloudWatch, launches a fresh instance and restores
the database from the latest EBS snapshot, and (b) queries touching the
failed peer *block* until recovery completes — they never return partial
answers.

Run:  python examples/failover_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork
from repro.tpch import Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def main():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    for index in range(3):
        net.add_peer(f"corp-{index}")
        # load_peer also takes the initial EBS snapshot.
        net.load_peer(f"corp-{index}", TpchGenerator(seed=9).generate_peer(index))

    baseline = net.execute(Q2(ship_date="1995-01-01"), engine="basic")
    print(f"baseline revenue: {baseline.scalar():,.2f} "
          f"({baseline.latency_s:.3f}s)")

    victim = "corp-1"
    old_host = net.peers[victim].host
    net.crash_peer(victim)
    print(f"\ncrashed {victim} (instance {old_host})")

    execution = net.execute(Q2(ship_date="1995-01-01"), engine="basic")
    blocked = execution.engine_details.get("blocked_on_failover_s", 0.0)
    print(
        f"query blocked {blocked:.1f}s for fail-over, then answered "
        f"{execution.scalar():,.2f} in {execution.latency_s:.1f}s total"
    )
    assert abs(execution.scalar() - baseline.scalar()) < 1e-6

    peer = net.peers[victim]
    print(
        f"\n{victim} is back: instance {old_host} -> {peer.host}, "
        f"{peer.database.execute('SELECT COUNT(*) FROM lineitem').scalar():,} "
        "lineitem rows restored from EBS"
    )
    print("strong consistency held: identical answer before and after the crash")


if __name__ == "__main__":
    main()
