#!/usr/bin/env python3
"""Pay-as-you-go adaptive query processing (§5.5, Algorithm 2).

Runs the multi-join analytics query Q5 on growing networks and shows the
adaptive planner's cost predictions flipping from the P2P engine to the
MapReduce engine as the cluster (and therefore the coordinator's share of
work) grows — the Fig. 11 behaviour.

Run:  python examples/adaptive_analytics.py   (takes ~1 minute)
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import (
    bench_compute_model,
    bench_cost_params,
    bench_mr_config,
    bench_network_config,
)
from repro.core import BestPeerNetwork
from repro.tpch import Q5, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def build(num_peers):
    net = BestPeerNetwork(
        TPCH_SCHEMAS,
        SECONDARY_INDICES,
        mr_config=bench_mr_config(),
        cost_params=bench_cost_params(),
        compute_model=bench_compute_model(),
        network_config=bench_network_config(),
    )
    generator = TpchGenerator(seed=42, scale=2.0)
    for index in range(num_peers):
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", generator.generate_peer(index))
    net.build_histogram("lineitem", ["l_shipdate"])
    net.build_histogram("orders", ["o_orderdate"])
    return net


def main():
    print(f"{'peers':>6} {'engine chosen':>14} {'predicted P2P':>14} "
          f"{'predicted MR':>13} {'measured (s)':>13}")
    for num_peers in (5, 10, 20, 35):
        net = build(num_peers)
        execution = net.execute(Q5(), engine="adaptive")
        adaptive = net._adaptive[sorted(net.peers)[0]]
        decision = adaptive.last_decision
        print(
            f"{num_peers:>6} {decision.chosen_engine:>14} "
            f"{decision.estimate.p2p:>14.2f} "
            f"{decision.estimate.mapreduce:>13.2f} "
            f"{execution.latency_s:>13.1f}"
        )
    print(
        "\nSmall networks favour fetch-and-process (no job startup); as the "
        "network grows, the query-submitting peer becomes the bottleneck and "
        "the planner switches to the MapReduce engine."
    )


if __name__ == "__main__":
    main()
