#!/usr/bin/env python3
"""Quickstart: a four-company corporate network in ~40 lines.

Builds a BestPeer++ network on the simulated cloud, loads each company's
TPC-H partition, and runs the paper's benchmark queries through the three
query engines, printing results and pay-as-you-go costs.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import BestPeerNetwork
from repro.tpch import (
    Q1,
    Q2,
    Q5,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
)


def main():
    # 1. The service provider sets up the network with the shared global
    #    schema (the original TPC-H schema, as in §6.1.4).
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)

    # 2. Four companies register, launch instances, and export their data.
    generator = TpchGenerator(seed=42)
    for index in range(4):
        company = f"company-{index}"
        net.add_peer(company)
        net.load_peer(company, generator.generate_peer(index))
        print(f"joined {company} on instance {net.peers[company].host}")

    # 3. The provider defines a role and each company creates its analysts.
    role = net.create_full_access_role("analyst")
    net.create_user("alice", "company-0", role)

    # 4. Queries: simple selections and aggregates fly through the P2P
    #    engine; heavy joins can use MapReduce; "adaptive" picks per query.
    for name, sql, engine in [
        ("Q1 selection", Q1(), "basic"),
        ("Q2 aggregate", Q2(), "basic"),
        ("Q5 multi-join", Q5(), "adaptive"),
    ]:
        execution = net.execute(sql, peer_id="company-0",
                                engine=engine, user="alice")
        print(
            f"\n{name} [{execution.strategy}] -> {len(execution.records)} rows "
            f"in {execution.latency_s:.3f}s simulated, "
            f"{execution.bytes_transferred:,} bytes shipped, "
            f"${execution.dollar_cost:.6f} pay-as-you-go"
        )
        for row in execution.records[:3]:
            print("   ", row)

    total = net.execute("SELECT COUNT(*) FROM lineitem", engine="basic")
    print(f"\nnetwork-wide lineitem rows: {total.scalar():,}")


if __name__ == "__main__":
    main()
