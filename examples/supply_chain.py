#!/usr/bin/env python3
"""The paper's motivating scenario: a supplier/retailer supply chain (§6.2).

Six companies — three suppliers, three retailers — each host one nation's
data under the nation-key-extended schema.  Retailer users query supplier
data and vice versa; every query resolves to a *single* target peer through
the nation-key range index, so the network answers with the single-peer
optimization and throughput scales with the number of peers.

Run:  python examples/supply_chain.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork
from repro.tpch import (
    COMMON_TABLES,
    SupplyChainPartitioner,
    TpchGenerator,
    retailer_throughput_query,
    supplier_throughput_query,
)
from repro.tpch.schema import NATION_KEY_COLUMNS, TABLE_NAMES, schema_for


def main():
    schemas = {
        name: schema_for(name, with_nation_key=True) for name in TABLE_NAMES
    }
    net = BestPeerNetwork(schemas)

    partitioner = SupplyChainPartitioner(TpchGenerator(seed=7))
    assignments = partitioner.assign([f"biz-{i}" for i in range(6)])
    for index, assignment in enumerate(assignments):
        net.add_peer(assignment.peer_id, tables=assignment.tables)
        data = partitioner.generate_for(assignment, index)
        range_columns = {
            table: [NATION_KEY_COLUMNS[table]]
            for table in assignment.tables
            if table not in COMMON_TABLES
        }
        net.load_peer(assignment.peer_id, data, range_columns=range_columns)
        print(
            f"{assignment.peer_id}: {assignment.role:8s} "
            f"nation={assignment.nation_key} tables={assignment.tables}"
        )

    role = net.create_full_access_role("partner")
    net.create_user("trader", assignments[0].peer_id, role)

    # A retailer-side user checks a supplier's stock value (light-weight).
    supplier = partitioner.suppliers(assignments)[0]
    retailer = partitioner.retailers(assignments)[0]
    light = net.execute(
        supplier_throughput_query(supplier.nation_key),
        peer_id=retailer.peer_id,
        engine="basic",
        user="trader",
    )
    print(
        f"\nsupplier query -> strategy={light.strategy}, "
        f"{light.peers_contacted} peer touched, "
        f"{len(light.records)} suppliers, {light.latency_s*1000:.1f} ms"
    )

    # A supplier-side user analyzes a retailer's revenue (heavy-weight).
    heavy = net.execute(
        retailer_throughput_query(retailer.nation_key),
        peer_id=supplier.peer_id,
        engine="basic",
        user="trader",
    )
    print(
        f"retailer query -> strategy={heavy.strategy}, "
        f"{heavy.peers_contacted} peer touched, "
        f"{len(heavy.records)} customers, {heavy.latency_s*1000:.1f} ms"
    )
    print(
        f"\nheavy/light latency ratio: "
        f"{heavy.latency_s / light.latency_s:.1f}x "
        "(the paper's Figs. 13-14 contrast)"
    )

    # Querying a nation nobody hosts touches nobody.
    miss = net.execute(
        supplier_throughput_query(24),
        peer_id=retailer.peer_id,
        engine="basic",
        user="trader",
    )
    print(f"unhosted nation -> {len(miss.records)} rows "
          f"from {miss.peers_contacted} peer(s)")


if __name__ == "__main__":
    main()
