#!/usr/bin/env python3
"""Distributed role-based access control (§4.4).

Recreates the paper's Role_sales example — read/write on
lineitem.l_extendedprice restricted to the [0, 100] value range, read-only
l_shipdate — and shows the three role-composition operators (inherit ⊢,
plus +, minus −) plus the query-rewriting enforcement at the data owners.

Run:  python examples/access_control_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BestPeerNetwork, READ, Role, WRITE, rule
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def main():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    for index in range(2):
        net.add_peer(f"corp-{index}")
        net.load_peer(
            f"corp-{index}", TpchGenerator(seed=3).generate_peer(index)
        )

    # The paper's example role (§4.4, Definition 1).
    role_sales = Role(
        "sales",
        [
            rule("lineitem.l_extendedprice", [READ, WRITE], (0, 100)),
            rule("lineitem.l_shipdate", [READ]),
            # Extra readable keys so the demo query has identifiers.
            rule("lineitem.l_orderkey", [READ]),
        ],
    )
    net.define_role(role_sales)

    # Role composition: senior sales inherit and extend; interns lose a rule.
    role_senior = role_sales.inherit("senior_sales").plus(
        rule("lineitem.l_quantity", [READ])
    )
    role_intern = role_sales.minus("lineitem.l_extendedprice", name="intern")

    net.create_user("sam", "corp-0", role_sales)
    net.create_user("senior", "corp-0", role_senior)
    net.create_user("intern", "corp-0", role_intern)

    sql = (
        "SELECT l_orderkey, l_shipdate, l_extendedprice, l_quantity "
        "FROM lineitem LIMIT 5"
    )
    for user in ("sam", "senior", "intern"):
        execution = net.execute(sql, engine="basic", user=user)
        print(f"\nAs {user!r}:")
        for row in execution.records:
            print("   ", row)

    print(
        "\nNote: l_extendedprice values outside [0, 100] and every column "
        "without a rule come back as NULL — the data owners rewrite the "
        "rows before they leave the peer."
    )


if __name__ == "__main__":
    main()
