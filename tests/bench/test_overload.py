"""Tests for the overload sweep and its SLO gates."""

import json

from repro.bench.overload import (
    OverloadReport,
    check_slo_invariants,
    main,
    run_overload,
    run_sweep,
)

DURATION = 12.0


class TestRunOverload:
    def test_accounting_is_exact(self):
        report = run_overload(10.0, duration_s=DURATION)
        assert report.lanes
        for lane in report.lanes.values():
            shed = lane["shed_queue_full"] + lane["shed_backpressure"]
            assert lane["offered"] == (
                lane["admitted"] + shed + lane["deadline_missed"]
            )
            assert lane["admitted"] == lane["completed"] + lane["failed"]

    def test_overload_sheds_and_baseline_mostly_does_not(self):
        baseline = run_overload(1.0, duration_s=DURATION)
        overload = run_overload(10.0, duration_s=DURATION)

        def total(report, field):
            return sum(lane[field] for lane in report.lanes.values())

        dropped_1x = (
            total(baseline, "shed_queue_full")
            + total(baseline, "shed_backpressure")
            + total(baseline, "deadline_missed")
        )
        dropped_10x = (
            total(overload, "shed_queue_full")
            + total(overload, "shed_backpressure")
            + total(overload, "deadline_missed")
        )
        assert dropped_10x > dropped_1x
        assert total(overload, "completed") > 0

    def test_clients_retry_on_shed(self):
        report = run_overload(10.0, duration_s=DURATION)
        retries = sum(
            client["retries"] for client in report.clients.values()
        )
        assert retries > 0

    def test_deterministic_under_fixed_seed(self):
        first = run_overload(10.0, duration_s=DURATION, seed=7)
        second = run_overload(10.0, duration_s=DURATION, seed=7)
        assert first.as_dict() == second.as_dict()

    def test_seed_changes_the_run(self):
        first = run_overload(1.0, duration_s=DURATION, seed=1)
        second = run_overload(1.0, duration_s=DURATION, seed=2)
        assert first.as_dict() != second.as_dict()


class TestSloGates:
    def test_full_sweep_holds_the_slos(self):
        reports = run_sweep([1.0, 10.0], duration_s=20.0)
        assert check_slo_invariants(reports) == []

    def test_broken_accounting_is_flagged(self):
        reports = run_sweep([1.0], duration_s=DURATION)
        lane = next(iter(reports[1.0].lanes.values()))
        lane["offered"] += 1
        violations = check_slo_invariants(reports)
        assert any("offered" in violation for violation in violations)

    def test_latency_regression_is_flagged(self):
        def fake(multiplier, p99):
            report = OverloadReport(
                multiplier=multiplier,
                duration_s=10.0,
                drained_at_s=10.0,
                interactive_rate_qps=1.0,
                bulk_rate_qps=0.1,
            )
            for tenant in ("acme", "globex"):
                report.lanes[f"{tenant}/interactive"] = {
                    "offered": 10, "admitted": 9, "completed": 9,
                    "failed": 0, "shed_queue_full": 1,
                    "shed_backpressure": 0, "deadline_missed": 0,
                    "shed": 1, "latency_p99_s": p99,
                    "latency_p50_s": p99, "queue_wait_p50_s": 0.0,
                    "queue_wait_p99_s": 0.0,
                }
                report.lanes[f"{tenant}/bulk"] = {
                    "offered": 10, "admitted": 5, "completed": 5,
                    "failed": 0, "shed_queue_full": 0,
                    "shed_backpressure": 5, "deadline_missed": 0,
                    "shed": 5, "latency_p99_s": p99,
                    "latency_p50_s": p99, "queue_wait_p50_s": 0.0,
                    "queue_wait_p99_s": 0.0,
                }
            return report

        reports = {1.0: fake(1.0, p99=0.1), 10.0: fake(10.0, p99=0.5)}
        violations = check_slo_invariants(reports)
        assert any("exceeds 2x" in violation for violation in violations)


class TestCli:
    def test_writes_json_artifact_and_passes(self, tmp_path, capsys):
        out = tmp_path / "overload.json"
        code = main(
            ["--duration", "20", "--multipliers", "1,10", "--out", str(out)]
        )
        assert code == 0
        assert "all overload SLOs hold" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["violations"] == []
        assert set(payload["reports"]) == {"1.0", "10.0"}
        lanes = payload["reports"]["10.0"]["lanes"]
        assert "acme/interactive" in lanes
