"""Smoke tests for the perf-regression microbenchmark harness.

Tiny scale, single repeat: these verify the harness's *mechanics* — payload
shape, equivalence gating, baseline comparison — not performance itself
(that is the CI ``perf-smoke`` job's contract, and it compares ratios, not
absolute times).
"""

import json

from repro.bench.microbench import (
    KERNELS,
    build_database,
    check_against_baseline,
    main,
    run_microbench,
    run_plan_cache_workload,
)

SMOKE = {"scale": 0.05, "repeat": 1}


def small_payload():
    return run_microbench(scale=SMOKE["scale"], repeat=SMOKE["repeat"])


class TestHarness:
    def test_payload_covers_every_kernel(self):
        payload = small_payload()
        assert set(payload["kernels"]) == {name for name, _ in KERNELS}
        for entry in payload["kernels"].values():
            assert entry["rows_out"] >= 0
            assert entry["interpreted_s"] > 0
            assert entry["compiled_s"] > 0
            assert entry["vectorized_s"] > 0
            assert entry["speedup"] > 0
            assert entry["vectorized_speedup"] > 0
            assert entry["vectorized_vs_compiled"] > 0
            assert set(entry["stats"]) == {
                "rows_scanned",
                "rows_output",
                "index_probes",
                "join_build_rows",
                "join_probe_rows",
            }

    def test_kernels_produce_rows(self):
        # Selectivities must not degenerate at small scale — an empty
        # kernel would time nothing.
        payload = small_payload()
        for name, entry in payload["kernels"].items():
            assert entry["rows_out"] > 0, name

    def test_plan_cache_workload_hits(self):
        db = build_database(scale=SMOKE["scale"])
        counters = run_plan_cache_workload(db, rounds=5)
        assert counters == {"hits": 4, "misses": 1}

    def test_dataset_is_deterministic(self):
        first = build_database(scale=SMOKE["scale"])
        second = build_database(scale=SMOKE["scale"])
        sql = "SELECT * FROM lineitem ORDER BY l_orderkey, l_extendedprice"
        assert first.execute(sql).rows == second.execute(sql).rows


class TestBaselineCheck:
    def test_passes_against_itself(self):
        payload = small_payload()
        assert check_against_baseline(payload, payload) == []

    def test_fails_on_lost_speedup(self):
        payload = small_payload()
        greedy = {
            "kernels": {
                name: {"speedup": entry["speedup"] * 10}
                for name, entry in payload["kernels"].items()
            }
        }
        failures = check_against_baseline(payload, greedy)
        assert failures
        assert all("fell below" in failure for failure in failures)

    def test_fails_on_lost_vectorized_ratio(self):
        # Every ratio field present in a baseline entry is gated, so a
        # regression of the batch path against either reference fails even
        # when compiled-vs-interpreted is unchanged.
        payload = small_payload()
        for field in ("vectorized_speedup", "vectorized_vs_compiled"):
            greedy = {
                "kernels": {
                    "scan": {field: payload["kernels"]["scan"][field] * 10}
                }
            }
            failures = check_against_baseline(payload, greedy)
            assert failures and field in failures[0]

    def test_fails_on_missing_kernel(self):
        payload = small_payload()
        baseline = {"kernels": {"no_such_kernel": {"speedup": 1.0}}}
        failures = check_against_baseline(payload, baseline)
        assert failures == ["no_such_kernel: kernel missing from current run"]

    def test_fails_on_zero_cache_hits(self):
        payload = small_payload()
        payload["plan_cache"] = {"hits": 0, "misses": 20}
        failures = check_against_baseline(payload, payload)
        assert any("plan_cache" in failure for failure in failures)

    def test_tolerance_absorbs_noise(self):
        payload = small_payload()
        # A baseline 20% above the measurement stays inside the 25% band.
        near = {
            "kernels": {
                name: {"speedup": entry["speedup"] * 1.2}
                for name, entry in payload["kernels"].items()
            }
        }
        assert check_against_baseline(payload, near) == []


class TestCli:
    def test_out_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            ["--scale", "0.05", "--repeat", "1", "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload["kernels"]) == {name for name, _ in KERNELS}
        assert "plan cache:" in capsys.readouterr().out

    def test_check_failure_sets_exit_code(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"kernels": {"scan": {"speedup": 1000.0}}})
        )
        code = main(
            ["--scale", "0.05", "--repeat", "1", "--check", str(baseline)]
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
