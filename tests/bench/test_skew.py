"""Skew bench: Zipf determinism, script purity, gates, and a small run."""

import json

import pytest

from repro.bench.harness import SEED
from repro.bench.skew import (
    GATED_POLICIES,
    SCENARIOS,
    VARIANTS,
    build_script,
    check_gates,
    main,
    percentile,
    run_variant,
)
from repro.bench.workloads import SkewedAccess, ZipfGenerator, ZipfWorkload


class TestZipfGenerator:
    def test_same_seed_same_stream(self):
        first = ZipfGenerator(100, seed=7).sample_many(200)
        second = ZipfGenerator(100, seed=7).sample_many(200)
        assert first == second

    def test_different_seed_different_stream(self):
        first = ZipfGenerator(100, seed=7).sample_many(200)
        second = ZipfGenerator(100, seed=8).sample_many(200)
        assert first != second

    def test_samples_stay_in_range(self):
        ranks = ZipfGenerator(10, seed=1).sample_many(500)
        assert all(0 <= rank < 10 for rank in ranks)

    def test_rank_zero_is_hottest(self):
        ranks = ZipfGenerator(50, theta=0.99, seed=3).sample_many(2000)
        counts = [ranks.count(rank) for rank in range(3)]
        assert counts[0] > counts[1] > ranks.count(49)

    def test_higher_theta_is_more_skewed(self):
        mild = ZipfGenerator(50, theta=0.5, seed=5).sample_many(2000)
        sharp = ZipfGenerator(50, theta=1.5, seed=5).sample_many(2000)
        assert sharp.count(0) > mild.count(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=0.0)
        with pytest.raises(ValueError):
            ZipfGenerator(10).sample_many(-1)


class TestZipfWorkload:
    KEYS = [(index + 0.5) / 64 for index in range(64)]
    TENANTS = [f"tenant-{index}" for index in range(8)]

    def test_same_seed_same_accesses(self):
        first = ZipfWorkload(self.KEYS, self.TENANTS, seed=9).take(100)
        second = ZipfWorkload(self.KEYS, self.TENANTS, seed=9).take(100)
        assert first == second

    def test_accesses_are_typed_and_in_domain(self):
        workload = ZipfWorkload(self.KEYS, self.TENANTS, seed=2)
        for access in workload.take(50):
            assert isinstance(access, SkewedAccess)
            assert access.key in self.KEYS
            assert access.tenant in self.TENANTS

    def test_hot_keys_are_shuffled_not_lowest(self):
        # The rank-to-key mapping is a seeded shuffle: the hottest key
        # should not structurally be the smallest one.
        hot = ZipfWorkload(self.KEYS, self.TENANTS, seed=SEED).hot_keys(8)
        assert sorted(hot) != hot

    def test_hottest_key_dominates_the_stream(self):
        workload = ZipfWorkload(self.KEYS, self.TENANTS, theta=1.2, seed=4)
        hottest = workload.hottest_key
        accesses = workload.take(2000)
        hottest_count = sum(1 for a in accesses if a.key == hottest)
        assert hottest_count > 2000 // 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload([], self.TENANTS)
        with pytest.raises(ValueError):
            ZipfWorkload(self.KEYS, [])


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_exact_ranks(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestBuildScript:
    def test_script_is_a_pure_function_of_its_inputs(self):
        for scenario in SCENARIOS:
            first = build_script(scenario, 200, SEED)
            second = build_script(scenario, 200, SEED)
            assert first == second, scenario

    def test_different_seed_changes_the_script(self):
        first, _ = build_script("zipf", 200, SEED)
        second, _ = build_script("zipf", 200, SEED + 1)
        assert first != second

    def test_hot_indices_point_at_search_ops(self):
        script, hot_indices = build_script("flash-crowd", 200, SEED)
        searches = [op for op in script if op[0] == "search"]
        assert hot_indices
        assert all(0 <= index < len(searches) for index in hot_indices)

    def test_script_interleaves_rebalance_ops(self):
        script, _ = build_script("zipf", 400, SEED)
        assert any(op[0] == "rebalance" for op in script)

    def test_churn_scenario_includes_membership_ops(self):
        script, _ = build_script("churn-hot-spell", 400, SEED)
        kinds = {op[0] for op in script}
        assert {"join", "crash", "restore", "leave"} <= kinds

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_script("tsunami", 200, SEED)


class TestRunVariant:
    def test_small_flash_crowd_run_is_census_clean(self):
        result = run_variant("flash-crowd", "power-of-k", 300, SEED)
        assert result.census_violation is None
        assert result.searches > 0
        assert result.census_checks > 0
        assert result.hot_p99 >= result.hot_p50

    def test_mitigated_beats_unbalanced_on_a_small_run(self):
        control = run_variant("flash-crowd", "none", 300, SEED)
        treated = run_variant("flash-crowd", "power-of-k", 300, SEED)
        assert control.census_violation is None
        assert treated.census_violation is None
        assert treated.migrations > 0
        assert treated.ratio_final < control.ratio_final

    def test_control_never_migrates(self):
        control = run_variant("zipf", "none", 300, SEED)
        assert control.migrations == 0
        assert control.fanout_reads == 0


class TestGates:
    def test_violation_strings_name_the_scenario(self):
        results = {
            scenario: {
                policy: run_variant(scenario, policy, 120, SEED)
                for policy in VARIANTS
            }
            for scenario in ["zipf"]
        }
        # Tamper: pretend a gated policy lost an entry.
        broken = results["zipf"][GATED_POLICIES[0]]
        broken.census_violation = "lost key 0.5"
        violations = check_gates(results)
        assert any("zipf" in violation for violation in violations)
        assert any("lost key" in violation for violation in violations)


class TestCli:
    def test_main_writes_the_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_skew.json"
        # Default search count: the gates are calibrated for it.
        code = main(["--out", str(out)])
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        payload = json.loads(out.read_text())
        assert payload["violations"] == []
        assert set(payload["scenarios"]) == set(SCENARIOS)
        for scenario in SCENARIOS:
            assert set(payload["scenarios"][scenario]) == set(VARIANTS)
