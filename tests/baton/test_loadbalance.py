"""Measured-load balancing: policies, hot-range migration, census gates."""

import pytest

from repro.baton import (
    BatonOverlay,
    LeastLoadedChoice,
    LoadBalancer,
    LoadBalancerConfig,
    NodeLoad,
    POLICY_NAMES,
    PowerOfKChoice,
    RandomChoice,
    ReplicatedOverlay,
    make_policy,
)
from repro.errors import BatonError, MigrationCensusError

NUM_KEYS = 120
#: An actually-inserted key (index 60) that lands mid-domain.
KEY = (60 + 0.5) / NUM_KEYS


def built_overlay(num_nodes=6, quiet=False):
    overlay = BatonOverlay()
    for index in range(num_nodes):
        overlay.join(f"n{index}")
    for index in range(NUM_KEYS):
        overlay.insert((index + 0.5) / NUM_KEYS, f"item-{index}")
    if quiet:
        # Loading the overlay itself records writes/routing; forget that
        # so tests start from a load-silent network.
        for node in overlay.nodes():
            node.load = NodeLoad()
    return overlay


class TestNodeLoad:
    def test_operations_accumulate_in_window_and_score(self):
        overlay = built_overlay()
        node, _ = overlay.find_responsible(0.5)
        before = node.load.score()
        overlay.search(0.5)
        assert node.load.reads == 1
        assert node.load.score() > before

    def test_decay_folds_window_into_ewma(self):
        overlay = built_overlay()
        node, _ = overlay.find_responsible(0.5)
        overlay.search(0.5)
        window_score = node.load.score()
        node.load.decay(0.5)
        assert node.load.read_window == 0
        assert 0 < node.load.score() < window_score
        # Totals survive the decay: they are all-time counters.
        assert node.load.reads == 1

    def test_flash_crowd_registers_before_any_decay(self):
        # The un-decayed window is part of the score, so a burst shows up
        # immediately instead of one epoch late.
        overlay = built_overlay()
        node, _ = overlay.find_responsible(0.5)
        for _ in range(50):
            overlay.search(0.5)
        assert node.load.score() >= 50.0


class TestChoicePolicies:
    def test_registry_builds_every_policy(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(BatonError):
            make_policy("round-robin")

    def test_least_loaded_picks_the_coldest(self):
        overlay = built_overlay(3, quiet=True)
        nodes = overlay.nodes()
        nodes[0].load.record_read(10)
        nodes[1].load.record_read(2)
        nodes[2].load.record_read(5)
        assert LeastLoadedChoice().choose(nodes) is nodes[1]

    def test_least_loaded_breaks_ties_by_node_id(self):
        overlay = built_overlay(3, quiet=True)
        nodes = sorted(overlay.nodes(), key=lambda n: n.node_id)
        assert LeastLoadedChoice().choose(nodes) is nodes[0]

    def test_random_choice_is_seeded(self):
        overlay = built_overlay(4)
        nodes = overlay.nodes()
        picks_a = [RandomChoice(seed=9).choose(nodes).node_id for _ in [0]]
        picks_b = [RandomChoice(seed=9).choose(nodes).node_id for _ in [0]]
        assert picks_a == picks_b

    def test_power_of_k_samples_then_takes_the_coldest(self):
        overlay = built_overlay(4, quiet=True)
        nodes = overlay.nodes()
        hot = nodes[0]
        hot.load.record_read(100)
        policy = PowerOfKChoice(k=len(nodes), seed=1)
        # k == population: identical to least-loaded.
        assert policy.choose(nodes) is not hot

    def test_power_of_k_requires_positive_k(self):
        with pytest.raises(BatonError):
            PowerOfKChoice(k=0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(BatonError):
            LeastLoadedChoice().choose([])


class TestConfig:
    def test_hot_multiple_must_exceed_one(self):
        with pytest.raises(BatonError):
            LoadBalancerConfig(hot_multiple=1.0)

    def test_decay_alpha_bounds(self):
        with pytest.raises(BatonError):
            LoadBalancerConfig(decay_alpha=0.0)
        with pytest.raises(BatonError):
            LoadBalancerConfig(decay_alpha=1.5)


class TestRebalance:
    def test_quiet_overlay_never_migrates(self):
        overlay = built_overlay(quiet=True)
        balancer = LoadBalancer(overlay)
        report = balancer.rebalance()
        assert report.migrations == 0
        assert report.hot_nodes == []

    def test_hot_range_migrates_and_spreads_subsequent_traffic(self):
        overlay = built_overlay(quiet=True)
        balancer = LoadBalancer(
            overlay, LoadBalancerConfig(hot_multiple=1.5)
        )
        hot_node, _ = overlay.find_responsible(KEY)
        hot_keys = sorted(hot_node.items)
        for key in hot_keys:
            for _ in range(30):
                overlay.search(key)
        census = overlay.census()
        report = balancer.rebalance()
        assert report.migrations >= 1
        assert report.entries_moved > 0
        assert report.hot_nodes == [hot_node.node_id]
        # Migration moved entries but the key space is intact.
        overlay.check_invariants(expected_census=census)
        # The payoff shows up in the *next* traffic epoch: the same hot
        # keys now land on several owners, so the ratio drops.
        for key in hot_keys:
            for _ in range(30):
                overlay.search(key)
        assert balancer.max_mean_ratio() < report.ratio_before

    def test_counters_accumulate_across_rounds(self):
        overlay = built_overlay()
        balancer = LoadBalancer(overlay)
        balancer.rebalance()
        balancer.rebalance()
        assert balancer.rounds == 2

    def test_census_mismatch_raises(self):
        overlay = built_overlay()
        census = overlay.census()
        node, _ = overlay.find_responsible(0.5)
        key = sorted(node.items)[0]
        node.items.pop(key)
        with pytest.raises(MigrationCensusError):
            overlay.check_invariants(expected_census=census)

    def test_duplicated_entry_raises(self):
        overlay = built_overlay()
        census = overlay.census()
        node, _ = overlay.find_responsible(0.5)
        key = sorted(node.items)[0]
        node.items[key].append("duplicate")
        with pytest.raises(MigrationCensusError):
            overlay.check_invariants(expected_census=census)

    def test_replicated_overlay_repairs_after_migration(self):
        replicated = ReplicatedOverlay(BatonOverlay())
        for index in range(6):
            replicated.join(f"n{index}")
        for index in range(NUM_KEYS):
            replicated.insert((index + 0.5) / NUM_KEYS, f"item-{index}")
        balancer = LoadBalancer(
            replicated, LoadBalancerConfig(hot_multiple=1.5)
        )
        hot_node, _ = replicated.overlay.find_responsible(KEY)
        for key in sorted(hot_node.items):
            for _ in range(30):
                replicated.search(key)
        report = balancer.rebalance()
        assert report.migrations >= 1
        # Replica copies track the new owners: kill every new owner of a
        # moved key and the value must still be readable.
        for node in replicated.overlay.nodes():
            replicated.mark_offline(node.node_id)
            for key in sorted(node.items):
                result = replicated.search(key)
                assert result.values, f"key {key} lost with {node.node_id} down"
            replicated.mark_online(node.node_id)


class TestReadFanout:
    def _replicated(self, policy=None):
        replicated = ReplicatedOverlay(BatonOverlay(), read_policy=policy)
        for index in range(6):
            replicated.join(f"n{index}")
        for index in range(NUM_KEYS):
            replicated.insert((index + 0.5) / NUM_KEYS, f"item-{index}")
        return replicated

    def test_no_policy_always_serves_from_primary(self):
        replicated = self._replicated()
        primary, _ = replicated.overlay.find_responsible(KEY)
        for _ in range(20):
            result = replicated.search(KEY)
            assert result.node_ids == [primary.node_id]
        assert replicated.fanout_reads == 0

    def test_policy_spreads_a_hot_key_across_replica_holders(self):
        replicated = self._replicated(policy=make_policy("power-of-k"))
        servers = set()
        for _ in range(60):
            result = replicated.search(KEY)
            servers.update(result.node_ids)
        assert len(servers) > 1
        assert replicated.fanout_reads > 0
        assert replicated.failover_reads == 0

    def test_replica_reads_return_the_same_values(self):
        replicated = self._replicated(policy=make_policy("least-loaded"))
        expected = replicated.overlay.search(KEY).values
        for _ in range(10):
            assert replicated.search(KEY).values == expected

    def test_offline_primary_counts_as_failover_not_fanout(self):
        replicated = self._replicated()
        primary, _ = replicated.overlay.find_responsible(KEY)
        replicated.mark_offline(primary.node_id)
        result = replicated.search(KEY)
        assert result.values
        assert replicated.failover_reads == 1
        assert replicated.fanout_reads == 0

    def test_range_search_fans_out_per_segment(self):
        replicated = self._replicated(policy=make_policy("least-loaded"))
        plain = self._replicated()
        fanned = replicated.range_search(0.1, 0.9)
        baseline = plain.range_search(0.1, 0.9)
        assert sorted(map(repr, fanned.values)) == sorted(
            map(repr, baseline.values)
        )

    def test_per_call_policy_overrides_constructor(self):
        replicated = self._replicated()
        policy = make_policy("random", seed=3)
        servers = set()
        for _ in range(40):
            result = replicated.search(KEY, policy=policy)
            servers.update(result.node_ids)
        assert len(servers) > 1
