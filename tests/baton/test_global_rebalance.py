"""Tests for the network-wide load-balancing adjustment."""

import pytest

from repro.baton import BatonOverlay


def skewed_overlay(num_nodes=8, items=64):
    """All items crammed into one node's sub-domain."""
    overlay = BatonOverlay()
    for i in range(num_nodes):
        overlay.join(f"peer-{i}")
    hot = overlay.nodes()[0]
    low, high = hot.r0.low, hot.r0.high
    for i in range(items):
        key = low + (i + 0.5) * (high - low) / items
        overlay.insert(key, f"item-{i}")
    return overlay


class TestGlobalRebalance:
    def test_spreads_skewed_load(self):
        overlay = skewed_overlay()
        before = max(node.item_count for node in overlay.nodes())
        assert overlay.global_rebalance()
        after = max(node.item_count for node in overlay.nodes())
        assert after < before
        # The load is spread well beyond the two adjacent neighbours.
        loaded = sum(1 for node in overlay.nodes() if node.item_count > 0)
        assert loaded >= 4

    def test_preserves_invariants_and_items(self):
        overlay = skewed_overlay()
        overlay.global_rebalance()
        overlay.check_invariants()
        total = sum(node.item_count for node in overlay.nodes())
        assert total == 64

    def test_items_remain_searchable(self):
        overlay = skewed_overlay(num_nodes=6, items=30)
        hot = overlay.nodes()[0]
        keys = sorted(hot.items)
        overlay.global_rebalance()
        for key in keys:
            assert overlay.search(key).values, f"lost item under key {key}"

    def test_balanced_overlay_is_noop(self):
        overlay = BatonOverlay()
        for i in range(6):
            overlay.join(f"peer-{i}")
        for i in range(6):
            overlay.insert((i + 0.5) / 6.0, i)
        # Load already even-ish: one item per node region.
        assert not overlay.global_rebalance()

    def test_converges(self):
        overlay = skewed_overlay()
        overlay.global_rebalance()
        # A second invocation finds nothing more to move.
        assert not overlay.global_rebalance()
