"""BATON routing-structure fidelity checks against the protocol's definition."""

import math

import pytest

from repro.baton import BatonOverlay


def build(n):
    overlay = BatonOverlay()
    for i in range(n):
        overlay.join(f"peer-{i}")
    return overlay


class TestRoutingTables:
    def test_entries_exist_for_every_populated_distance(self):
        """A node links to every existing same-level node at distance 2^i."""
        overlay = build(31)  # perfectly full: 5 levels
        by_position = {
            (node.level, node.position): node for node in overlay.nodes()
        }
        for node in overlay.nodes():
            expected_left = []
            expected_right = []
            distance = 1
            while distance < (1 << node.level) or distance <= node.position:
                left = by_position.get((node.level, node.position - distance))
                if left is not None:
                    expected_left.append(left.node_id)
                right = by_position.get((node.level, node.position + distance))
                if right is not None:
                    expected_right.append(right.node_id)
                distance *= 2
            assert [n.node_id for n in node.left_table] == expected_left
            assert [n.node_id for n in node.right_table] == expected_right

    def test_root_has_empty_tables(self):
        overlay = build(7)
        assert overlay.root.left_table == []
        assert overlay.root.right_table == []

    def test_tables_refreshed_after_leave(self):
        overlay = build(15)
        victim = overlay.nodes()[3].node_id
        overlay.leave(victim)
        for node in overlay.nodes():
            for neighbor in node.left_table + node.right_table:
                assert neighbor.node_id != victim
                assert neighbor.node_id in overlay


class TestInOrderSemantics:
    def test_in_order_traversal_sorted_by_range(self):
        overlay = build(20)
        lows = [node.r0.low for node in overlay.nodes()]
        assert lows == sorted(lows)

    def test_r1_covers_r0_of_descendants(self):
        overlay = build(20)
        def descendants(node):
            if node is None:
                return []
            return (
                [node]
                + descendants(node.left_child)
                + descendants(node.right_child)
            )
        for node in overlay.nodes():
            r1 = node.r1
            for child in descendants(node):
                assert r1.covers(child.r0)

    def test_sibling_subtrees_disjoint(self):
        overlay = build(20)
        for node in overlay.nodes():
            if node.left_child is not None and node.right_child is not None:
                assert not node.left_child.r1.overlaps(node.right_child.r1)


class TestHopComplexityUnderChurn:
    def test_hops_stay_logarithmic_after_leaves(self):
        overlay = build(40)
        for i in range(0, 12, 3):
            overlay.leave(f"peer-{i}")
        worst = 0
        for start in overlay.nodes():
            for i in range(20):
                key = (i + 0.5) / 20.0
                _, hops = overlay.find_responsible(key, start.node_id)
                worst = max(worst, hops)
        assert worst <= 3 * math.ceil(math.log2(len(overlay)))
