"""Tests for the BATON overlay: membership, routing, items, balancing."""

import math

import pytest

from repro.errors import BatonError, BatonRangeError
from repro.baton import BatonOverlay, Range, string_to_key


def build_overlay(n):
    overlay = BatonOverlay()
    for i in range(n):
        overlay.join(f"peer-{i}")
    return overlay


class TestJoin:
    def test_first_join_becomes_root(self):
        overlay = build_overlay(1)
        assert overlay.root.node_id == "peer-0"
        assert overlay.root.r0 == Range(0.0, 1.0)

    def test_duplicate_join_rejected(self):
        overlay = build_overlay(1)
        with pytest.raises(BatonError):
            overlay.join("peer-0")

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 31, 50])
    def test_invariants_hold_while_growing(self, n):
        overlay = build_overlay(n)
        overlay.check_invariants()
        assert len(overlay) == n

    def test_tree_stays_balanced(self):
        overlay = build_overlay(50)
        # Height of a balanced binary tree with 50 nodes is 6.
        assert overlay.height() == math.floor(math.log2(50)) + 1

    def test_ranges_tile_domain(self):
        overlay = build_overlay(10)
        nodes = overlay.nodes()
        assert nodes[0].r0.low == 0.0
        assert nodes[-1].r0.high == 1.0
        for a, b in zip(nodes, nodes[1:]):
            assert a.r0.high == b.r0.low

    def test_r1_is_subtree_union(self):
        overlay = build_overlay(7)
        root = overlay.root
        assert root.r1 == Range(0.0, 1.0)
        left = root.left_child
        assert left.r1.low == 0.0
        assert left.r1.high == root.r0.low


class TestLinks:
    def test_adjacent_links_follow_in_order(self):
        overlay = build_overlay(8)
        nodes = overlay.nodes()
        for index, node in enumerate(nodes):
            if index > 0:
                assert node.adjacent_left is nodes[index - 1]
            else:
                assert node.adjacent_left is None
            if index < len(nodes) - 1:
                assert node.adjacent_right is nodes[index + 1]
            else:
                assert node.adjacent_right is None

    def test_routing_table_distances_are_powers_of_two(self):
        overlay = build_overlay(32)
        for node in overlay.nodes():
            for table, sign in ((node.left_table, -1), (node.right_table, 1)):
                for neighbor in table:
                    assert neighbor.level == node.level
                    distance = abs(neighbor.position - node.position)
                    assert distance & (distance - 1) == 0  # power of two

    def test_routing_table_size_logarithmic(self):
        overlay = build_overlay(64)
        for node in overlay.nodes():
            level_width = 1 << node.level
            limit = math.ceil(math.log2(level_width)) + 1 if level_width > 1 else 1
            assert len(node.left_table) <= limit
            assert len(node.right_table) <= limit


class TestRouting:
    def test_search_from_root(self):
        overlay = build_overlay(20)
        node, hops = overlay.find_responsible(0.37)
        assert node.r0.contains(0.37)

    @pytest.mark.parametrize("n", [2, 5, 10, 20, 50])
    def test_every_node_finds_every_key(self, n):
        overlay = build_overlay(n)
        keys = [i / 17.0 % 1.0 for i in range(17)]
        for start in overlay.nodes():
            for key in keys:
                node, hops = overlay.find_responsible(key, start.node_id)
                assert node.r0.contains(key)

    def test_hops_logarithmic(self):
        overlay = build_overlay(63)  # perfectly balanced: 6 levels
        max_hops = 0
        for start in overlay.nodes():
            for i in range(40):
                key = (i + 0.5) / 40.0
                _, hops = overlay.find_responsible(key, start.node_id)
                max_hops = max(max_hops, hops)
        # BATON guarantees O(log N); allow a small constant factor.
        assert max_hops <= 3 * math.ceil(math.log2(63))

    def test_key_outside_domain_rejected(self):
        overlay = build_overlay(3)
        with pytest.raises(BatonRangeError):
            overlay.find_responsible(1.5)

    def test_empty_overlay_rejected(self):
        with pytest.raises(BatonError):
            BatonOverlay().find_responsible(0.5)

    def test_unknown_start_rejected(self):
        overlay = build_overlay(3)
        with pytest.raises(BatonError):
            overlay.find_responsible(0.5, "ghost")


class TestItems:
    def test_insert_then_search(self):
        overlay = build_overlay(10)
        overlay.insert(0.42, "value-a")
        overlay.insert(0.42, "value-b")
        result = overlay.search(0.42)
        assert sorted(result.values) == ["value-a", "value-b"]

    def test_search_missing_key(self):
        overlay = build_overlay(10)
        assert overlay.search(0.42).values == []

    def test_delete(self):
        overlay = build_overlay(10)
        overlay.insert(0.42, "v")
        removed, _ = overlay.delete(0.42, "v")
        assert removed
        assert overlay.search(0.42).values == []

    def test_delete_missing(self):
        overlay = build_overlay(10)
        removed, _ = overlay.delete(0.42, "v")
        assert not removed

    def test_items_stored_at_responsible_node(self):
        overlay = build_overlay(10)
        for i in range(50):
            overlay.insert(i / 50.0, f"item-{i}")
        overlay.check_invariants()

    def test_range_search(self):
        overlay = build_overlay(10)
        for i in range(10):
            overlay.insert(i / 10.0, f"item-{i}")
        result = overlay.range_search(0.25, 0.65)
        values = sorted(value for _, value in result.values)
        assert values == ["item-3", "item-4", "item-5", "item-6"]

    def test_range_search_keys_sorted(self):
        overlay = build_overlay(8)
        for i in range(20):
            overlay.insert((i * 7 % 20) / 20.0, i)
        result = overlay.range_search(0.0, 1.0)
        keys = [key for key, _ in result.values]
        assert keys == sorted(keys)

    def test_range_search_empty_range(self):
        overlay = build_overlay(5)
        assert overlay.range_search(0.6, 0.4).values == []

    def test_range_search_clamps_to_domain(self):
        overlay = build_overlay(5)
        overlay.insert(0.1, "x")
        result = overlay.range_search(-5.0, 0.5)
        assert [value for _, value in result.values] == ["x"]


class TestLeave:
    def test_leaf_leave_merges_range(self):
        overlay = build_overlay(10)
        for i in range(30):
            overlay.insert(i / 30.0, f"item-{i}")
        leaf = next(node for node in overlay.nodes() if node.is_leaf)
        overlay.leave(leaf.node_id)
        overlay.check_invariants()
        assert len(overlay) == 9
        # No items lost.
        total = sum(node.item_count for node in overlay.nodes())
        assert total == 30

    def test_internal_leave_triggers_global_adjustment(self):
        overlay = build_overlay(10)
        for i in range(30):
            overlay.insert(i / 30.0, f"item-{i}")
        internal = next(node for node in overlay.nodes() if not node.is_leaf)
        overlay.leave(internal.node_id)
        overlay.check_invariants()
        assert len(overlay) == 9
        total = sum(node.item_count for node in overlay.nodes())
        assert total == 30

    def test_root_leave(self):
        overlay = build_overlay(5)
        overlay.leave(overlay.root.node_id)
        overlay.check_invariants()
        assert len(overlay) == 4

    def test_last_node_leave_empties_overlay(self):
        overlay = build_overlay(1)
        overlay.leave("peer-0")
        assert len(overlay) == 0
        assert overlay.root is None

    def test_leave_unknown_rejected(self):
        with pytest.raises(BatonError):
            build_overlay(3).leave("ghost")

    def test_churn_preserves_invariants(self):
        overlay = build_overlay(12)
        for i in range(24):
            overlay.insert(i / 24.0, i)
        # Alternate leaves and joins.
        for round_number in range(6):
            victim = overlay.nodes()[round_number % len(overlay)].node_id
            overlay.leave(victim)
            overlay.check_invariants()
            overlay.join(f"new-{round_number}")
            overlay.check_invariants()
        total = sum(node.item_count for node in overlay.nodes())
        assert total == 24


class TestLoadBalancing:
    def test_balance_moves_items_to_adjacent(self):
        overlay = build_overlay(4)
        # Pile items onto one node.
        heavy = overlay.nodes()[1]
        low, high = heavy.r0.low, heavy.r0.high
        for i in range(20):
            key = low + (i + 0.5) * (high - low) / 20.0
            overlay.insert(key, i)
        before = heavy.item_count
        assert overlay.balance_with_adjacent(heavy.node_id)
        overlay.check_invariants()
        assert heavy.item_count < before
        total = sum(node.item_count for node in overlay.nodes())
        assert total == 20

    def test_balance_noop_when_even(self):
        overlay = build_overlay(4)
        assert not overlay.balance_with_adjacent(overlay.nodes()[1].node_id)

    def test_balance_single_node(self):
        overlay = build_overlay(1)
        assert not overlay.balance_with_adjacent("peer-0")


class TestStringToKey:
    def test_deterministic(self):
        assert string_to_key("lineitem") == string_to_key("lineitem")

    def test_in_domain(self):
        for name in ["lineitem", "orders", "part", "supplier", "x" * 100]:
            key = string_to_key(name)
            assert 0.0 <= key < 1.0

    def test_different_strings_differ(self):
        assert string_to_key("lineitem") != string_to_key("orders")

    def test_custom_domain(self):
        key = string_to_key("lineitem", Range(10.0, 20.0))
        assert 10.0 <= key < 20.0
