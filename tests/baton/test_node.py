"""Tests for BATON node primitives (ranges, items)."""

import pytest

from repro.errors import BatonRangeError
from repro.baton import BatonNode, Range


class TestRange:
    def test_contains_half_open(self):
        r = Range(0.0, 1.0)
        assert r.contains(0.0)
        assert r.contains(0.999)
        assert not r.contains(1.0)
        assert not r.contains(-0.1)

    def test_inverted_rejected(self):
        with pytest.raises(BatonRangeError):
            Range(1.0, 0.0)

    def test_empty_allowed(self):
        r = Range(0.5, 0.5)
        assert r.width == 0.0
        assert not r.contains(0.5)

    def test_overlaps(self):
        assert Range(0, 5).overlaps(Range(4, 10))
        assert not Range(0, 5).overlaps(Range(5, 10))  # half-open: touching
        assert Range(0, 10).overlaps(Range(3, 4))

    def test_covers(self):
        assert Range(0, 10).covers(Range(3, 4))
        assert Range(0, 10).covers(Range(0, 10))
        assert not Range(0, 10).covers(Range(5, 11))

    def test_midpoint_width(self):
        r = Range(2.0, 4.0)
        assert r.midpoint == 3.0
        assert r.width == 2.0

    def test_str(self):
        assert str(Range(0.0, 0.5)) == "[0, 0.5)"


class TestNodeItems:
    def test_add_and_count(self):
        node = BatonNode("n1", Range(0.0, 1.0))
        node.add_item(0.5, "a")
        node.add_item(0.5, "b")
        node.add_item(0.7, "c")
        assert node.item_count == 3

    def test_add_outside_range_rejected(self):
        node = BatonNode("n1", Range(0.0, 0.5))
        with pytest.raises(BatonRangeError):
            node.add_item(0.7, "a")

    def test_remove_item(self):
        node = BatonNode("n1", Range(0.0, 1.0))
        node.add_item(0.5, "a")
        assert node.remove_item(0.5, "a")
        assert node.item_count == 0
        assert 0.5 not in node.items

    def test_remove_missing_item(self):
        node = BatonNode("n1", Range(0.0, 1.0))
        assert not node.remove_item(0.5, "a")
        node.add_item(0.5, "a")
        assert not node.remove_item(0.5, "b")

    def test_items_in_range_sorted(self):
        node = BatonNode("n1", Range(0.0, 1.0))
        node.add_item(0.9, "c")
        node.add_item(0.1, "a")
        node.add_item(0.5, "b")
        matches = node.items_in_range(0.0, 0.8)
        assert matches == [(0.1, "a"), (0.5, "b")]

    def test_is_leaf(self):
        node = BatonNode("n1", Range(0.0, 1.0))
        assert node.is_leaf
        node.left_child = BatonNode("n2", Range(0.0, 0.5))
        assert not node.is_leaf
