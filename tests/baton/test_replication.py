"""Tests for two-tier partial replication over BATON."""

import pytest

from repro.errors import BatonError
from repro.baton import BatonOverlay, ReplicatedOverlay


def build(n, replica_factor=2):
    replicated = ReplicatedOverlay(BatonOverlay(), replica_factor)
    for i in range(n):
        replicated.join(f"peer-{i}")
    return replicated


class TestConstruction:
    def test_invalid_replica_factor(self):
        with pytest.raises(BatonError):
            ReplicatedOverlay(BatonOverlay(), 0)

    def test_len_passthrough(self):
        assert len(build(5)) == 5


class TestReplication:
    def test_insert_creates_replicas(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        total_replicas = sum(
            replicated.replica_count(f"peer-{i}") for i in range(5)
        )
        assert total_replicas == 2

    def test_search_serves_from_primary_when_online(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        result = replicated.search(0.42)
        assert result.values == ["v"]

    def test_search_fails_over_to_replica(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        result = replicated.search(0.42)
        assert result.values == ["v"]
        assert result.node_ids[0] != primary.node_id

    def test_search_raises_when_all_replicas_down(self):
        replicated = build(3, replica_factor=1)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        for node in replicated.overlay.nodes():
            replicated.mark_offline(node.node_id)
        with pytest.raises(BatonError):
            replicated.search(0.42)

    def test_recovered_primary_serves_again(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        replicated.mark_online(primary.node_id)
        result = replicated.search(0.42)
        assert result.node_ids == [primary.node_id]

    def test_delete_removes_replicas_too(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        removed, _ = replicated.delete(0.42, "v")
        assert removed
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        assert replicated.search(0.42).values == []

    def test_single_node_has_no_replicas(self):
        replicated = build(1)
        replicated.insert(0.42, "v")
        assert replicated.replica_count("peer-0") == 0
        assert replicated.search(0.42).values == ["v"]


class TestMembershipRebuild:
    def test_join_rebuilds_replicas(self):
        replicated = build(3)
        replicated.insert(0.42, "v")
        replicated.join("late-joiner")
        # After the rebuild, failure of the primary must still be survivable.
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        assert replicated.search(0.42).values == ["v"]

    def test_leave_rereplicates(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        # A replica holder departs; redundancy must be restored.
        holders = [
            node_id
            for node_id in (f"peer-{i}" for i in range(5))
            if node_id != primary.node_id
            and replicated.replica_count(node_id) > 0
        ]
        replicated.leave(holders[0])
        new_primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(new_primary.node_id)
        assert replicated.search(0.42).values == ["v"]

    def test_replica_factor_capped_by_population(self):
        replicated = build(2, replica_factor=5)
        replicated.insert(0.42, "v")
        total = sum(replicated.replica_count(f"peer-{i}") for i in range(2))
        assert total == 1  # only one other node exists
