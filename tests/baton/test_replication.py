"""Tests for two-tier partial replication over BATON."""

import pytest

from repro.errors import BatonError
from repro.baton import BatonOverlay, ReplicatedOverlay


def build(n, replica_factor=2):
    replicated = ReplicatedOverlay(BatonOverlay(), replica_factor)
    for i in range(n):
        replicated.join(f"peer-{i}")
    return replicated


class TestConstruction:
    def test_invalid_replica_factor(self):
        with pytest.raises(BatonError):
            ReplicatedOverlay(BatonOverlay(), 0)

    def test_len_passthrough(self):
        assert len(build(5)) == 5


class TestReplication:
    def test_insert_creates_replicas(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        total_replicas = sum(
            replicated.replica_count(f"peer-{i}") for i in range(5)
        )
        assert total_replicas == 2

    def test_search_serves_from_primary_when_online(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        result = replicated.search(0.42)
        assert result.values == ["v"]

    def test_search_fails_over_to_replica(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        result = replicated.search(0.42)
        assert result.values == ["v"]
        assert result.node_ids[0] != primary.node_id

    def test_search_raises_when_all_replicas_down(self):
        replicated = build(3, replica_factor=1)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        for node in replicated.overlay.nodes():
            replicated.mark_offline(node.node_id)
        with pytest.raises(BatonError):
            replicated.search(0.42)

    def test_recovered_primary_serves_again(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        replicated.mark_online(primary.node_id)
        result = replicated.search(0.42)
        assert result.node_ids == [primary.node_id]

    def test_delete_removes_replicas_too(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        removed, _ = replicated.delete(0.42, "v")
        assert removed
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        assert replicated.search(0.42).values == []

    def test_single_node_has_no_replicas(self):
        replicated = build(1)
        replicated.insert(0.42, "v")
        assert replicated.replica_count("peer-0") == 0
        assert replicated.search(0.42).values == ["v"]


class TestMembershipRebuild:
    def test_join_rebuilds_replicas(self):
        replicated = build(3)
        replicated.insert(0.42, "v")
        replicated.join("late-joiner")
        # After the rebuild, failure of the primary must still be survivable.
        primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(primary.node_id)
        assert replicated.search(0.42).values == ["v"]

    def test_leave_rereplicates(self):
        replicated = build(5)
        replicated.insert(0.42, "v")
        primary = replicated.overlay.find_responsible(0.42)[0]
        # A replica holder departs; redundancy must be restored.
        holders = [
            node_id
            for node_id in (f"peer-{i}" for i in range(5))
            if node_id != primary.node_id
            and replicated.replica_count(node_id) > 0
        ]
        replicated.leave(holders[0])
        new_primary = replicated.overlay.find_responsible(0.42)[0]
        replicated.mark_offline(new_primary.node_id)
        assert replicated.search(0.42).values == ["v"]

    def test_replica_factor_capped_by_population(self):
        replicated = build(2, replica_factor=5)
        replicated.insert(0.42, "v")
        total = sum(replicated.replica_count(f"peer-{i}") for i in range(2))
        assert total == 1  # only one other node exists


def normalized_store(replicated):
    """The replica store as plain data, empty entries dropped."""
    return {
        holder_id: {
            primary_id: {key: sorted(map(str, values))
                         for key, values in primary_store.items() if values}
            for primary_id, primary_store in store.items()
            if any(primary_store.values())
        }
        for holder_id, store in replicated._store.items()
        if any(any(ps.values()) for ps in store.values())
    }


class TestIncrementalRepair:
    """Membership churn must repair only the affected neighbourhood while
    keeping the replica store identical to a from-scratch rebuild."""

    def test_repair_touches_neighbourhood_not_network(self):
        replicated = build(64)
        replicated.join("late-joiner")
        assert replicated.last_repair_count <= 10  # not all 65
        replicated.leave("peer-10")
        assert replicated.last_repair_count <= 12

    def test_incremental_matches_full_rebuild_under_churn(self):
        replicated = build(16)
        for i in range(60):
            replicated.insert((i + 0.5) / 60.0, f"v{i}")
        # Interleave joins, leaves and inserts; after every membership
        # change the incremental store must equal a full rebuild.
        for round_number in range(8):
            if round_number % 2 == 0:
                replicated.join(f"extra-{round_number}")
            else:
                replicated.leave(f"peer-{round_number}")
            replicated.insert(0.01 + round_number / 100.0, f"r{round_number}")
            incremental = normalized_store(replicated)
            replicated.rebuild_replicas()
            assert incremental == normalized_store(replicated)

    def test_replication_level_survives_churn(self):
        replica_factor = 2
        replicated = build(10, replica_factor=replica_factor)
        keys = [(i + 0.5) / 20.0 for i in range(20)]
        for i, key in enumerate(keys):
            replicated.insert(key, f"v{i}")
        replicated.leave("peer-3")
        replicated.leave("peer-7")
        replicated.join("newcomer-a")
        replicated.join("newcomer-b")
        # Every key is still fully replicated: primary + replica_factor
        # copies, so any single primary failure is survivable.
        for i, key in enumerate(keys):
            primary = replicated.overlay.find_responsible(key)[0]
            holders = [
                holder_id
                for holder_id in replicated._assignment[primary.node_id]
                if f"v{i}"
                in replicated._store.get(holder_id, {})
                .get(primary.node_id, {})
                .get(key, [])
            ]
            assert len(holders) == replica_factor, key
            replicated.mark_offline(primary.node_id)
            assert replicated.search(key).values == [f"v{i}"]
            replicated.mark_online(primary.node_id)

    def test_repair_count_resets_per_change(self):
        replicated = build(32)
        replicated.join("a")
        first = replicated.last_repair_count
        replicated.join("b")
        assert replicated.last_repair_count > 0
        assert first > 0
