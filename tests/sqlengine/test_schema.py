"""Tests for schema and column definitions."""

import pytest

from repro.errors import SqlCatalogError
from repro.sqlengine import Column, ColumnType, TableSchema


def simple_schema():
    return TableSchema(
        "users",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT),
            Column("joined", ColumnType.DATE),
        ],
        primary_key="id",
    )


class TestColumn:
    def test_valid_column(self):
        column = Column("age", ColumnType.INTEGER)
        assert column.name == "age"
        assert column.nullable

    def test_invalid_name_rejected(self):
        with pytest.raises(SqlCatalogError):
            Column("bad name", ColumnType.INTEGER)
        with pytest.raises(SqlCatalogError):
            Column("", ColumnType.INTEGER)


class TestTableSchema:
    def test_basic_properties(self):
        schema = simple_schema()
        assert schema.name == "users"
        assert schema.column_names == ["id", "name", "joined"]
        assert schema.primary_key == "id"

    def test_name_lowercased(self):
        schema = TableSchema("Users", [Column("id", ColumnType.INTEGER)])
        assert schema.name == "users"

    def test_empty_columns_rejected(self):
        with pytest.raises(SqlCatalogError):
            TableSchema("t", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlCatalogError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INTEGER), Column("A", ColumnType.TEXT)],
            )

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SqlCatalogError):
            TableSchema("t", [Column("a", ColumnType.INTEGER)], primary_key="b")

    def test_column_lookup(self):
        schema = simple_schema()
        assert schema.column("NAME").column_type is ColumnType.TEXT
        assert schema.column_index("joined") == 2
        assert schema.has_column("id")
        assert not schema.has_column("zzz")

    def test_unknown_column_lookup_raises(self):
        with pytest.raises(SqlCatalogError):
            simple_schema().column("zzz")
        with pytest.raises(SqlCatalogError):
            simple_schema().column_index("zzz")


class TestCoerceRow:
    def test_valid_row(self):
        schema = simple_schema()
        row = schema.coerce_row([1, "ann", "2020-01-01"])
        assert row == (1, "ann", "2020-01-01")

    def test_wrong_arity_rejected(self):
        with pytest.raises(SqlCatalogError):
            simple_schema().coerce_row([1, "ann"])

    def test_null_in_not_null_column_rejected(self):
        with pytest.raises(SqlCatalogError):
            simple_schema().coerce_row([None, "ann", "2020-01-01"])

    def test_null_in_nullable_column_allowed(self):
        row = simple_schema().coerce_row([1, None, None])
        assert row == (1, None, None)

    def test_values_are_coerced(self):
        row = simple_schema().coerce_row(["5", 42, "2020-01-01"])
        assert row == (5, "42", "2020-01-01")
