"""The vectorized executor: batching, stats parity, fallbacks, modes."""

from dataclasses import asdict

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine import Database, EXECUTION_MODES, VectorizedExecutor


def build(mode="vectorized", **kwargs):
    db = Database(execution_mode=mode, **kwargs)
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, val INTEGER)"
    )
    db.execute("CREATE INDEX idx_val ON t (val)")
    db.table("t").insert_many(
        [(i, ["x", "y", "z"][i % 3], (i * 7) % 50) for i in range(100)]
    )
    return db


def both(sql, **kwargs):
    """(interpreted result, vectorized result) over identical data."""
    return build("interpreted", **kwargs).execute(sql), build(
        "vectorized", **kwargs
    ).execute(sql)


class TestBatching:
    @pytest.mark.parametrize("batch_size", [1, 3, 100, 1024])
    def test_results_independent_of_batch_size(self, batch_size):
        reference = build("interpreted").execute(
            "SELECT grp, SUM(val) FROM t WHERE val > 10 GROUP BY grp "
            "ORDER BY grp"
        )
        result = build("vectorized", batch_size=batch_size).execute(
            "SELECT grp, SUM(val) FROM t WHERE val > 10 GROUP BY grp "
            "ORDER BY grp"
        )
        assert result.rows == reference.rows
        assert asdict(result.stats) == asdict(reference.stats)

    def test_batch_size_must_be_positive(self):
        with pytest.raises(SqlExecutionError):
            VectorizedExecutor({}, batch_size=0)


class TestStatsParity:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t WHERE val = 14",  # index equality probe
            "SELECT id FROM t WHERE val > 40",  # index range scan
            "SELECT a.id, b.id FROM t a, t b WHERE a.val = b.id",  # hash join
            "SELECT a.id FROM t a, t b WHERE a.val < b.id AND b.id < 3",
            "SELECT a.id, b.id FROM t a LEFT JOIN t b ON a.id = b.val",
        ],
    )
    def test_counters_identical_to_reference(self, sql):
        reference, result = both(sql)
        assert result.rows == reference.rows
        assert asdict(result.stats) == asdict(reference.stats)
        assert (
            result.stats.index_probes
            + result.stats.join_probe_rows
            + result.stats.rows_scanned
        ) > 0


class TestGroupByFallback:
    def test_non_numeric_sum_matches_reference_error(self):
        sql = "SELECT SUM(grp) FROM t"
        with pytest.raises(SqlExecutionError) as reference:
            build("interpreted").execute(sql)
        with pytest.raises(SqlExecutionError) as vectorized:
            build("vectorized").execute(sql)
        assert str(vectorized.value) == str(reference.value)

    def test_mixed_type_min_matches_reference_error(self):
        db = build("vectorized")
        db.execute("CREATE TABLE m (k INTEGER, v TEXT)")
        db.table("m").insert_many([(1, "a"), (1, None)])
        # MIN over TEXT works; the fallback must not fire spuriously.
        assert db.execute("SELECT MIN(v) FROM m").rows == [("a",)]


class TestExecutionModes:
    def test_default_mode_is_vectorized(self):
        assert Database().execution_mode == "vectorized"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SqlExecutionError):
            Database(execution_mode="jit")
        db = Database()
        with pytest.raises(SqlExecutionError):
            db.execution_mode = "jit"

    def test_mode_and_use_compiled_are_exclusive(self):
        with pytest.raises(SqlExecutionError):
            Database(use_compiled=True, execution_mode="vectorized")

    def test_use_compiled_compatibility_mapping(self):
        assert Database(use_compiled=True).execution_mode == "compiled"
        assert Database(use_compiled=False).execution_mode == "interpreted"
        db = Database()
        db.use_compiled = False
        assert db.execution_mode == "interpreted"
        assert not db.use_compiled
        db.use_compiled = True
        assert db.execution_mode == "compiled"
        assert db.use_compiled

    def test_plan_cache_keys_include_the_mode(self):
        db = build("vectorized")
        sql = "SELECT id FROM t WHERE val > 40"
        db.execute(sql)
        db.execute(sql)
        assert db.plan_cache_hits == 1
        db.execution_mode = "compiled"
        db.execute(sql)  # same SQL, different mode: a fresh miss
        assert db.plan_cache_misses >= 2
        db.execute(sql)
        assert db.plan_cache_hits == 2

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_every_mode_runs_dml_and_queries(self, mode):
        db = build(mode)
        db.execute("UPDATE t SET val = val + 1 WHERE id < 10")
        db.execute("DELETE FROM t WHERE id = 99")
        result = db.execute("SELECT COUNT(*), SUM(val) FROM t")
        assert result.rows[0][0] == 99


class TestOperatorEdges:
    def test_empty_table_through_all_operators(self):
        db = Database(execution_mode="vectorized")
        db.execute("CREATE TABLE e (a INTEGER, b TEXT)")
        assert db.execute(
            "SELECT b, COUNT(*) FROM e WHERE a > 0 GROUP BY b "
            "ORDER BY b LIMIT 5"
        ).rows == []
        assert db.execute("SELECT COUNT(*), SUM(a) FROM e").rows == [(0, None)]

    def test_left_join_pads_unmatched_rows_with_nulls(self):
        db = Database(execution_mode="vectorized")
        db.execute("CREATE TABLE l (a INTEGER)")
        db.execute("CREATE TABLE r (a INTEGER, b TEXT)")
        db.table("l").insert_many([(1,), (2,)])
        db.table("r").insert_many([(1, "one")])
        assert db.execute(
            "SELECT l.a, r.b FROM l LEFT JOIN r ON l.a = r.a ORDER BY l.a"
        ).rows == [(1, "one"), (2, None)]

    def test_distinct_then_limit(self):
        _, result = both("SELECT DISTINCT grp FROM t ORDER BY grp LIMIT 2")
        assert result.rows == [("x",), ("y",)]

    def test_project_error_beats_later_item_error(self):
        # Row-major error order: for the first bad row, the leftmost
        # erroring item wins, exactly as the reference raises.
        db = build("vectorized")
        with pytest.raises(SqlExecutionError) as vectorized:
            db.execute("SELECT val + grp, 1 / 0 FROM t")
        with pytest.raises(SqlExecutionError) as reference:
            build("interpreted").execute("SELECT val + grp, 1 / 0 FROM t")
        assert str(vectorized.value) == str(reference.value)
