"""Compiled expression evaluation, the plan cache, and prepared SELECTs."""

from dataclasses import asdict

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine import Database
from repro.sqlengine.compile import (
    compile_evaluator,
    compile_key,
    compile_predicate,
)
from repro.sqlengine.expr import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    Like,
    Literal,
    RowLayout,
)


@pytest.fixture
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER, "
        "salary FLOAT)"
    )
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 1, 100.0), (2, 'bob', 1, 80.0), "
        "(3, 'carol', 2, 120.0), (4, 'dave', 2, 90.0), "
        "(5, 'erin', NULL, NULL)"
    )
    return database


LAYOUT = RowLayout(["emp.name", "emp.salary"])


class TestCompileUnits:
    def test_column_ref_is_plain_indexing(self):
        evaluator = compile_evaluator(ColumnRef("salary"), LAYOUT)
        assert evaluator(("ann", 100.0)) == 100.0

    def test_comparison_null_propagates(self):
        expr = BinaryOp(">", ColumnRef("salary"), Literal(90))
        evaluator = compile_evaluator(expr, LAYOUT)
        assert evaluator(("ann", 100.0)) is True
        assert evaluator(("erin", None)) is None

    def test_predicate_rejects_null_and_false(self):
        expr = BinaryOp(">", ColumnRef("salary"), Literal(90))
        predicate = compile_predicate(expr, LAYOUT)
        assert predicate(("ann", 100.0)) is True
        assert predicate(("bob", 80.0)) is False
        assert predicate(("erin", None)) is False

    def test_in_list_with_null_item_is_unknown_on_miss(self):
        expr = InList(
            ColumnRef("name"), (Literal("ann"), Literal(None)), False
        )
        evaluator = compile_evaluator(expr, LAYOUT)
        assert evaluator(("ann", 1.0)) is True  # hit wins over NULL
        assert evaluator(("bob", 1.0)) is None  # miss with NULL is unknown

    def test_like_matches_reference(self):
        expr = Like(ColumnRef("name"), "a%", False)
        evaluator = compile_evaluator(expr, LAYOUT)
        assert evaluator(("ann", 1.0)) is True
        assert evaluator(("bob", 1.0)) is False

    def test_unresolvable_column_falls_back_to_interpreted_error(self):
        evaluator = compile_evaluator(ColumnRef("missing"), LAYOUT)
        with pytest.raises(SqlExecutionError):
            evaluator(("ann", 1.0))

    def test_aggregate_resolves_materialized_slot(self):
        layout = RowLayout(["dept_id", "COUNT(*)"])
        call = FuncCall("count", (), star=True)
        evaluator = compile_evaluator(call, layout)
        assert evaluator((1, 7)) == 7

    def test_compile_key_builds_tuples(self):
        key = compile_key([ColumnRef("name"), ColumnRef("salary")], LAYOUT)
        assert key(("ann", 100.0)) == ("ann", 100.0)
        single = compile_key([ColumnRef("name")], LAYOUT)
        assert single(("ann", 100.0)) == ("ann",)


class TestModeEquivalence:
    QUERIES = (
        "SELECT name, salary FROM emp WHERE salary > 85 ORDER BY salary",
        "SELECT dept_id, COUNT(*), AVG(salary) FROM emp "
        "GROUP BY dept_id ORDER BY dept_id",
        "SELECT DISTINCT dept_id FROM emp",
        "SELECT name FROM emp WHERE name LIKE '%a%' AND dept_id IS NOT NULL",
    )

    @pytest.mark.parametrize("sql", QUERIES)
    def test_rows_and_stats_identical(self, db, sql):
        db.use_compiled = False
        interpreted = db.execute(sql)
        db.clear_plan_cache()
        db.use_compiled = True
        compiled = db.execute(sql)
        assert interpreted.rows == compiled.rows
        assert asdict(interpreted.stats) == asdict(compiled.stats)

    def test_update_and_delete_identical_across_modes(self):
        results = {}
        for mode in (False, True):
            database = Database("m", use_compiled=mode)
            database.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
            database.execute(
                "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, NULL)"
            )
            database.execute("UPDATE t SET b = b + 1 WHERE a >= 2")
            database.execute("DELETE FROM t WHERE b > 25")
            results[mode] = database.execute(
                "SELECT a, b FROM t ORDER BY a"
            ).rows
        assert results[False] == results[True]


class TestPlanCache:
    def test_repeated_select_hits(self, db):
        sql = "SELECT name FROM emp WHERE salary > 85"
        first = db.execute(sql)
        assert db.plan_cache_misses == 1
        assert db.plan_cache_hits == 0
        second = db.execute(sql)
        assert db.plan_cache_hits == 1
        assert first.rows == second.rows

    def test_insert_invalidates(self, db):
        sql = "SELECT COUNT(*) FROM emp"
        assert db.execute(sql).scalar() == 5
        db.execute("INSERT INTO emp VALUES (6, 'fay', 3, 70.0)")
        # The catalogue version moved: the cached plan must not serve
        # stale row sets (it re-plans and recounts).
        assert db.execute(sql).scalar() == 6
        assert db.plan_cache_misses == 2

    def test_direct_table_mutation_invalidates(self, db):
        sql = "SELECT COUNT(*) FROM emp"
        assert db.execute(sql).scalar() == 5
        # Loaders bypass SQL and mutate the Table directly; the version
        # counter lives at the Table layer so the cache still notices.
        db.table("emp").insert_many([(7, 'gus', 3, 60.0)])
        assert db.execute(sql).scalar() == 6

    def test_lru_evicts_oldest(self):
        database = Database("small", plan_cache_size=2)
        database.execute("CREATE TABLE t (a INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        database.execute("SELECT a FROM t")
        database.execute("SELECT a FROM t WHERE a > 0")
        database.execute("SELECT a FROM t WHERE a > 1")
        assert database.plan_cache_len == 2
        # The first statement was evicted: running it again is a miss.
        misses = database.plan_cache_misses
        database.execute("SELECT a FROM t")
        assert database.plan_cache_misses == misses + 1

    def test_clear_plan_cache(self, db):
        db.execute("SELECT name FROM emp")
        assert db.plan_cache_len == 1
        db.clear_plan_cache()
        assert db.plan_cache_len == 0


class TestPreparedSelect:
    def test_prepare_and_execute_elsewhere(self, db):
        other = Database("peer")
        other.execute(
            "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, "
            "dept_id INTEGER, salary FLOAT)"
        )
        other.execute("INSERT INTO emp VALUES (9, 'zoe', 4, 55.0)")
        prepared = db.prepare("SELECT name FROM emp WHERE salary < 60")
        result = other.execute_prepared(prepared)
        assert result.rows == [("zoe",)]
        assert other.plan_cache_hits == 1

    def test_prepare_rejects_non_select(self, db):
        with pytest.raises(SqlExecutionError):
            db.prepare("DELETE FROM emp")

    def test_prepare_rejects_subqueries(self, db):
        with pytest.raises(SqlExecutionError):
            db.prepare(
                "SELECT name FROM emp WHERE dept_id IN "
                "(SELECT dept_id FROM emp WHERE salary > 100)"
            )

    def test_missing_table_raises_catalog_error(self, db):
        prepared = db.prepare("SELECT name FROM emp")
        empty = Database("empty")
        with pytest.raises(SqlCatalogError):
            empty.execute_prepared(prepared)

    def test_missing_index_falls_back_to_local_plan(self, db):
        db.execute("CREATE INDEX idx_salary ON emp (salary)")
        prepared = db.prepare("SELECT name FROM emp WHERE salary = 80.0")
        bare = Database("peer")
        bare.execute(
            "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, "
            "dept_id INTEGER, salary FLOAT)"
        )
        bare.execute("INSERT INTO emp VALUES (2, 'bob', 1, 80.0)")
        # The shipped plan probes idx_salary, which this peer lacks; the
        # fallback re-plans the SQL locally and still answers.
        result = bare.execute_prepared(prepared)
        assert result.rows == [("bob",)]


class TestByteSizeCache:
    def test_byte_size_cached_and_invalidated(self, db):
        result = db.execute("SELECT name, salary FROM emp")
        first = result.byte_size
        assert first > 0
        # In-place rewrite without invalidation: the cache (by design)
        # still serves the old figure until told otherwise.
        result.rows.append(("extra-name-that-adds-bytes", 1.0))
        assert result.byte_size == first
        result.invalidate_byte_size()
        assert result.byte_size > first
