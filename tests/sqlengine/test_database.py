"""End-to-end SQL execution tests against the Database facade."""

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine import Database


@pytest.fixture
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER, "
        "salary FLOAT, hired DATE)"
    )
    database.execute(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, dname TEXT)"
    )
    database.execute(
        "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')"
    )
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 1, 100.0, '2020-01-05'), "
        "(2, 'bob', 1, 80.0, '2020-03-01'), "
        "(3, 'carol', 2, 120.0, '2019-06-15'), "
        "(4, 'dave', 2, 90.0, '2021-02-20'), "
        "(5, 'erin', NULL, NULL, '2022-08-08')"
    )
    return database


class TestSelection:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM emp")
        assert len(result) == 5
        assert result.columns == ["id", "name", "dept_id", "salary", "hired"]

    def test_where_filters(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary > 90")
        assert sorted(result.column("name")) == ["ann", "carol"]

    def test_null_never_matches(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary < 1000000")
        assert "erin" not in result.column("name")

    def test_is_null(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary IS NULL")
        assert result.column("name") == ["erin"]

    def test_between(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary BETWEEN 80 AND 100")
        assert sorted(result.column("name")) == ["ann", "bob", "dave"]

    def test_in_list(self, db):
        result = db.execute("SELECT name FROM emp WHERE id IN (1, 3)")
        assert sorted(result.column("name")) == ["ann", "carol"]

    def test_like(self, db):
        result = db.execute("SELECT name FROM emp WHERE name LIKE '%a%'")
        assert sorted(result.column("name")) == ["ann", "carol", "dave"]

    def test_date_comparison(self, db):
        result = db.execute("SELECT name FROM emp WHERE hired > '2020-12-31'")
        assert sorted(result.column("name")) == ["dave", "erin"]

    def test_arithmetic_in_projection(self, db):
        result = db.execute("SELECT salary * 2 AS double_pay FROM emp WHERE id = 1")
        assert result.scalar() == 200.0

    def test_projection_alias(self, db):
        result = db.execute("SELECT name AS who FROM emp WHERE id = 1")
        assert result.columns == ["who"]

    def test_unknown_table_rejected(self, db):
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column_rejected(self, db):
        with pytest.raises((SqlCatalogError, SqlExecutionError)):
            db.execute("SELECT zzz FROM emp")


class TestIndexPaths:
    def test_pk_equality_uses_index(self, db):
        result = db.execute("SELECT name FROM emp WHERE id = 3")
        assert result.column("name") == ["carol"]
        assert result.stats.index_probes == 1
        assert result.stats.rows_scanned == 1

    def test_secondary_range_uses_index(self, db):
        db.execute("CREATE INDEX idx_salary ON emp (salary)")
        result = db.execute("SELECT name FROM emp WHERE salary >= 100")
        assert sorted(result.column("name")) == ["ann", "carol"]
        assert result.stats.index_probes == 1
        assert result.stats.rows_scanned == 2

    def test_between_uses_index(self, db):
        db.execute("CREATE INDEX idx_hired ON emp (hired)")
        result = db.execute(
            "SELECT name FROM emp WHERE hired BETWEEN '2020-01-01' AND '2020-12-31'"
        )
        assert sorted(result.column("name")) == ["ann", "bob"]
        assert result.stats.index_probes == 1

    def test_unindexed_predicate_scans(self, db):
        result = db.execute("SELECT name FROM emp WHERE name = 'ann'")
        assert result.stats.index_probes == 0
        assert result.stats.rows_scanned == 5

    def test_index_plus_residual_predicate(self, db):
        db.execute("CREATE INDEX idx_salary ON emp (salary)")
        result = db.execute(
            "SELECT name FROM emp WHERE salary >= 80 AND name LIKE '%o%'"
        )
        assert sorted(result.column("name")) == ["bob", "carol"]


class TestJoins:
    def test_comma_join(self, db):
        result = db.execute(
            "SELECT emp.name, dept.dname FROM emp, dept WHERE emp.dept_id = dept.id"
        )
        assert len(result) == 4
        pairs = set(zip(result.column("name"), result.column("dname")))
        assert ("ann", "eng") in pairs
        assert ("carol", "sales") in pairs

    def test_explicit_join(self, db):
        result = db.execute(
            "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        assert len(result) == 4

    def test_join_null_keys_never_match(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        assert "erin" not in result.column("name")

    def test_left_join_pads_nulls(self, db):
        result = db.execute(
            "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept_id = d.id"
        )
        assert len(result) == 5
        by_name = dict(zip(result.column("name"), result.column("dname")))
        assert by_name["erin"] is None

    def test_join_with_extra_predicate(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE d.dname = 'eng'"
        )
        assert sorted(result.column("name")) == ["ann", "bob"]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE loc (dept_id INTEGER, city TEXT)")
        db.execute("INSERT INTO loc VALUES (1, 'sfo'), (2, 'nyc')")
        result = db.execute(
            "SELECT e.name, l.city FROM emp e, dept d, loc l "
            "WHERE e.dept_id = d.id AND d.id = l.dept_id AND e.salary > 90"
        )
        pairs = set(zip(result.column("name"), result.column("city")))
        assert pairs == {("ann", "sfo"), ("carol", "nyc")}

    def test_non_equi_join(self, db):
        result = db.execute(
            "SELECT e1.name FROM emp e1, emp e2 "
            "WHERE e1.salary > e2.salary AND e2.name = 'carol'"
        )
        assert result.column("name") == []

    def test_cross_join_counts(self, db):
        result = db.execute("SELECT e.id FROM emp e, dept d")
        assert len(result) == 15


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(salary) FROM emp").scalar() == 4

    def test_sum_avg_min_max(self, db):
        result = db.execute(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        )
        total, average, low, high = result.rows[0]
        assert total == 390.0
        assert average == pytest.approx(97.5)
        assert low == 80.0
        assert high == 120.0

    def test_sum_of_empty_is_null(self, db):
        result = db.execute("SELECT SUM(salary) FROM emp WHERE id > 100")
        assert result.scalar() is None

    def test_count_of_empty_is_zero(self, db):
        result = db.execute("SELECT COUNT(*) FROM emp WHERE id > 100")
        assert result.scalar() == 0

    def test_group_by(self, db):
        result = db.execute(
            "SELECT dept_id, COUNT(*) AS n FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id ORDER BY dept_id"
        )
        assert result.rows == [(1, 2), (2, 2)]

    def test_group_by_with_sum_expression(self, db):
        result = db.execute(
            "SELECT dept_id, SUM(salary * 2) AS s FROM emp "
            "WHERE dept_id = 1 GROUP BY dept_id"
        )
        assert result.rows == [(1, 360.0)]

    def test_having(self, db):
        result = db.execute(
            "SELECT dept_id, AVG(salary) AS a FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id HAVING AVG(salary) > 100"
        )
        assert result.rows == [(2, 105.0)]

    def test_count_distinct(self, db):
        db.execute("INSERT INTO emp VALUES (6, 'fred', 1, 100.0, '2020-01-01')")
        assert db.execute("SELECT COUNT(DISTINCT salary) FROM emp").scalar() == 4

    def test_aggregate_of_join(self, db):
        result = db.execute(
            "SELECT d.dname, COUNT(*) AS n FROM emp e, dept d "
            "WHERE e.dept_id = d.id GROUP BY d.dname ORDER BY d.dname"
        )
        assert result.rows == [("eng", 2), ("sales", 2)]

    def test_having_without_group_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT name FROM emp HAVING name > 'a'")


class TestOrderLimitDistinct:
    def test_order_by_asc(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary"
        )
        assert result.column("name") == ["bob", "dave", "ann", "carol"]

    def test_order_by_desc(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC"
        )
        assert result.column("name") == ["carol", "ann", "dave", "bob"]

    def test_order_by_multiple_keys(self, db):
        db.execute("INSERT INTO emp VALUES (6, 'aaa', 1, 100.0, '2020-01-01')")
        result = db.execute(
            "SELECT name FROM emp WHERE salary = 100 ORDER BY salary, name"
        )
        assert result.column("name") == ["aaa", "ann"]

    def test_nulls_sort_first(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY salary")
        assert result.column("name")[0] == "erin"

    def test_limit(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY name LIMIT 2")
        assert result.column("name") == ["ann", "bob"]

    def test_distinct(self, db):
        result = db.execute(
            "SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL"
        )
        assert sorted(result.column("dept_id")) == [1, 2]

    def test_order_by_alias(self, db):
        result = db.execute(
            "SELECT name, salary * 2 AS pay FROM emp "
            "WHERE salary IS NOT NULL ORDER BY pay DESC LIMIT 1"
        )
        assert result.column("name") == ["carol"]


class TestMutations:
    def test_insert_rowcount(self, db):
        result = db.execute("INSERT INTO dept VALUES (4, 'hr'), (5, 'it')")
        assert result.rowcount == 2

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO emp (id, name) VALUES (10, 'zed')")
        row = db.execute("SELECT salary, name FROM emp WHERE id = 10").rows[0]
        assert row == (None, "zed")

    def test_update(self, db):
        result = db.execute("UPDATE emp SET salary = salary + 10 WHERE dept_id = 1")
        assert result.rowcount == 2
        assert db.execute("SELECT salary FROM emp WHERE id = 1").scalar() == 110.0

    def test_update_all_rows(self, db):
        result = db.execute("UPDATE dept SET dname = 'x'")
        assert result.rowcount == 3

    def test_delete(self, db):
        result = db.execute("DELETE FROM emp WHERE dept_id = 2")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_delete_all(self, db):
        db.execute("DELETE FROM emp")
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 0

    def test_drop_table(self, db):
        db.execute("DROP TABLE dept")
        assert not db.has_table("dept")

    def test_drop_missing_table(self, db):
        with pytest.raises(SqlCatalogError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")  # must not raise


class TestResultApi:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT * FROM emp").scalar()

    def test_column_unknown_name(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT name FROM emp").column("zzz")

    def test_byte_size_positive(self, db):
        assert db.execute("SELECT * FROM emp").byte_size > 0

    def test_iteration(self, db):
        rows = list(db.execute("SELECT id FROM emp ORDER BY id"))
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_table_stats(self, db):
        stats = db.table_stats("emp")
        assert stats.row_count == 5
        assert stats.columns["salary"].null_count == 1
        assert stats.columns["salary"].minimum == 80.0
        assert stats.columns["salary"].maximum == 120.0
        assert stats.columns["id"].distinct_count == 5
        assert stats.avg_row_bytes > 0

    def test_total_bytes(self, db):
        assert db.total_bytes > 0
