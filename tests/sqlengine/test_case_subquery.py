"""Tests for CASE WHEN expressions and uncorrelated IN-subqueries."""

import pytest

from repro.errors import SqlExecutionError, SqlParseError
from repro.sqlengine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, total FLOAT, "
        "status TEXT)"
    )
    database.execute(
        "CREATE TABLE vip (customer TEXT, order_id INTEGER)"
    )
    database.execute(
        "INSERT INTO orders VALUES (1, 50.0, 'open'), (2, 500.0, 'open'), "
        "(3, 20.0, 'shipped'), (4, NULL, 'void')"
    )
    database.execute(
        "INSERT INTO vip VALUES ('alice', 1), ('bob', 3)"
    )
    return database


class TestSearchedCase:
    def test_basic_branching(self, db):
        result = db.execute(
            "SELECT id, CASE WHEN total > 100 THEN 'big' "
            "WHEN total > 30 THEN 'medium' ELSE 'small' END AS size "
            "FROM orders WHERE total IS NOT NULL ORDER BY id"
        )
        assert result.column("size") == ["medium", "big", "small"]

    def test_missing_else_yields_null(self, db):
        result = db.execute(
            "SELECT CASE WHEN total > 100 THEN 'big' END AS size "
            "FROM orders ORDER BY id"
        )
        assert result.column("size") == [None, "big", None, None]

    def test_null_condition_skipped(self, db):
        # total IS NULL for id 4; `total > 100` evaluates NULL -> skipped.
        result = db.execute(
            "SELECT CASE WHEN total > 100 THEN 'x' ELSE 'y' END AS r "
            "FROM orders WHERE id = 4"
        )
        assert result.scalar() == "y"

    def test_case_in_where(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE "
            "CASE WHEN status = 'void' THEN 0 ELSE 1 END = 1 ORDER BY id"
        )
        assert result.column("id") == [1, 2, 3]

    def test_case_inside_aggregate(self, db):
        # The conditional-count idiom.
        result = db.execute(
            "SELECT SUM(CASE WHEN status = 'open' THEN 1 ELSE 0 END) "
            "FROM orders"
        )
        assert result.scalar() == 2

    def test_simple_case_form(self, db):
        result = db.execute(
            "SELECT CASE status WHEN 'open' THEN 'o' WHEN 'shipped' THEN 's' "
            "ELSE '?' END AS code FROM orders ORDER BY id"
        )
        assert result.column("code") == ["o", "o", "s", "?"]

    def test_case_requires_when(self, db):
        with pytest.raises(SqlParseError):
            db.execute("SELECT CASE ELSE 1 END FROM orders")

    def test_case_requires_end(self, db):
        with pytest.raises(SqlParseError):
            db.execute("SELECT CASE WHEN 1 = 1 THEN 2 FROM orders")

    def test_to_sql_round_trip(self):
        from repro.sqlengine.parser import parse

        stmt = parse(
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t"
        )
        text = stmt.items[0].expr.to_sql()
        stmt2 = parse(f"SELECT {text} FROM t")
        assert stmt2.items[0].expr.to_sql() == text


class TestInSubquery:
    def test_basic_membership(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE id IN (SELECT order_id FROM vip) "
            "ORDER BY id"
        )
        assert result.column("id") == [1, 3]

    def test_not_in(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE id NOT IN "
            "(SELECT order_id FROM vip) ORDER BY id"
        )
        assert result.column("id") == [2, 4]

    def test_subquery_with_where(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE id IN "
            "(SELECT order_id FROM vip WHERE customer = 'alice')"
        )
        assert result.column("id") == [1]

    def test_empty_subquery_is_false(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE id IN "
            "(SELECT order_id FROM vip WHERE customer = 'nobody')"
        )
        assert len(result) == 0

    def test_empty_not_in_is_true(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM orders WHERE id NOT IN "
            "(SELECT order_id FROM vip WHERE customer = 'nobody')"
        )
        assert result.scalar() == 4

    def test_nested_subqueries(self, db):
        result = db.execute(
            "SELECT customer FROM vip WHERE order_id IN "
            "(SELECT id FROM orders WHERE id IN "
            "(SELECT order_id FROM vip WHERE customer = 'bob'))"
        )
        assert result.column("customer") == ["bob"]

    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute(
                "SELECT id FROM orders WHERE id IN "
                "(SELECT customer, order_id FROM vip)"
            )

    def test_subquery_with_aggregate(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE total IN "
            "(SELECT MAX(total) FROM orders)"
        )
        assert result.column("id") == [2]
