"""Unit tests for the local query planner's plan shapes."""

import pytest

from repro.sqlengine import Column, ColumnType, Database, TableSchema
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import (
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Planner,
    ProjectNode,
    ScanNode,
    SortNode,
)


@pytest.fixture
def catalog():
    db = Database()
    db.execute(
        "CREATE TABLE r (id INTEGER PRIMARY KEY, k INTEGER, v FLOAT)"
    )
    db.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, r_id INTEGER)")
    db.execute("CREATE INDEX idx_r_k ON r (k)")
    return db._tables


def plan_of(catalog, sql):
    return Planner(catalog).plan(parse(sql))


def unwrap(plan, *node_types):
    """Descend through the given single-child node types."""
    for node_type in node_types:
        assert isinstance(plan, node_type), f"expected {node_type}, got {plan}"
        plan = getattr(plan, "child", None)
    return plan


class TestScanPlans:
    def test_plain_select_is_project_over_scan(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r")
        scan = unwrap(plan, ProjectNode)
        assert isinstance(scan, ScanNode)
        assert scan.index_access is None
        assert scan.predicate is None

    def test_equality_on_pk_uses_index(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r WHERE id = 5")
        scan = unwrap(plan, ProjectNode)
        assert scan.index_access is not None
        assert scan.index_access.is_equality
        assert scan.index_access.eq_value == 5

    def test_range_on_secondary_index(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r WHERE k > 10")
        scan = unwrap(plan, ProjectNode)
        access = scan.index_access
        assert access is not None
        assert access.low == 10
        assert not access.low_inclusive
        assert access.high is None

    def test_unindexed_column_scans(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r WHERE v > 1.0")
        scan = unwrap(plan, ProjectNode)
        assert scan.index_access is None
        assert scan.predicate is not None

    def test_flipped_comparison_normalized(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r WHERE 10 < k")
        scan = unwrap(plan, ProjectNode)
        assert scan.index_access.low == 10


class TestJoinPlans:
    def test_comma_join_becomes_hash_join(self, catalog):
        plan = plan_of(
            catalog, "SELECT r.v FROM r, s WHERE r.id = s.r_id"
        )
        join = unwrap(plan, ProjectNode)
        assert isinstance(join, JoinNode)
        assert join.equi_keys  # hash join, not nested loop
        assert join.condition is None  # fully absorbed into equi keys

    def test_non_equi_condition_kept_in_join(self, catalog):
        plan = plan_of(catalog, "SELECT r.v FROM r, s WHERE r.id > s.r_id")
        join = unwrap(plan, ProjectNode)
        assert isinstance(join, JoinNode)
        assert not join.equi_keys
        assert join.condition is not None

    def test_single_table_filters_pushed_below_join(self, catalog):
        plan = plan_of(
            catalog,
            "SELECT r.v FROM r, s WHERE r.id = s.r_id AND r.k > 3",
        )
        join = unwrap(plan, ProjectNode)
        left = join.left
        assert isinstance(left, ScanNode)
        assert left.index_access is not None  # k > 3 drives the index


class TestAggregatePlans:
    def test_group_by_node_inserted(self, catalog):
        plan = plan_of(catalog, "SELECT k, COUNT(*) FROM r GROUP BY k")
        group = unwrap(plan, ProjectNode)
        assert isinstance(group, GroupByNode)
        assert len(group.aggregates) == 1

    def test_having_becomes_filter_above_group(self, catalog):
        plan = plan_of(
            catalog,
            "SELECT k, COUNT(*) FROM r GROUP BY k HAVING COUNT(*) > 1",
        )
        having = unwrap(plan, ProjectNode)
        assert isinstance(having, FilterNode)
        assert isinstance(having.child, GroupByNode)

    def test_scalar_aggregate_without_group(self, catalog):
        plan = plan_of(catalog, "SELECT SUM(v) FROM r")
        group = unwrap(plan, ProjectNode)
        assert isinstance(group, GroupByNode)
        assert group.group_exprs == ()


class TestOrderingPlans:
    def test_order_by_projected_column_sorts_above(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r ORDER BY v")
        assert isinstance(plan, SortNode)
        assert isinstance(plan.child, ProjectNode)

    def test_order_by_dropped_column_sorts_below(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r ORDER BY k")
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, SortNode)

    def test_limit_is_outermost(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r ORDER BY v LIMIT 3")
        assert isinstance(plan, LimitNode)
        assert isinstance(plan.child, SortNode)

    def test_distinct_above_project(self, catalog):
        plan = plan_of(catalog, "SELECT DISTINCT v FROM r")
        assert isinstance(plan, DistinctNode)
        assert isinstance(plan.child, ProjectNode)
