"""Tests for column types and value coercion."""

import datetime

import pytest

from repro.errors import SqlTypeError
from repro.sqlengine import ColumnType
from repro.sqlengine.types import value_byte_size


class TestIntegerCoercion:
    def test_int_passes_through(self):
        assert ColumnType.INTEGER.coerce(42) == 42

    def test_integral_float_converts(self):
        assert ColumnType.INTEGER.coerce(42.0) == 42

    def test_fractional_float_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.INTEGER.coerce(42.5)

    def test_numeric_string_converts(self):
        assert ColumnType.INTEGER.coerce("17") == 17

    def test_garbage_string_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.INTEGER.coerce("seventeen")

    def test_bool_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.INTEGER.coerce(True)

    def test_none_passes_through(self):
        assert ColumnType.INTEGER.coerce(None) is None


class TestFloatCoercion:
    def test_float_passes_through(self):
        assert ColumnType.FLOAT.coerce(1.5) == 1.5

    def test_int_converts(self):
        assert ColumnType.FLOAT.coerce(3) == 3.0
        assert isinstance(ColumnType.FLOAT.coerce(3), float)

    def test_string_converts(self):
        assert ColumnType.FLOAT.coerce("2.5") == 2.5

    def test_garbage_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.FLOAT.coerce("two point five")


class TestDateCoercion:
    def test_iso_string_passes(self):
        assert ColumnType.DATE.coerce("1998-11-05") == "1998-11-05"

    def test_date_object_converts(self):
        assert ColumnType.DATE.coerce(datetime.date(1998, 11, 5)) == "1998-11-05"

    def test_datetime_object_truncates(self):
        value = datetime.datetime(1998, 11, 5, 13, 30)
        assert ColumnType.DATE.coerce(value) == "1998-11-05"

    def test_non_iso_string_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.DATE.coerce("11/05/1998")

    def test_iso_dates_compare_as_strings(self):
        # The reason DATE is stored as ISO text.
        assert "1998-11-05" < "1998-11-06" < "1999-01-01"


class TestTextCoercion:
    def test_string_passes(self):
        assert ColumnType.TEXT.coerce("hello") == "hello"

    def test_number_stringifies(self):
        assert ColumnType.TEXT.coerce(42) == "42"

    def test_bool_rejected(self):
        with pytest.raises(SqlTypeError):
            ColumnType.TEXT.coerce(True)


class TestByteSizes:
    def test_null_is_one_byte(self):
        assert ColumnType.INTEGER.byte_size(None) == 1

    def test_numbers_are_eight_bytes(self):
        assert ColumnType.INTEGER.byte_size(1) == 8
        assert ColumnType.FLOAT.byte_size(1.5) == 8

    def test_date_is_ten_bytes(self):
        assert ColumnType.DATE.byte_size("1998-11-05") == 10

    def test_text_grows_with_length(self):
        assert ColumnType.TEXT.byte_size("abcd") == 8
        assert ColumnType.TEXT.byte_size("abcdabcd") == 12

    def test_value_byte_size_infers_type(self):
        assert value_byte_size(None) == 1
        assert value_byte_size(7) == 8
        assert value_byte_size("abc") == 7

    def test_value_byte_size_with_explicit_type(self):
        assert value_byte_size("1998-11-05", ColumnType.DATE) == 10
