"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError
from repro.sqlengine import parse
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.parser import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.sqlengine.types import ColumnType


class TestSelectBasics:
    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, SelectStmt)
        assert stmt.items[0].is_star
        assert stmt.tables[0].table == "t"

    def test_select_columns(self):
        stmt = parse("SELECT a, b FROM t")
        assert [item.expr.name for item in stmt.items] == ["a", "b"]

    def test_qualified_columns(self):
        stmt = parse("SELECT t.a FROM t")
        assert stmt.items[0].expr.name == "t.a"

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].is_star
        assert stmt.items[0].star_qualifier == "t"

    def test_alias_with_as(self):
        stmt = parse("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[0].output_name() == "x"

    def test_alias_without_as(self):
        stmt = parse("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse("SELECT l.a FROM lineitem l")
        assert stmt.tables[0].alias == "l"
        assert stmt.tables[0].binding == "l"

    def test_table_alias_with_as(self):
        stmt = parse("SELECT a FROM lineitem AS l")
        assert stmt.tables[0].alias == "l"

    def test_case_insensitive_keywords(self):
        stmt = parse("select A fRoM T where B = 1")
        assert isinstance(stmt, SelectStmt)
        assert stmt.tables[0].table == "t"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_semicolon_tolerated(self):
        assert isinstance(parse("SELECT a FROM t;"), SelectStmt)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t extra stuff here")

    def test_empty_statement_rejected(self):
        with pytest.raises(SqlParseError):
            parse("   ")

    def test_unknown_statement_rejected(self):
        with pytest.raises(SqlParseError):
            parse("EXPLAIN SELECT 1")


class TestWhereClause:
    def test_comparison(self):
        stmt = parse("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == ">"

    def test_not_equal_variants(self):
        assert parse("SELECT a FROM t WHERE a != 5").where.op == "!="
        assert parse("SELECT a FROM t WHERE a <> 5").where.op == "!="

    def test_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # OR binds loosest: (a=1) OR ((b=2) AND (c=3))
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_parentheses_override(self):
        stmt = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "and"

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, Between)
        assert not stmt.where.negated

    def test_not_between(self):
        stmt = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        assert parse("SELECT a FROM t WHERE a NOT IN (1)").where.negated

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE a LIKE 'x%'")
        assert isinstance(stmt.where, Like)
        assert stmt.where.pattern == "x%"

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse("SELECT a FROM t WHERE a IS NULL").where, IsNull)
        stmt = parse("SELECT a FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated

    def test_not_prefix(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_date_literal(self):
        stmt = parse("SELECT a FROM t WHERE d > DATE '1998-11-05'")
        assert stmt.where.right.value == "1998-11-05"

    def test_string_escape(self):
        stmt = parse("SELECT a FROM t WHERE s = 'it''s'")
        assert stmt.where.right.value == "it's"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 + 2 * 3")
        addition = stmt.where.right
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_unary_minus_folds_to_literal(self):
        stmt = parse("SELECT a FROM t WHERE a > -5")
        assert stmt.where.right == Literal(-5)

    def test_unary_minus_on_column_stays_unary(self):
        stmt = parse("SELECT a FROM t WHERE -a > 5")
        assert isinstance(stmt.where.left, UnaryOp)


class TestJoins:
    def test_comma_join(self):
        stmt = parse("SELECT * FROM a, b WHERE a.x = b.y")
        assert len(stmt.tables) == 2
        assert stmt.joins == ()

    def test_explicit_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[0].table.table == "b"

    def test_inner_join_keyword(self):
        stmt = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "inner"

    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "left"

    def test_chained_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        assert len(stmt.joins) == 2


class TestGroupOrderLimit:
    def test_group_by(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a")
        assert len(stmt.group_by) == 1

    def test_group_by_multiple(self):
        stmt = parse("SELECT a, b, SUM(c) FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert stmt.having is not None

    def test_order_by_default_asc(self):
        stmt = parse("SELECT a FROM t ORDER BY a")
        assert stmt.order_by[0].ascending

    def test_order_by_desc(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert not stmt.order_by[0].ascending
        assert stmt.order_by[1].ascending

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t LIMIT 1.5")


class TestFunctions:
    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall)
        assert call.star

    def test_sum_expression(self):
        stmt = parse("SELECT SUM(price * qty) FROM t")
        call = stmt.items[0].expr
        assert call.name == "sum"
        assert call.args[0].op == "*"

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct


class TestInsert:
    def test_basic_insert(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x', 2.5)")
        assert isinstance(stmt, InsertStmt)
        assert stmt.rows == ((1, "x", 2.5),)

    def test_multi_row_insert(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_null(self):
        stmt = parse("INSERT INTO t VALUES (NULL)")
        assert stmt.rows == ((None,),)

    def test_insert_negative_number(self):
        stmt = parse("INSERT INTO t VALUES (-5)")
        assert stmt.rows == ((-5,),)

    def test_insert_non_literal_rejected(self):
        with pytest.raises(SqlParseError):
            parse("INSERT INTO t VALUES (a + 1)")


class TestCreate:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(25) NOT NULL, "
            "price DECIMAL(15,2), d DATE)"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.primary_key == "id"
        types = [column.column_type for column in stmt.columns]
        assert types == [
            ColumnType.INTEGER,
            ColumnType.TEXT,
            ColumnType.FLOAT,
            ColumnType.DATE,
        ]
        assert not stmt.columns[1].nullable
        assert not stmt.columns[0].nullable  # PRIMARY KEY implies NOT NULL

    def test_create_table_duplicate_pk_rejected(self):
        with pytest.raises(SqlParseError):
            parse("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)")

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlParseError):
            parse("CREATE TABLE t (a BLOB)")

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx_ship ON lineitem (l_shipdate)")
        assert isinstance(stmt, CreateIndexStmt)
        assert stmt.table == "lineitem"
        assert stmt.column == "l_shipdate"
        assert not stmt.unique

    def test_create_unique_index(self):
        assert parse("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_unique_table_rejected(self):
        with pytest.raises(SqlParseError):
            parse("CREATE UNIQUE TABLE t (a INT)")


class TestUpdateDeleteDrop:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(stmt, UpdateStmt)
        assert stmt.assignments[0][0] == "a"
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.table == "t"

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None

    def test_drop_table(self):
        stmt = parse("DROP TABLE t")
        assert isinstance(stmt, DropTableStmt)
        assert not stmt.if_exists

    def test_drop_table_if_exists(self):
        assert parse("DROP TABLE IF EXISTS t").if_exists


class TestPaperQueries:
    """The five benchmark queries of Section 6.1 must parse."""

    def test_q1_selection(self):
        stmt = parse(
            "SELECT l_orderkey, l_partkey, l_suppkey, l_quantity "
            "FROM LineItem WHERE l_shipdate > DATE '1998-11-05' "
            "AND l_commitdate > DATE '1998-11-01'"
        )
        assert isinstance(stmt, SelectStmt)

    def test_q2_aggregate(self):
        stmt = parse(
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM LineItem WHERE l_shipdate > DATE '1998-11-05'"
        )
        assert stmt.items[0].alias == "revenue"

    def test_q3_join(self):
        stmt = parse(
            "SELECT l_orderkey, o_orderdate, o_shippriority "
            "FROM Orders, LineItem "
            "WHERE o_orderkey = l_orderkey AND l_shipdate > DATE '1998-11-01'"
        )
        assert len(stmt.tables) == 2

    def test_q4_join_aggregate(self):
        stmt = parse(
            "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) "
            "FROM PartSupp, Part "
            "WHERE ps_partkey = p_partkey AND p_size > 10 "
            "GROUP BY ps_partkey"
        )
        assert len(stmt.group_by) == 1

    def test_q5_multi_join(self):
        stmt = parse(
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM Customer, Orders, LineItem, Supplier "
            "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
            "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
            "GROUP BY n_name ORDER BY revenue DESC"
        )
        assert len(stmt.tables) == 4
