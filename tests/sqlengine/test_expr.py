"""Dedicated tests for the expression module (beyond what SQL tests cover)."""

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    RowLayout,
    UnaryOp,
    find_aggregates,
)


@pytest.fixture
def layout():
    return RowLayout(["t.a", "t.b", "u.a"])


class TestRowLayout:
    def test_qualified_resolution(self, layout):
        assert layout.resolve("t.a") == 0
        assert layout.resolve("u.a") == 2

    def test_bare_resolution_when_unique(self, layout):
        assert layout.resolve("b") == 1

    def test_ambiguous_bare_rejected(self, layout):
        with pytest.raises(SqlExecutionError):
            layout.resolve("a")

    def test_unknown_rejected(self, layout):
        with pytest.raises(SqlExecutionError):
            layout.resolve("zzz")

    def test_concat(self, layout):
        combined = layout.concat(RowLayout(["v.c"]))
        assert combined.resolve("v.c") == 3

    def test_has(self, layout):
        assert layout.has("t.a")
        assert not layout.has("zzz")


class TestScalarFunctions:
    def _eval(self, name, value):
        call = FuncCall(name, (Literal(value),))
        return call.evaluate((), RowLayout(["x"]))

    def test_upper_lower(self):
        assert self._eval("upper", "abc") == "ABC"
        assert self._eval("lower", "ABC") == "abc"

    def test_abs(self):
        assert self._eval("abs", -5) == 5

    def test_length(self):
        assert self._eval("length", "hello") == 5

    def test_null_propagates(self):
        assert self._eval("upper", None) is None

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlExecutionError):
            self._eval("sqrt", 4)

    def test_wrong_arity_rejected(self):
        call = FuncCall("abs", (Literal(1), Literal(2)))
        with pytest.raises(SqlExecutionError):
            call.evaluate((), RowLayout(["x"]))


class TestLikeEdgeCases:
    def _match(self, value, pattern):
        return Like(Literal(value), pattern).evaluate((), RowLayout(["x"]))

    def test_percent_matches_empty(self):
        assert self._match("abc", "abc%")
        assert self._match("abc", "%abc")

    def test_underscore_exactly_one(self):
        assert self._match("cat", "c_t")
        assert not self._match("caat", "c_t")

    def test_regex_metacharacters_literal(self):
        assert self._match("a.c", "a.c")
        assert not self._match("abc", "a.c")
        assert self._match("a+b", "a+b")

    def test_not_like(self):
        expr = Like(Literal("abc"), "x%", negated=True)
        assert expr.evaluate((), RowLayout(["x"])) is True

    def test_null_operand(self):
        assert self._match(None, "%") is None

    def test_non_string_coerced(self):
        assert self._match(123, "12%")


class TestNullSemantics:
    def _eval(self, expr):
        return expr.evaluate((), RowLayout(["x"]))

    def test_comparison_with_null_is_null(self):
        assert self._eval(BinaryOp("=", Literal(None), Literal(1))) is None
        assert self._eval(BinaryOp("<", Literal(1), Literal(None))) is None

    def test_arithmetic_with_null_is_null(self):
        assert self._eval(BinaryOp("+", Literal(None), Literal(1))) is None

    def test_between_with_null_bound(self):
        expr = Between(Literal(5), Literal(None), Literal(10))
        assert self._eval(expr) is None

    def test_in_list_null_semantics(self):
        # 1 IN (2, NULL) is NULL (the NULL might have been 1).
        expr = InList(Literal(1), (Literal(2), Literal(None)))
        assert self._eval(expr) is None
        # 1 IN (1, NULL) is TRUE.
        expr = InList(Literal(1), (Literal(1), Literal(None)))
        assert self._eval(expr) is True
        # 1 NOT IN (2, NULL) is NULL.
        expr = InList(Literal(1), (Literal(2), Literal(None)), negated=True)
        assert self._eval(expr) is None

    def test_is_null_never_returns_null(self):
        assert self._eval(IsNull(Literal(None))) is True
        assert self._eval(IsNull(Literal(1))) is False
        assert self._eval(IsNull(Literal(None), negated=True)) is False


class TestErrors:
    def test_division_by_zero(self):
        with pytest.raises(SqlExecutionError):
            BinaryOp("/", Literal(1), Literal(0)).evaluate((), RowLayout(["x"]))

    def test_modulo_by_zero(self):
        with pytest.raises(SqlExecutionError):
            BinaryOp("%", Literal(1), Literal(0)).evaluate((), RowLayout(["x"]))

    def test_incomparable_types(self):
        with pytest.raises(SqlExecutionError):
            BinaryOp("<", Literal(1), Literal("a")).evaluate((), RowLayout(["x"]))

    def test_non_numeric_arithmetic(self):
        with pytest.raises(SqlExecutionError):
            BinaryOp("+", Literal("a"), Literal("b")).evaluate(
                (), RowLayout(["x"])
            )

    def test_negating_text_rejected(self):
        with pytest.raises(SqlExecutionError):
            UnaryOp("-", Literal("a")).evaluate((), RowLayout(["x"]))

    def test_non_boolean_logic_operand(self):
        with pytest.raises(SqlExecutionError):
            BinaryOp("and", Literal(1), Literal(True)).evaluate(
                (), RowLayout(["x"])
            )


class TestToSqlRoundTrip:
    """to_sql output must re-parse to an equivalent expression."""

    @pytest.mark.parametrize(
        "sql",
        [
            "a + b * 2",
            "a BETWEEN 1 AND 10",
            "a NOT IN (1, 2, 3)",
            "name LIKE 'x%'",
            "a IS NOT NULL",
            "NOT (a = 1 OR b = 2)",
            "SUM(a * (1 - b))",
            "UPPER(name)",
            "a = -5",
        ],
    )
    def test_round_trip(self, sql):
        from repro.sqlengine.parser import parse

        stmt = parse(f"SELECT {sql} FROM t")
        expr = stmt.items[0].expr
        stmt2 = parse(f"SELECT {expr.to_sql()} FROM t")
        assert stmt2.items[0].expr.to_sql() == expr.to_sql()


class TestFindAggregates:
    def test_finds_nested_aggregates(self):
        from repro.sqlengine.parser import parse

        stmt = parse("SELECT SUM(a) / COUNT(b) + MAX(c) FROM t")
        aggregates = find_aggregates(stmt.items[0].expr)
        assert sorted(call.name for call in aggregates) == ["count", "max", "sum"]

    def test_no_aggregates(self):
        assert find_aggregates(BinaryOp("+", ColumnRef("a"), Literal(1))) == []

    def test_aggregate_inside_scalar_function_args(self):
        from repro.sqlengine.parser import parse

        stmt = parse("SELECT ABS(SUM(a)) FROM t")
        aggregates = find_aggregates(stmt.items[0].expr)
        assert len(aggregates) == 1
