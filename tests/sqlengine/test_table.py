"""Tests for heap tables, indexes-on-tables, and MemTables."""

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine import Column, ColumnType, MemTable, Table, TableSchema


def make_table(primary_key="id"):
    schema = TableSchema(
        "items",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("price", ColumnType.FLOAT),
            Column("label", ColumnType.TEXT),
        ],
        primary_key=primary_key,
    )
    return Table(schema)


class TestInsertAndRead:
    def test_insert_and_iterate(self):
        table = make_table()
        table.insert([1, 9.5, "a"])
        table.insert([2, 3.0, "b"])
        assert len(table) == 2
        assert list(table.rows()) == [(1, 9.5, "a"), (2, 3.0, "b")]

    def test_insert_returns_row_id(self):
        table = make_table()
        assert table.insert([1, 1.0, "x"]) == 0
        assert table.insert([2, 2.0, "y"]) == 1

    def test_row_by_id(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        assert table.row_by_id(row_id) == (1, 1.0, "x")

    def test_row_by_id_out_of_range(self):
        with pytest.raises(SqlExecutionError):
            make_table().row_by_id(0)

    def test_insert_many(self):
        table = make_table()
        ids = table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"]])
        assert ids == [0, 1]

    def test_byte_size_tracks_rows(self):
        table = make_table()
        assert table.byte_size == 0
        table.insert([1, 1.0, "x"])
        first = table.byte_size
        assert first > 0
        table.insert([2, 2.0, "yyyy"])
        assert table.byte_size > 2 * first - 4  # longer label costs more


class TestPrimaryKey:
    def test_pk_index_created_automatically(self):
        table = make_table()
        assert table.index_on("id") is not None
        assert table.index_on("id").unique

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        with pytest.raises(SqlExecutionError):
            table.insert([1, 2.0, "y"])

    def test_failed_insert_leaves_table_unchanged(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        size = table.byte_size
        with pytest.raises(SqlExecutionError):
            table.insert([1, 2.0, "y"])
        assert len(table) == 1
        assert table.byte_size == size

    def test_no_pk_table_allows_duplicates(self):
        table = make_table(primary_key=None)
        table.insert([1, 1.0, "x"])
        table.insert([1, 1.0, "x"])
        assert len(table) == 2


class TestDelete:
    def test_delete_row(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.insert([2, 2.0, "y"])
        table.delete_row(row_id)
        assert len(table) == 1
        assert list(table.rows()) == [(2, 2.0, "y")]

    def test_delete_updates_indexes(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        assert table.index_on("id").lookup(1) == []

    def test_double_delete_rejected(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        with pytest.raises(SqlExecutionError):
            table.delete_row(row_id)

    def test_delete_where(self):
        table = make_table()
        table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"], [3, 3.0, "x"]])
        deleted = table.delete_where(lambda row: row[2] == "x")
        assert deleted == 2
        assert list(table.rows()) == [(2, 2.0, "y")]

    def test_pk_reusable_after_delete(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        table.insert([1, 5.0, "z"])  # must not raise
        assert len(table) == 1

    def test_truncate(self):
        table = make_table()
        table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"]])
        table.truncate()
        assert len(table) == 0
        assert table.byte_size == 0
        assert table.index_on("id").lookup(1) == []


class TestUpdate:
    def test_update_row(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.update_row(row_id, [1, 9.0, "z"])
        assert table.row_by_id(row_id) == (1, 9.0, "z")

    def test_update_maintains_index(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.update_row(row_id, [7, 1.0, "x"])
        assert table.index_on("id").lookup(1) == []
        assert table.index_on("id").lookup(7) == [row_id]

    def test_update_to_duplicate_pk_rejected(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        row_id = table.insert([2, 2.0, "y"])
        with pytest.raises(SqlExecutionError):
            table.update_row(row_id, [1, 2.0, "y"])


class TestSecondaryIndexes:
    def test_create_index_over_existing_rows(self):
        table = make_table()
        table.insert_many([[1, 5.0, "x"], [2, 3.0, "y"], [3, 5.0, "z"]])
        index = table.create_index("idx_price", "price")
        assert sorted(index.lookup(5.0)) == [0, 2]

    def test_create_index_unknown_column(self):
        with pytest.raises(SqlCatalogError):
            make_table().create_index("idx", "zzz")

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("idx", "price")
        with pytest.raises(SqlCatalogError):
            table.create_index("idx", "label")

    def test_index_on_prefers_unique(self):
        table = make_table()
        table.create_index("idx_id2", "id")  # non-unique duplicate on same col
        chosen = table.index_on("id")
        assert chosen.unique

    def test_index_on_missing_column_returns_none(self):
        assert make_table().index_on("label") is None


class TestMemTable:
    def test_buffers_until_capacity(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=10_000)
        mem.append([1, 1.0, "x"])
        assert len(table) == 0
        assert mem.buffered_rows == 1

    def test_spills_when_full(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=64)
        for i in range(10):
            mem.append([i, float(i), "row"])
        assert len(table) > 0
        assert mem.spill_count >= 1

    def test_flush_moves_all_rows(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=10**9)
        mem.extend([[1, 1.0, "x"], [2, 2.0, "y"]])
        flushed = mem.flush()
        assert flushed == 2
        assert len(table) == 2
        assert mem.buffered_rows == 0

    def test_flush_empty_is_noop(self):
        table = make_table(primary_key=None)
        mem = MemTable(table)
        assert mem.flush() == 0
        assert mem.spill_count == 0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(SqlExecutionError):
            MemTable(make_table(), capacity_bytes=0)


class TestColumnStore:
    def test_column_data_transposes_live_rows(self):
        table = make_table()
        table.insert([1, 9.5, "a"])
        table.insert([2, 3.0, "b"])
        assert table.column_data() == [[1, 2], [9.5, 3.0], ["a", "b"]]

    def test_empty_table_yields_empty_columns(self):
        assert make_table().column_data() == [[], [], []]

    def test_cached_between_reads(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        assert table.column_data() is table.column_data()

    def test_insert_extends_store_in_place(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        store = table.column_data()
        table.insert([2, 2.0, "y"])
        # The same lists grow; no re-transpose of the whole table.
        assert table.column_data() is store
        assert store[0] == [1, 2]

    def test_insert_many_extends_store_in_place(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        store = table.column_data()
        table.insert_many([[2, 2.0, "y"], [3, 3.0, "z"]])
        assert table.column_data() is store
        assert store[2] == ["x", "y", "z"]

    def test_delete_invalidates_and_compacts(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        row_id = table.insert([2, 2.0, "y"])
        table.insert([3, 3.0, "z"])
        table.column_data()
        table.delete_row(row_id)
        # Tombstones are compacted away: positions are not row ids.
        assert table.column_data() == [[1, 3], [1.0, 3.0], ["x", "z"]]

    def test_update_invalidates(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.column_data()
        table.update_row(row_id, [1, 7.5, "w"])
        assert table.column_data() == [[1], [7.5], ["w"]]

    def test_create_index_keeps_store_current(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        store = table.column_data()
        table.create_index("idx_label", "label")
        assert table.column_data() is store


class TestInsertManyAtomicity:
    def test_intra_batch_duplicate_leaves_table_unchanged(self):
        table = make_table()
        version = table.version
        with pytest.raises(SqlExecutionError):
            table.insert_many([[1, 1.0, "x"], [1, 2.0, "y"]])
        assert len(table) == 0
        assert table.version == version
        assert table.index_on("id").lookup(1) == []

    def test_conflict_with_existing_row_keeps_batch_out(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        with pytest.raises(SqlExecutionError):
            table.insert_many([[2, 2.0, "y"], [1, 3.0, "z"]])
        # Per-row insertion would have kept row 2; the bulk path must not.
        assert list(table.rows()) == [(1, 1.0, "x")]
        assert table.index_on("id").lookup(2) == []

    def test_single_version_bump_per_batch(self):
        table = make_table()
        version = table.version
        table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"], [3, 3.0, "z"]])
        assert table.version == version + 1

    def test_indexes_consistent_after_bulk_load(self):
        table = make_table(primary_key=None)
        table.create_index("idx_label", "label")
        table.insert_many(
            [[1, 1.0, "x"], [2, 2.0, "y"], [3, 3.0, "x"], [4, 4.0, None]]
        )
        index = table.index_on("label")
        assert index.lookup("x") == [0, 2]
        assert index.lookup("y") == [1]
        assert len(index) == 3  # None keys are never indexed

    def test_empty_batch_is_a_no_op(self):
        table = make_table()
        version = table.version
        assert table.insert_many([]) == []
        assert table.version == version
