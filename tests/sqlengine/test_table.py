"""Tests for heap tables, indexes-on-tables, and MemTables."""

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine import Column, ColumnType, MemTable, Table, TableSchema


def make_table(primary_key="id"):
    schema = TableSchema(
        "items",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("price", ColumnType.FLOAT),
            Column("label", ColumnType.TEXT),
        ],
        primary_key=primary_key,
    )
    return Table(schema)


class TestInsertAndRead:
    def test_insert_and_iterate(self):
        table = make_table()
        table.insert([1, 9.5, "a"])
        table.insert([2, 3.0, "b"])
        assert len(table) == 2
        assert list(table.rows()) == [(1, 9.5, "a"), (2, 3.0, "b")]

    def test_insert_returns_row_id(self):
        table = make_table()
        assert table.insert([1, 1.0, "x"]) == 0
        assert table.insert([2, 2.0, "y"]) == 1

    def test_row_by_id(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        assert table.row_by_id(row_id) == (1, 1.0, "x")

    def test_row_by_id_out_of_range(self):
        with pytest.raises(SqlExecutionError):
            make_table().row_by_id(0)

    def test_insert_many(self):
        table = make_table()
        ids = table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"]])
        assert ids == [0, 1]

    def test_byte_size_tracks_rows(self):
        table = make_table()
        assert table.byte_size == 0
        table.insert([1, 1.0, "x"])
        first = table.byte_size
        assert first > 0
        table.insert([2, 2.0, "yyyy"])
        assert table.byte_size > 2 * first - 4  # longer label costs more


class TestPrimaryKey:
    def test_pk_index_created_automatically(self):
        table = make_table()
        assert table.index_on("id") is not None
        assert table.index_on("id").unique

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        with pytest.raises(SqlExecutionError):
            table.insert([1, 2.0, "y"])

    def test_failed_insert_leaves_table_unchanged(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        size = table.byte_size
        with pytest.raises(SqlExecutionError):
            table.insert([1, 2.0, "y"])
        assert len(table) == 1
        assert table.byte_size == size

    def test_no_pk_table_allows_duplicates(self):
        table = make_table(primary_key=None)
        table.insert([1, 1.0, "x"])
        table.insert([1, 1.0, "x"])
        assert len(table) == 2


class TestDelete:
    def test_delete_row(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.insert([2, 2.0, "y"])
        table.delete_row(row_id)
        assert len(table) == 1
        assert list(table.rows()) == [(2, 2.0, "y")]

    def test_delete_updates_indexes(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        assert table.index_on("id").lookup(1) == []

    def test_double_delete_rejected(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        with pytest.raises(SqlExecutionError):
            table.delete_row(row_id)

    def test_delete_where(self):
        table = make_table()
        table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"], [3, 3.0, "x"]])
        deleted = table.delete_where(lambda row: row[2] == "x")
        assert deleted == 2
        assert list(table.rows()) == [(2, 2.0, "y")]

    def test_pk_reusable_after_delete(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.delete_row(row_id)
        table.insert([1, 5.0, "z"])  # must not raise
        assert len(table) == 1

    def test_truncate(self):
        table = make_table()
        table.insert_many([[1, 1.0, "x"], [2, 2.0, "y"]])
        table.truncate()
        assert len(table) == 0
        assert table.byte_size == 0
        assert table.index_on("id").lookup(1) == []


class TestUpdate:
    def test_update_row(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.update_row(row_id, [1, 9.0, "z"])
        assert table.row_by_id(row_id) == (1, 9.0, "z")

    def test_update_maintains_index(self):
        table = make_table()
        row_id = table.insert([1, 1.0, "x"])
        table.update_row(row_id, [7, 1.0, "x"])
        assert table.index_on("id").lookup(1) == []
        assert table.index_on("id").lookup(7) == [row_id]

    def test_update_to_duplicate_pk_rejected(self):
        table = make_table()
        table.insert([1, 1.0, "x"])
        row_id = table.insert([2, 2.0, "y"])
        with pytest.raises(SqlExecutionError):
            table.update_row(row_id, [1, 2.0, "y"])


class TestSecondaryIndexes:
    def test_create_index_over_existing_rows(self):
        table = make_table()
        table.insert_many([[1, 5.0, "x"], [2, 3.0, "y"], [3, 5.0, "z"]])
        index = table.create_index("idx_price", "price")
        assert sorted(index.lookup(5.0)) == [0, 2]

    def test_create_index_unknown_column(self):
        with pytest.raises(SqlCatalogError):
            make_table().create_index("idx", "zzz")

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("idx", "price")
        with pytest.raises(SqlCatalogError):
            table.create_index("idx", "label")

    def test_index_on_prefers_unique(self):
        table = make_table()
        table.create_index("idx_id2", "id")  # non-unique duplicate on same col
        chosen = table.index_on("id")
        assert chosen.unique

    def test_index_on_missing_column_returns_none(self):
        assert make_table().index_on("label") is None


class TestMemTable:
    def test_buffers_until_capacity(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=10_000)
        mem.append([1, 1.0, "x"])
        assert len(table) == 0
        assert mem.buffered_rows == 1

    def test_spills_when_full(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=64)
        for i in range(10):
            mem.append([i, float(i), "row"])
        assert len(table) > 0
        assert mem.spill_count >= 1

    def test_flush_moves_all_rows(self):
        table = make_table(primary_key=None)
        mem = MemTable(table, capacity_bytes=10**9)
        mem.extend([[1, 1.0, "x"], [2, 2.0, "y"]])
        flushed = mem.flush()
        assert flushed == 2
        assert len(table) == 2
        assert mem.buffered_rows == 0

    def test_flush_empty_is_noop(self):
        table = make_table(primary_key=None)
        mem = MemTable(table)
        assert mem.flush() == 0
        assert mem.spill_count == 0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(SqlExecutionError):
            MemTable(make_table(), capacity_bytes=0)
