"""Tests for the ordered index structure."""

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine.indexes import OrderedIndex


@pytest.fixture
def index():
    idx = OrderedIndex("idx", "value")
    for row_id, key in enumerate([10, 20, 20, 30, 40]):
        idx.insert(key, row_id)
    return idx


class TestInsertLookup:
    def test_lookup_existing(self, index):
        assert index.lookup(10) == [0]
        assert sorted(index.lookup(20)) == [1, 2]

    def test_lookup_missing(self, index):
        assert index.lookup(25) == []

    def test_lookup_none_is_empty(self, index):
        assert index.lookup(None) == []

    def test_none_keys_not_indexed(self):
        idx = OrderedIndex("idx", "value")
        idx.insert(None, 0)
        assert len(idx) == 0

    def test_len_counts_entries(self, index):
        assert len(index) == 5

    def test_unique_violation(self):
        idx = OrderedIndex("idx", "value", unique=True)
        idx.insert(1, 0)
        with pytest.raises(SqlExecutionError):
            idx.insert(1, 1)


class TestRangeScan:
    def test_inclusive_range(self, index):
        assert sorted(index.range_scan(20, 30)) == [1, 2, 3]

    def test_exclusive_low(self, index):
        assert sorted(index.range_scan(20, 40, low_inclusive=False)) == [3, 4]

    def test_exclusive_high(self, index):
        assert sorted(index.range_scan(10, 20, high_inclusive=False)) == [0]

    def test_open_low(self, index):
        assert sorted(index.range_scan(None, 20)) == [0, 1, 2]

    def test_open_high(self, index):
        assert sorted(index.range_scan(30, None)) == [3, 4]

    def test_fully_open(self, index):
        assert sorted(index.range_scan()) == [0, 1, 2, 3, 4]

    def test_empty_range(self, index):
        assert list(index.range_scan(21, 29)) == []


class TestRemove:
    def test_remove_entry(self, index):
        index.remove(20, 1)
        assert index.lookup(20) == [2]

    def test_remove_last_entry_drops_key(self, index):
        index.remove(10, 0)
        assert index.lookup(10) == []
        assert index.min_key() == 20

    def test_remove_missing_key_raises(self, index):
        with pytest.raises(SqlExecutionError):
            index.remove(99, 0)

    def test_remove_wrong_row_id_raises(self, index):
        with pytest.raises(SqlExecutionError):
            index.remove(10, 99)

    def test_remove_none_is_noop(self, index):
        index.remove(None, 0)
        assert len(index) == 5


class TestBounds:
    def test_min_max(self, index):
        assert index.min_key() == 10
        assert index.max_key() == 40

    def test_empty_bounds(self):
        idx = OrderedIndex("idx", "value")
        assert idx.min_key() is None
        assert idx.max_key() is None

    def test_distinct_keys(self, index):
        assert index.distinct_keys() == 4

    def test_keys_sorted(self, index):
        assert list(index.keys()) == [10, 20, 30, 40]
