"""Tests for the EXPLAIN plan renderer."""

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE r (id INTEGER PRIMARY KEY, k INTEGER, v FLOAT)"
    )
    database.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, r_id INTEGER)")
    database.execute("CREATE INDEX idx_k ON r (k)")
    return database


class TestExplain:
    def test_full_scan(self, db):
        text = db.explain("SELECT v FROM r")
        assert "Scan r AS r (full scan)" in text
        assert text.startswith("Project")

    def test_index_equality(self, db):
        text = db.explain("SELECT v FROM r WHERE id = 7")
        assert "index eq id = 7" in text

    def test_index_range(self, db):
        text = db.explain("SELECT v FROM r WHERE k BETWEEN 1 AND 9")
        assert "index range k in [1, 9]" in text

    def test_open_range_bounds(self, db):
        text = db.explain("SELECT v FROM r WHERE k > 5")
        assert "index range k in [5, +inf]" in text

    def test_hash_join(self, db):
        text = db.explain("SELECT r.v FROM r, s WHERE r.id = s.r_id")
        assert "HashJoin [inner] on r.id = s.r_id" in text
        assert text.count("Scan") == 2

    def test_nested_loop_join(self, db):
        text = db.explain("SELECT r.v FROM r, s WHERE r.id > s.r_id")
        assert "NestedLoopJoin" in text

    def test_group_by_and_having(self, db):
        text = db.explain(
            "SELECT k, COUNT(*) FROM r GROUP BY k HAVING COUNT(*) > 2"
        )
        assert "GroupBy [k] computing [COUNT(*)]" in text
        assert "Filter" in text

    def test_sort_limit_distinct(self, db):
        text = db.explain("SELECT DISTINCT v FROM r ORDER BY v DESC LIMIT 5")
        lines = text.splitlines()
        assert lines[0].startswith("Limit 5")
        assert any("Sort [v DESC]" in line for line in lines)
        assert any("Distinct" in line for line in lines)

    def test_indentation_reflects_tree(self, db):
        text = db.explain("SELECT r.v FROM r, s WHERE r.id = s.r_id")
        lines = text.splitlines()
        # Project at depth 0, join at 1, scans at 2.
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  HashJoin")
        assert lines[2].startswith("    Scan")

    def test_subquery_resolved_before_explain(self, db):
        db.execute("INSERT INTO s VALUES (1, 10)")
        text = db.explain(
            "SELECT v FROM r WHERE id IN (SELECT r_id FROM s)"
        )
        assert "<subquery>" not in text
        assert "10" in text  # inlined literal

    def test_non_select_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.explain("DELETE FROM r")
