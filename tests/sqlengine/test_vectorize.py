"""Vector expression kernels: narrowing, 3VL, deferred errors, zero-copy."""

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    BinaryOp,
    ColumnRef,
    InList,
    InSubquery,
    Like,
    Literal,
    RowLayout,
)
from repro.sqlengine.vectorize import (
    compile_vector_evaluator,
    compile_vector_filter,
)

LAYOUT = RowLayout(("a", "b", "c"))


def cols_of(*batch):
    if not batch:
        return [[], [], []]
    return [list(col) for col in zip(*batch)]


def col(name):
    return ColumnRef(name)


def lit(value):
    return Literal(value)


def div_error():
    """An expression that errors on every row it is evaluated for."""
    return BinaryOp("=", BinaryOp("/", lit(1), lit(0)), lit(1))


class TestZeroCopy:
    def test_identity_selection_passes_column_through(self):
        cols = cols_of((1, 1.0, "x"), (2, 2.0, "y"))
        values, errs = compile_vector_evaluator(col("a"), LAYOUT)(
            cols, range(2)
        )
        assert values is cols[0]
        assert errs == []

    def test_sparse_selection_gathers(self):
        cols = cols_of((1, 1.0, "x"), (2, 2.0, "y"), (3, 3.0, "z"))
        values, errs = compile_vector_evaluator(col("a"), LAYOUT)(cols, [0, 2])
        assert values == [1, 3]
        assert errs == []


class TestShortCircuit:
    def test_and_skips_right_where_left_is_false(self):
        # Row 0 has a=5, so `a = 1` is false and 1/0 never evaluates.
        predicate = BinaryOp("and", BinaryOp("=", col("a"), lit(1)), div_error())
        cols = cols_of((5, 1.0, "x"), (1, 2.0, "y"), (6, 3.0, "z"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(3))
        assert passing == []
        assert [row for row, _ in errs] == [1]
        assert "division by zero" in str(errs[0][1])

    def test_or_skips_right_where_left_is_true(self):
        predicate = BinaryOp("or", BinaryOp("=", col("a"), lit(1)), div_error())
        cols = cols_of((1, 1.0, "x"), (2, 2.0, "y"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(2))
        assert list(passing) == [0]
        assert [row for row, _ in errs] == [1]

    def test_null_and_false_rejects_without_error(self):
        # NULL AND false = false: 3VL lets the right side decide.
        predicate = BinaryOp(
            "and",
            BinaryOp("=", col("a"), lit(1)),  # NULL when a is NULL
            BinaryOp("=", lit(1), lit(2)),
        )
        cols = cols_of((None, 1.0, "x"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(1))
        assert passing == [] and errs == []

    def test_null_or_true_passes(self):
        predicate = BinaryOp(
            "or",
            BinaryOp("=", col("a"), lit(1)),  # NULL when a is NULL
            BinaryOp("=", lit(1), lit(1)),
        )
        cols = cols_of((None, 1.0, "x"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(1))
        assert list(passing) == [0] and errs == []


class TestCompileTimeResolution:
    def test_like_pattern_compiles_once_and_matches(self):
        predicate = Like(col("c"), "r%", False)
        cols = cols_of((1, 0.0, "red"), (2, 0.0, "green"), (3, 0.0, None))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(3))
        assert list(passing) == [0] and errs == []

    def test_in_list_of_literals_uses_set_semantics(self):
        predicate = InList(col("a"), (lit(1), lit(3)), False)
        cols = cols_of((1, 0.0, "x"), (2, 0.0, "y"), (3, 0.0, "z"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(3))
        assert list(passing) == [0, 2] and errs == []

    def test_in_list_with_null_member_is_unknown_not_false(self):
        # 2 IN (1, NULL) is UNKNOWN: the row is rejected but NOT IN must
        # also reject it, which only 3VL (not a plain set test) gets right.
        cols = cols_of((2, 0.0, "x"))
        in_list = InList(col("a"), (lit(1), lit(None)), False)
        not_in = InList(col("a"), (lit(1), lit(None)), True)
        assert compile_vector_filter(in_list, LAYOUT)(cols, range(1))[0] == []
        assert compile_vector_filter(not_in, LAYOUT)(cols, range(1))[0] == []


class TestDeferredErrors:
    def test_strict_boolean_context_defers_type_error(self):
        # WHERE 1: logical contexts require an actual boolean.
        predicate = BinaryOp("and", lit(1), lit(True))
        cols = cols_of((1, 0.0, "x"), (2, 0.0, "y"))
        passing, errs = compile_vector_filter(predicate, LAYOUT)(cols, range(2))
        assert passing == []
        assert [row for row, _ in errs] == [0, 1]
        assert "expected a boolean" in str(errs[0][1])

    def test_same_row_errors_keep_the_earlier_stage(self):
        # Both comparison operands error on the same row; the interpreted
        # path raises the left one first, so the merge must keep it.
        expr = BinaryOp(
            "=",
            BinaryOp("/", col("a"), lit(0)),
            BinaryOp("+", col("a"), col("c")),
        )
        cols = cols_of((1, 0.0, "x"))
        values, errs = compile_vector_evaluator(expr, LAYOUT)(cols, range(1))
        assert len(errs) == 1
        assert "division by zero" in str(errs[0][1])

    def test_errors_sorted_by_row(self):
        expr = BinaryOp("/", lit(10), col("a"))
        cols = cols_of((0, 0.0, "x"), (2, 0.0, "y"), (0, 0.0, "z"))
        values, errs = compile_vector_evaluator(expr, LAYOUT)(cols, range(3))
        assert [row for row, _ in errs] == [0, 2]
        assert values[1] == 5.0


class TestRowAdapterFallback:
    def test_unsupported_node_falls_back_per_row(self):
        # InSubquery must be resolved by the planner; evaluating it raises
        # per row, and the adapter defers exactly that.
        expr = InSubquery(col("a"), object(), False)
        values, errs = compile_vector_evaluator(expr, LAYOUT)(
            cols_of((1, 0.0, "x")), range(1)
        )
        assert [row for row, _ in errs] == [0]
        assert isinstance(errs[0][1], SqlExecutionError)
