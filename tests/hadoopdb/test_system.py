"""End-to-end tests for the HadoopDB cluster.

Correctness oracle: load all workers' partitions into a single local
database and compare the distributed result against the local one.
"""

import pytest

from repro.hadoopdb import HadoopDbCluster
from repro.mapreduce import MapReduceConfig
from repro.sqlengine import Database
from repro.tpch import (
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_WORKERS = 4


@pytest.fixture(scope="module")
def cluster():
    cluster = HadoopDbCluster(NUM_WORKERS)
    cluster.create_tables(TPCH_SCHEMAS.values(), SECONDARY_INDICES)
    generator = TpchGenerator(seed=11)
    for index in range(NUM_WORKERS):
        cluster.load_worker(index, generator.generate_peer(index))
    return cluster


@pytest.fixture(scope="module")
def oracle():
    """A single database holding the union of all partitions."""
    db = Database()
    create_tpch_tables(db)
    generator = TpchGenerator(seed=11)
    for index in range(NUM_WORKERS):
        for table, rows in generator.generate_peer(index).items():
            if table in ("nation", "region") and index > 0:
                continue  # replicated dimension tables
            db.table(table).insert_many(rows)
    return db


def _sorted(rows):
    return sorted(rows, key=repr)


class TestCorrectness:
    def test_q1_matches_oracle(self, cluster, oracle):
        distributed = cluster.execute(Q1())
        local = oracle.execute(Q1())
        assert _sorted(distributed.records) == _sorted(local.rows)
        assert len(distributed) > 0

    def test_q2_matches_oracle(self, cluster, oracle):
        distributed = cluster.execute(Q2())
        local = oracle.execute(Q2())
        assert len(distributed.records) == 1
        assert distributed.records[0][0] == pytest.approx(local.scalar())

    def test_q3_matches_oracle(self, cluster, oracle):
        distributed = cluster.execute(Q3())
        local = oracle.execute(Q3())
        assert _sorted(distributed.records) == _sorted(local.rows)
        assert len(distributed) > 0

    def test_q4_matches_oracle(self, cluster, oracle):
        distributed = cluster.execute(Q4())
        local = oracle.execute(Q4())
        assert len(distributed.records) == len(local.rows)
        assert {row[0]: row[1] for row in distributed.records} == pytest.approx(
            {row[0]: row[1] for row in local.rows}
        )

    def test_q5_matches_oracle(self, cluster, oracle):
        distributed = cluster.execute(Q5())
        local = oracle.execute(Q5())
        assert len(distributed.records) == len(local.rows)
        for d_row, l_row in zip(distributed.records, local.rows):
            assert d_row[0] == l_row[0]
            assert d_row[1] == pytest.approx(l_row[1])

    def test_q5_ordered_descending(self, cluster):
        revenues = [row[1] for row in cluster.execute(Q5()).records]
        assert revenues == sorted(revenues, reverse=True)


class TestJobAccounting:
    def test_job_counts_match_paper(self, cluster):
        assert cluster.execute(Q1()).num_jobs == 1
        assert cluster.execute(Q2()).num_jobs == 1
        assert cluster.execute(Q3()).num_jobs == 1
        assert cluster.execute(Q4()).num_jobs == 2
        assert cluster.execute(Q5()).num_jobs == 4

    def test_startup_cost_floor(self, cluster):
        # Every query pays at least one job startup (~12 s).
        result = cluster.execute(Q1())
        assert result.duration_s >= cluster.engine.config.job_startup_s

    def test_multi_job_queries_cost_more(self, cluster):
        q1 = cluster.execute(Q1()).duration_s
        q5 = cluster.execute(Q5()).duration_s
        assert q5 > q1 + 2 * cluster.engine.config.job_startup_s


class TestConfiguration:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            HadoopDbCluster(0)

    def test_custom_mr_config_respected(self):
        config = MapReduceConfig(job_startup_s=99.0)
        cluster = HadoopDbCluster(2, mr_config=config)
        cluster.create_tables(TPCH_SCHEMAS.values(), SECONDARY_INDICES)
        generator = TpchGenerator(seed=11, scale=0.2)
        for index in range(2):
            cluster.load_worker(index, generator.generate_peer(index))
        assert cluster.execute(Q1()).duration_s >= 99.0
