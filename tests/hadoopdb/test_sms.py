"""Tests for the SMS planner's compilation of the benchmark query family."""

import pytest

from repro.errors import SqlExecutionError
from repro.hadoopdb import SmsPlanner
from repro.tpch import Q1, Q2, Q3, Q4, Q5, TPCH_SCHEMAS


@pytest.fixture
def planner():
    return SmsPlanner(TPCH_SCHEMAS)


class TestJobCounts:
    """The per-query job counts the paper reports."""

    def test_q1_is_one_map_only_job(self, planner):
        plan = planner.compile(Q1())
        assert plan.num_jobs == 1
        assert not plan.joins
        assert plan.aggregate is None

    def test_q2_is_one_job_with_partial_aggregation(self, planner):
        plan = planner.compile(Q2())
        assert plan.num_jobs == 1
        assert plan.aggregate is not None
        assert plan.aggregate.partials is not None

    def test_q3_is_one_join_job(self, planner):
        plan = planner.compile(Q3())
        assert len(plan.joins) == 1
        assert plan.aggregate is None
        assert plan.num_jobs == 1

    def test_q4_is_two_jobs(self, planner):
        plan = planner.compile(Q4())
        assert len(plan.joins) == 1
        assert plan.aggregate is not None
        assert plan.num_jobs == 2

    def test_q5_is_four_jobs(self, planner):
        plan = planner.compile(Q5())
        assert len(plan.joins) == 3
        assert plan.aggregate is not None
        assert plan.num_jobs == 4


class TestPushdown:
    def test_selection_pushed_into_local_sql(self, planner):
        plan = planner.compile(Q1())
        assert "l_shipdate" in plan.base.sql
        assert "WHERE" in plan.base.sql

    def test_projection_pruned_to_needed_columns(self, planner):
        plan = planner.compile(Q3())
        # lineitem has 16 columns; only the referenced ones survive.
        lineitem_cols = [
            col for col in plan.columns_after_joins if "lineitem." in col
        ]
        assert 0 < len(lineitem_cols) < 8

    def test_join_keys_resolved(self, planner):
        plan = planner.compile(Q3())
        stage = plan.joins[0]
        assert stage.left_key == "orders.o_orderkey"
        assert stage.right_key == "lineitem.l_orderkey"

    def test_q5_residual_nation_predicate(self, planner):
        plan = planner.compile(Q5())
        residuals = [
            stage.residual for stage in plan.joins if stage.residual is not None
        ]
        assert len(residuals) == 1
        assert "nationkey" in residuals[0].to_sql().lower()

    def test_q2_partial_sql_contains_partial_aggregate(self, planner):
        plan = planner.compile(Q2())
        partial = plan.aggregate.partials[0]
        assert partial.merge_ops == ["sum"]
        assert partial.finalize == "identity"

    def test_avg_decomposes_into_sum_and_count(self, planner):
        plan = planner.compile(
            "SELECT AVG(l_quantity) FROM lineitem WHERE l_discount < 0.05"
        )
        partial = plan.aggregate.partials[0]
        assert len(partial.partial_sqls) == 2
        assert partial.finalize == "div"

    def test_count_distinct_disables_pushdown(self, planner):
        plan = planner.compile("SELECT COUNT(DISTINCT l_suppkey) FROM lineitem")
        assert plan.aggregate is not None
        assert plan.aggregate.partials is None


class TestRejections:
    def test_cross_join_rejected(self, planner):
        with pytest.raises(SqlExecutionError):
            planner.compile("SELECT * FROM part, supplier")

    def test_non_select_rejected(self, planner):
        with pytest.raises(SqlExecutionError):
            planner.compile("DELETE FROM part")

    def test_left_join_rejected(self, planner):
        with pytest.raises(SqlExecutionError):
            planner.compile(
                "SELECT * FROM orders LEFT JOIN lineitem "
                "ON o_orderkey = l_orderkey"
            )
