"""Tests for the benchmark queries and supply-chain partitioning."""

import pytest

from repro.sqlengine import Database, parse
from repro.tpch import (
    COMMON_TABLES,
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    RETAILER_TABLES,
    SUPPLIER_TABLES,
    SupplyChainPartitioner,
    TpchGenerator,
    create_tpch_tables,
    retailer_throughput_query,
    supplier_throughput_query,
)
from repro.tpch.queries import PERFORMANCE_QUERIES


@pytest.fixture(scope="module")
def loaded_db():
    db = Database()
    create_tpch_tables(db)
    data = TpchGenerator(seed=7).generate_peer(0)
    for table, rows in data.items():
        db.table(table).insert_many(rows)
    return db


class TestPerformanceQueries:
    def test_all_five_parse(self):
        for name, sql in PERFORMANCE_QUERIES.items():
            parse(sql)

    def test_q1_returns_selection_columns(self, loaded_db):
        result = loaded_db.execute(Q1())
        assert result.columns == [
            "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
        ]

    def test_q1_uses_index(self, loaded_db):
        result = loaded_db.execute(Q1())
        assert result.stats.index_probes >= 1

    def test_q2_returns_scalar_aggregate(self, loaded_db):
        result = loaded_db.execute(Q2())
        assert result.columns == ["total_price"]
        assert result.scalar() > 0

    def test_q3_join_produces_rows(self, loaded_db):
        result = loaded_db.execute(Q3())
        assert len(result) > 0
        assert "o_orderdate" in result.columns

    def test_q4_grouped_aggregate(self, loaded_db):
        result = loaded_db.execute(Q4())
        assert len(result) > 0
        # Each part key appears once.
        keys = result.column("ps_partkey")
        assert len(keys) == len(set(keys))

    def test_q5_revenue_sorted_descending(self, loaded_db):
        result = loaded_db.execute(Q5())
        revenues = result.column("revenue")
        assert revenues == sorted(revenues, reverse=True)
        assert len(result) > 0

    def test_parameterized_dates_change_selectivity(self, loaded_db):
        loose = len(loaded_db.execute(Q1(ship_date="1992-01-01",
                                         commit_date="1992-01-01")))
        tight = len(loaded_db.execute(Q1()))
        assert loose > tight


class TestThroughputQueries:
    def test_queries_parse(self):
        parse(supplier_throughput_query(0))
        parse(retailer_throughput_query(0))

    def test_supplier_query_on_partitioned_data(self):
        db = Database()
        create_tpch_tables(
            db, tables=SUPPLIER_TABLES + COMMON_TABLES, with_nation_key=True
        )
        partitioner = SupplyChainPartitioner(TpchGenerator(seed=3))
        assignment = partitioner.assign(["peer-0"])[0]
        for table, rows in partitioner.generate_for(assignment, 0).items():
            db.table(table).insert_many(rows)
        result = db.execute(supplier_throughput_query(assignment.nation_key))
        assert len(result) > 0
        miss = db.execute(
            supplier_throughput_query(assignment.nation_key + 1)
        )
        assert len(miss) == 0

    def test_retailer_query_on_partitioned_data(self):
        db = Database()
        create_tpch_tables(
            db, tables=RETAILER_TABLES + COMMON_TABLES, with_nation_key=True
        )
        partitioner = SupplyChainPartitioner(TpchGenerator(seed=3))
        assignment = partitioner.assign(["s", "peer-r"])[1]
        assert assignment.role == "retailer"
        for table, rows in partitioner.generate_for(assignment, 1).items():
            db.table(table).insert_many(rows)
        result = db.execute(retailer_throughput_query(assignment.nation_key))
        assert len(result) > 0


class TestPartitioner:
    def test_roles_alternate_evenly(self):
        partitioner = SupplyChainPartitioner()
        assignments = partitioner.assign([f"p{i}" for i in range(10)])
        assert len(partitioner.suppliers(assignments)) == 5
        assert len(partitioner.retailers(assignments)) == 5

    def test_tables_by_role(self):
        partitioner = SupplyChainPartitioner()
        supplier, retailer = partitioner.assign(["a", "b"])
        assert set(SUPPLIER_TABLES) <= set(supplier.tables)
        assert set(RETAILER_TABLES) <= set(retailer.tables)
        assert set(COMMON_TABLES) <= set(supplier.tables)
        assert not set(RETAILER_TABLES) & set(supplier.tables)

    def test_nation_keys_distinct_within_role_until_wrap(self):
        partitioner = SupplyChainPartitioner()
        assignments = partitioner.assign([f"p{i}" for i in range(20)])
        supplier_nations = [a.nation_key for a in partitioner.suppliers(assignments)]
        assert len(set(supplier_nations)) == len(supplier_nations)
