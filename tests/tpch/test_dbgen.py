"""Tests for the deterministic TPC-H generator."""

import pytest

from repro.sqlengine import Database
from repro.tpch import TpchGenerator, create_tpch_tables
from repro.tpch.dbgen import KEY_STRIDE, NUM_NATIONS


@pytest.fixture(scope="module")
def gen():
    return TpchGenerator(seed=7, scale=1.0)


@pytest.fixture(scope="module")
def peer0(gen):
    return gen.generate_peer(0)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = TpchGenerator(seed=7).generate_peer(0)
        b = TpchGenerator(seed=7).generate_peer(0)
        assert a == b

    def test_different_seed_different_data(self):
        a = TpchGenerator(seed=7).generate_peer(0)
        b = TpchGenerator(seed=8).generate_peer(0)
        assert a["lineitem"] != b["lineitem"]

    def test_different_peers_different_data(self):
        gen = TpchGenerator(seed=7)
        assert gen.generate_peer(0)["orders"] != gen.generate_peer(1)["orders"]


class TestSizing:
    def test_row_counts_scale(self):
        small = TpchGenerator(scale=1.0)
        big = TpchGenerator(scale=2.0)
        assert big.rows_for("orders") == 2 * small.rows_for("orders")
        assert big.rows_for("lineitem") == 2 * small.rows_for("lineitem")

    def test_dimension_tables_fixed_size(self, gen, peer0):
        assert len(peer0["nation"]) == NUM_NATIONS
        assert len(peer0["region"]) == 5

    def test_proportions_match_tpch(self, gen):
        assert gen.rows_for("lineitem") == 4 * gen.rows_for("orders")
        assert gen.rows_for("partsupp") == 4 * gen.rows_for("part")

    def test_lineitem_count_near_expected(self, gen, peer0):
        expected = gen.rows_for("lineitem")
        actual = len(peer0["lineitem"])
        assert 0.7 * expected <= actual <= 1.3 * expected

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale=0)

    def test_unknown_table_rejected(self, gen):
        with pytest.raises(KeyError):
            gen.rows_for("widgets")


class TestKeyRanges:
    def test_peer_keys_disjoint(self, gen):
        keys0 = {row[0] for row in gen.generate_peer(0)["orders"]}
        keys1 = {row[0] for row in gen.generate_peer(1)["orders"]}
        assert not keys0 & keys1

    def test_key_base_stride(self, gen):
        assert gen.key_base(0) == 1
        assert gen.key_base(3) == 3 * KEY_STRIDE + 1


class TestReferentialIntegrity:
    def test_lineitem_references_local_orders(self, peer0):
        order_keys = {row[0] for row in peer0["orders"]}
        for row in peer0["lineitem"]:
            assert row[0] in order_keys

    def test_lineitem_dates_consistent_with_order(self, peer0):
        order_dates = {row[0]: row[4] for row in peer0["orders"]}
        for row in peer0["lineitem"]:
            assert row[10] > order_dates[row[0]]  # shipdate after orderdate

    def test_orders_reference_local_customers(self, peer0):
        customer_keys = {row[0] for row in peer0["customer"]}
        for row in peer0["orders"]:
            assert row[1] in customer_keys

    def test_partsupp_references_local_parts_and_suppliers(self, peer0):
        part_keys = {row[0] for row in peer0["part"]}
        supplier_keys = {row[0] for row in peer0["supplier"]}
        for row in peer0["partsupp"]:
            assert row[0] in part_keys
            assert row[1] in supplier_keys

    def test_lineitem_references_local_parts_and_suppliers(self, peer0):
        part_keys = {row[0] for row in peer0["part"]}
        supplier_keys = {row[0] for row in peer0["supplier"]}
        for row in peer0["lineitem"]:
            assert row[1] in part_keys
            assert row[2] in supplier_keys


class TestValueDistributions:
    def test_discounts_in_range(self, peer0):
        for row in peer0["lineitem"]:
            assert 0.0 <= row[6] <= 0.10

    def test_part_sizes_uniform_1_to_50(self, peer0):
        sizes = [row[5] for row in peer0["part"]]
        assert min(sizes) >= 1
        assert max(sizes) <= 50

    def test_order_dates_in_tpch_window(self, peer0):
        for row in peer0["orders"]:
            assert "1992-01-01" <= row[4] <= "1998-08-02"

    def test_nations_spread(self, peer0):
        nations = {row[3] for row in peer0["customer"]}
        assert len(nations) > 5  # uniform over 25 nations


class TestNationPinning:
    def test_nation_key_pins_all_rows(self, gen):
        data = gen.generate_peer(0, nation_key=7)
        assert all(row[3] == 7 for row in data["customer"])
        assert all(row[3] == 7 for row in data["supplier"])

    def test_with_nation_key_appends_column(self, gen):
        data = gen.generate_peer(
            0, tables=["lineitem", "part"], nation_key=3, with_nation_key=True
        )
        assert all(row[-1] == 3 for row in data["lineitem"])
        assert all(row[-1] == 3 for row in data["part"])


class TestLoadsIntoEngine:
    def test_generated_rows_satisfy_schema(self, peer0):
        db = Database()
        create_tpch_tables(db)
        for table, rows in peer0.items():
            db.table(table).insert_many(rows)
        count = db.execute("SELECT COUNT(*) FROM lineitem").scalar()
        assert count == len(peer0["lineitem"])

    def test_q1_selectivity_small_but_nonzero(self, peer0):
        from repro.tpch import Q1

        db = Database()
        create_tpch_tables(db, tables=["lineitem"])
        db.table("lineitem").insert_many(peer0["lineitem"])
        result = db.execute(Q1())
        fraction = len(result) / len(peer0["lineitem"])
        assert 0 < fraction < 0.2  # highly selective, like the paper's Q1
