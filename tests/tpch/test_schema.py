"""Tests for the TPC-H schema definitions."""

import pytest

from repro.sqlengine import ColumnType, Database
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, create_tpch_tables, schema_for


class TestSchemas:
    def test_all_eight_tables_defined(self):
        assert sorted(TPCH_SCHEMAS) == sorted(
            [
                "region", "nation", "supplier", "customer",
                "part", "partsupp", "orders", "lineitem",
            ]
        )

    def test_lineitem_columns(self):
        schema = TPCH_SCHEMAS["lineitem"]
        assert len(schema.columns) == 16
        assert schema.column("l_shipdate").column_type is ColumnType.DATE
        assert schema.column("l_extendedprice").column_type is ColumnType.FLOAT
        assert schema.primary_key is None

    def test_primary_keys(self):
        assert TPCH_SCHEMAS["orders"].primary_key == "o_orderkey"
        assert TPCH_SCHEMAS["customer"].primary_key == "c_custkey"
        assert TPCH_SCHEMAS["partsupp"].primary_key is None  # composite in TPC-H

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            schema_for("widgets")

    def test_nation_key_variant_appends_column(self):
        schema = schema_for("lineitem", with_nation_key=True)
        assert schema.has_column("l_nationkey")

    def test_nation_key_variant_no_duplicate_for_supplier(self):
        schema = schema_for("supplier", with_nation_key=True)
        names = [column.name for column in schema.columns]
        assert names.count("s_nationkey") == 1


class TestSecondaryIndices:
    def test_table4_reconstruction_covers_query_columns(self):
        # The columns the five benchmark queries filter on must be indexed.
        assert "l_shipdate" in SECONDARY_INDICES["lineitem"]
        assert "l_commitdate" in SECONDARY_INDICES["lineitem"]
        assert "o_orderdate" in SECONDARY_INDICES["orders"]
        assert "p_size" in SECONDARY_INDICES["part"]
        assert "ps_partkey" in SECONDARY_INDICES["partsupp"]

    def test_create_tables_builds_indexes(self):
        db = Database()
        create_tpch_tables(db)
        lineitem = db.table("lineitem")
        assert lineitem.index_on("l_shipdate") is not None
        assert lineitem.index_on("l_commitdate") is not None
        orders = db.table("orders")
        assert orders.index_on("o_orderkey").unique  # primary
        assert orders.index_on("o_orderdate") is not None

    def test_create_subset_of_tables(self):
        db = Database()
        create_tpch_tables(db, tables=["part", "partsupp"])
        assert db.table_names() == ["part", "partsupp"]

    def test_create_without_secondary_indices(self):
        db = Database()
        create_tpch_tables(db, with_secondary_indices=False)
        assert db.table("lineitem").index_on("l_shipdate") is None
