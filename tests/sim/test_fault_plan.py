"""Tests for message-level fault injection (FaultPlan + SimNetwork)."""

import pytest

from repro.errors import (
    RpcTimeoutError,
    SimulationError,
    TransientNetworkError,
)
from repro.sim import FaultPlan, LinkFault, NetworkConfig, Outage, SimNetwork


def network(**kwargs):
    net = SimNetwork(NetworkConfig(**kwargs))
    net.add_host("a")
    net.add_host("b")
    net.add_host("c")
    return net


class TestValidation:
    def test_drop_probability_bounds(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(SimulationError):
            LinkFault(drop_probability=-0.1)

    def test_outage_window_must_be_ordered(self):
        with pytest.raises(SimulationError):
            Outage("a", start=5, end=5)

    def test_timeout_must_be_positive(self):
        with pytest.raises(SimulationError):
            FaultPlan(timeout_s=0.0)

    def test_bandwidth_factor_bounds(self):
        with pytest.raises(SimulationError):
            LinkFault(bandwidth_factor=0.0)


class TestDrops:
    def test_certain_drop_raises_transient(self):
        net = network()
        net.install_fault_plan(FaultPlan(drop_probability=1.0))
        with pytest.raises(TransientNetworkError):
            net.transfer("a", "b", 1000)
        assert net.fault_stats.dropped_messages == 1

    def test_dropped_transfer_still_counts_traffic(self):
        # The bytes were put on the wire before the loss; wasted traffic
        # is real traffic.
        net = network()
        net.install_fault_plan(FaultPlan(drop_probability=1.0))
        with pytest.raises(TransientNetworkError):
            net.transfer("a", "b", 1000)
        assert net.total.bytes == 1000

    def test_zero_probability_never_drops(self):
        net = network()
        net.install_fault_plan(FaultPlan(drop_probability=0.0))
        for _ in range(50):
            net.transfer("a", "b", 10)
        assert net.fault_stats.total == 0

    def test_seed_makes_drop_pattern_reproducible(self):
        outcomes = []
        for _ in range(2):
            net = network()
            net.install_fault_plan(FaultPlan(seed=3, drop_probability=0.4))
            pattern = []
            for _ in range(30):
                try:
                    net.transfer("a", "b", 10)
                    pattern.append(True)
                except TransientNetworkError:
                    pattern.append(False)
            outcomes.append(tuple(pattern))
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]

    def test_link_fault_overrides_plan_probability(self):
        plan = FaultPlan(
            drop_probability=0.0,
            link_faults=[LinkFault(src="a", dst="b", drop_probability=1.0)],
        )
        net = network()
        net.install_fault_plan(plan)
        with pytest.raises(TransientNetworkError):
            net.transfer("a", "b", 10)
        net.transfer("b", "c", 10)  # unmatched link unaffected

    def test_loopback_is_immune(self):
        net = network()
        net.install_fault_plan(FaultPlan(drop_probability=1.0))
        net.transfer("a", "a", 1000)
        assert net.fault_stats.total == 0


class TestOutages:
    def test_outage_rejects_either_endpoint(self):
        plan = FaultPlan(outages=[Outage("b", start=1, end=3)])
        net = network()
        net.install_fault_plan(plan)
        with pytest.raises(TransientNetworkError):
            net.transfer("a", "b", 10)  # ordinal 1: b unreachable as dst
        with pytest.raises(TransientNetworkError):
            net.transfer("b", "c", 10)  # ordinal 2: b unreachable as src
        net.transfer("a", "b", 10)      # ordinal 3: window closed
        assert net.fault_stats.transient_rejections == 2

    def test_is_unreachable_tracks_current_ordinal(self):
        plan = FaultPlan(outages=[Outage("b", start=1, end=2)])
        net = network()
        net.install_fault_plan(plan)
        assert not net.is_unreachable("b")  # ordinal still 0
        with pytest.raises(TransientNetworkError):
            net.transfer("a", "b", 10)
        assert net.is_unreachable("b")


class TestDegradationAndTimeouts:
    def test_slow_link_stretches_duration(self):
        net = network()
        baseline = net.transfer("a", "b", 1_000_000)
        net.install_fault_plan(
            FaultPlan(link_faults=[LinkFault(src="a", bandwidth_factor=0.5)])
        )
        degraded = net.transfer("a", "b", 1_000_000)
        assert degraded > baseline * 1.5

    def test_timeout_raises_rpc_timeout(self):
        net = network()
        net.install_fault_plan(FaultPlan(timeout_s=1e-6))
        with pytest.raises(RpcTimeoutError):
            net.transfer("a", "b", 100_000_000)
        assert net.fault_stats.timeouts == 1

    def test_rpc_timeout_is_transient(self):
        # Retry layers treat timeouts like any other transient fault.
        assert issubclass(RpcTimeoutError, TransientNetworkError)


class TestCrashSchedule:
    def test_crash_callback_fires_after_nth_transfer(self):
        crashed = []
        net = network()
        net.install_fault_plan(
            FaultPlan(crash_after={2: "c"}), on_crash=crashed.append
        )
        net.transfer("a", "b", 10)
        assert crashed == []
        net.transfer("a", "b", 10)
        assert crashed == ["c"]
        assert net.fault_stats.injected_crashes == 1

    def test_reinstall_resets_schedule(self):
        crashed = []
        plan = FaultPlan(crash_after={1: "c"})
        net = network()
        net.install_fault_plan(plan, on_crash=crashed.append)
        net.transfer("a", "b", 10)
        net.install_fault_plan(plan, on_crash=crashed.append)
        net.transfer("a", "b", 10)
        assert crashed == ["c", "c"]

    def test_uninstall_disarms(self):
        net = network()
        net.install_fault_plan(FaultPlan(drop_probability=1.0))
        net.install_fault_plan(None)
        net.transfer("a", "b", 10)
        assert net.fault_stats.total == 0
