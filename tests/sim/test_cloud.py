"""Tests for the simulated cloud provider (EC2/RDS/EBS/CloudWatch stand-in)."""

import pytest

from repro.errors import CloudError, InstanceNotFound, InstanceStateError
from repro.sim import (
    CloudProvider,
    FailureInjector,
    InstanceState,
    INSTANCE_TYPES,
    SimNetwork,
)


@pytest.fixture
def cloud():
    return CloudProvider(SimNetwork())


class TestLaunchTerminate:
    def test_launch_registers_host(self, cloud):
        instance = cloud.launch_instance()
        assert instance.state is InstanceState.RUNNING
        assert cloud.network.has_host(instance.instance_id)

    def test_launch_default_matches_paper(self, cloud):
        # "Initially, each BestPeer++ instance is launched as a m1.small EC2
        # instance (1 virtual core, 1.7 GB memory) with 5 GB storage space."
        instance = cloud.launch_instance()
        assert instance.instance_type.name == "m1.small"
        assert instance.instance_type.memory_gb == 1.7
        assert instance.storage_gb == 5.0

    def test_launch_with_explicit_id(self, cloud):
        instance = cloud.launch_instance(instance_id="peer-1")
        assert instance.instance_id == "peer-1"

    def test_duplicate_id_rejected(self, cloud):
        cloud.launch_instance(instance_id="peer-1")
        with pytest.raises(CloudError):
            cloud.launch_instance(instance_id="peer-1")

    def test_unknown_type_rejected(self, cloud):
        with pytest.raises(CloudError):
            cloud.launch_instance(instance_type="t2.nano")

    def test_nonpositive_storage_rejected(self, cloud):
        with pytest.raises(CloudError):
            cloud.launch_instance(storage_gb=0)

    def test_terminate_removes_host(self, cloud):
        instance = cloud.launch_instance()
        cloud.terminate_instance(instance.instance_id)
        assert instance.state is InstanceState.TERMINATED
        assert not cloud.network.has_host(instance.instance_id)

    def test_double_terminate_rejected(self, cloud):
        instance = cloud.launch_instance()
        cloud.terminate_instance(instance.instance_id)
        with pytest.raises(InstanceStateError):
            cloud.terminate_instance(instance.instance_id)

    def test_describe_unknown_instance(self, cloud):
        with pytest.raises(InstanceNotFound):
            cloud.describe_instance("i-999999")

    def test_list_instances_filters_by_state(self, cloud):
        a = cloud.launch_instance()
        cloud.launch_instance()
        cloud.terminate_instance(a.instance_id)
        running = cloud.list_instances(InstanceState.RUNNING)
        assert len(running) == 1
        assert len(cloud.list_instances()) == 2


class TestAutoScaling:
    def test_resize_changes_type(self, cloud):
        instance = cloud.launch_instance()
        cloud.resize_instance(instance.instance_id, "m1.large")
        assert instance.instance_type.name == "m1.large"
        assert instance.instance_type.virtual_cores == 4

    def test_scale_up_path(self, cloud):
        assert cloud.scale_up_type("m1.small") == "m1.medium"
        assert cloud.scale_up_type("m1.large") == "m1.xlarge"
        assert cloud.scale_up_type("m1.xlarge") is None

    def test_scale_up_unknown_type(self, cloud):
        with pytest.raises(CloudError):
            cloud.scale_up_type("t2.nano")

    def test_add_storage(self, cloud):
        instance = cloud.launch_instance(storage_gb=5.0)
        cloud.add_storage(instance.instance_id, 10.0)
        assert instance.storage_gb == 15.0

    def test_add_nonpositive_storage_rejected(self, cloud):
        instance = cloud.launch_instance()
        with pytest.raises(CloudError):
            cloud.add_storage(instance.instance_id, 0.0)

    def test_resize_crashed_instance_rejected(self, cloud):
        instance = cloud.launch_instance()
        cloud.crash_instance(instance.instance_id)
        with pytest.raises(InstanceStateError):
            cloud.resize_instance(instance.instance_id, "m1.large")


class TestSnapshots:
    def test_snapshot_and_latest(self, cloud):
        instance = cloud.launch_instance()
        first = cloud.create_snapshot(instance.instance_id, 1000, payload="v1")
        second = cloud.create_snapshot(instance.instance_id, 2000, payload="v2")
        latest = cloud.latest_snapshot(instance.instance_id)
        assert latest is second
        assert latest.payload == "v2"
        assert first.snapshot_id != second.snapshot_id

    def test_no_snapshot_returns_none(self, cloud):
        instance = cloud.launch_instance()
        assert cloud.latest_snapshot(instance.instance_id) is None

    def test_negative_snapshot_size_rejected(self, cloud):
        instance = cloud.launch_instance()
        with pytest.raises(CloudError):
            cloud.create_snapshot(instance.instance_id, -1)

    def test_restore_duration_grows_with_size(self, cloud):
        instance = cloud.launch_instance()
        small = cloud.create_snapshot(instance.instance_id, 1000)
        large = cloud.create_snapshot(instance.instance_id, 10**9)
        assert cloud.restore_duration_s(large) > cloud.restore_duration_s(small)


class TestCloudWatch:
    def test_running_instance_responsive(self, cloud):
        instance = cloud.launch_instance()
        assert cloud.cloudwatch.is_responsive(instance.instance_id)

    def test_crashed_instance_unresponsive(self, cloud):
        instance = cloud.launch_instance()
        cloud.crash_instance(instance.instance_id)
        assert not cloud.cloudwatch.is_responsive(instance.instance_id)

    def test_metrics_expose_gauges(self, cloud):
        instance = cloud.launch_instance(storage_gb=10.0)
        instance.cpu_utilization = 0.75
        instance.storage_used_gb = 4.0
        metrics = cloud.cloudwatch.metrics(instance.instance_id)
        assert metrics["cpu_utilization"] == 0.75
        assert metrics["free_storage_gb"] == pytest.approx(6.0)


class TestBilling:
    def test_pay_as_you_go_accrues(self, cloud):
        instance = cloud.launch_instance()
        charge = cloud.bill(instance.instance_id, 10.0)
        assert charge == pytest.approx(INSTANCE_TYPES["m1.small"].hourly_cost_usd * 10)
        assert instance.accumulated_cost_usd == pytest.approx(charge)

    def test_larger_instances_cost_more(self, cloud):
        small = cloud.launch_instance("m1.small")
        large = cloud.launch_instance("m1.large")
        assert cloud.bill(large.instance_id, 1.0) > cloud.bill(small.instance_id, 1.0)

    def test_negative_hours_rejected(self, cloud):
        instance = cloud.launch_instance()
        with pytest.raises(CloudError):
            cloud.bill(instance.instance_id, -1.0)


class TestFailureInjector:
    def test_crash_specific_instance(self, cloud):
        instance = cloud.launch_instance()
        injector = FailureInjector(cloud)
        injector.crash(instance.instance_id)
        assert instance.state is InstanceState.CRASHED
        assert cloud.network.is_partitioned(instance.instance_id)
        assert injector.crashed == [instance.instance_id]

    def test_crash_random_is_deterministic(self):
        def run(seed):
            provider = CloudProvider(SimNetwork())
            ids = [provider.launch_instance().instance_id for _ in range(5)]
            return FailureInjector(provider, seed=seed).crash_random(candidates=ids)

        assert run(42) == run(42)

    def test_crash_random_respects_candidates(self, cloud):
        keep = cloud.launch_instance().instance_id
        target = cloud.launch_instance().instance_id
        victim = FailureInjector(cloud, seed=1).crash_random(candidates=[target])
        assert victim == target
        assert cloud.describe_instance(keep).state is InstanceState.RUNNING

    def test_crash_random_with_nothing_running(self, cloud):
        assert FailureInjector(cloud).crash_random() is None
