"""Tests for the simulated clock and duration composition helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimClock, parallel_duration, serial_duration


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_cannot_start_negative(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_advance_by_zero_is_allowed(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(SimulationError):
            clock.advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_present_is_noop(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(4.0)
        with pytest.raises(SimulationError):
            clock.advance_to(3.9)

    def test_repr_mentions_time(self):
        assert "1.5" in repr(SimClock(1.5))


class TestDurationComposition:
    def test_serial_sums(self):
        assert serial_duration(1.0, 2.0, 3.0) == 6.0

    def test_serial_empty_is_zero(self):
        assert serial_duration() == 0.0

    def test_serial_rejects_negative(self):
        with pytest.raises(SimulationError):
            serial_duration(1.0, -2.0)

    def test_parallel_takes_max(self):
        assert parallel_duration(1.0, 5.0, 3.0) == 5.0

    def test_parallel_empty_is_zero(self):
        assert parallel_duration() == 0.0

    def test_parallel_rejects_negative(self):
        with pytest.raises(SimulationError):
            parallel_duration(-1.0)

    def test_fanout_then_merge_composes(self):
        # A query that scans on three peers in parallel then merges serially.
        scan = parallel_duration(0.2, 0.5, 0.3)
        total = serial_duration(scan, 0.1)
        assert total == pytest.approx(0.6)
