"""Tests for the deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop() for _ in range(3)] == [
            (1.0, "a"),
            (2.0, "b"),
            (3.0, "c"),
        ]

    def test_ties_break_on_insertion_order(self):
        queue = EventQueue()
        for payload in ("first", "second", "third"):
            queue.push(5.0, payload)
        assert [queue.pop()[1] for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_pop_until_drains_inclusive(self):
        queue = EventQueue()
        for when in (1.0, 2.0, 3.0, 4.0):
            queue.push(when, when)
        assert [when for when, _ in queue.pop_until(3.0)] == [1.0, 2.0, 3.0]
        assert len(queue) == 1


class TestEdges:
    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(2.5, "x")
        assert queue.peek_time() == 2.5
        assert len(queue) == 1
        assert queue

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, "x")


class TestRun:
    def test_dispatches_callables_in_order(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, lambda when: seen.append(("b", when)))
        queue.push(1.0, lambda when: seen.append(("a", when)))
        assert queue.run() == 2
        assert seen == [("a", 1.0), ("b", 2.0)]
        assert not queue

    def test_handlers_can_push_further_events(self):
        queue = EventQueue()
        ticks = []

        def tick(when):
            ticks.append(when)
            if when < 3.0:
                queue.push(when + 1.0, tick)

        queue.push(1.0, tick)
        assert queue.run() == 3
        assert ticks == [1.0, 2.0, 3.0]

    def test_until_leaves_later_events_queued(self):
        queue = EventQueue()
        seen = []
        for when in (1.0, 2.0, 3.0):
            queue.push(when, lambda when: seen.append(when))
        assert queue.run(until=2.0) == 2
        assert seen == [1.0, 2.0]
        assert queue.peek_time() == 3.0

    def test_non_callable_payloads_are_dropped_but_counted(self):
        queue = EventQueue()
        queue.push(1.0, "data")
        queue.push(2.0, ("more", "data"))
        assert queue.run() == 2
        assert not queue

    def test_run_on_empty_queue_is_a_no_op(self):
        assert EventQueue().run() == 0
