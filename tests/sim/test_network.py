"""Tests for the simulated network fabric."""

import pytest

from repro.errors import NetworkError
from repro.sim import NetworkConfig, SimNetwork


@pytest.fixture
def net():
    network = SimNetwork()
    network.add_host("a")
    network.add_host("b")
    network.add_host("c")
    return network


class TestHostManagement:
    def test_add_and_query_host(self, net):
        assert net.has_host("a")
        assert not net.has_host("zzz")

    def test_duplicate_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_remove_host(self, net):
        net.remove_host("a")
        assert not net.has_host("a")

    def test_remove_unknown_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.remove_host("zzz")

    def test_hosts_returns_copy(self, net):
        hosts = net.hosts
        hosts.add("evil")
        assert not net.has_host("evil")


class TestTransferPricing:
    def test_transfer_duration_formula(self, net):
        cfg = net.config
        duration = net.transfer("a", "b", 1_000_000)
        expected = (
            cfg.latency_s
            + cfg.per_message_overhead_s
            + 1_000_000 / cfg.bandwidth_bytes_per_s
        )
        assert duration == pytest.approx(expected)

    def test_more_messages_cost_more(self, net):
        single = net.transfer("a", "b", 1000, messages=1)
        many = net.transfer("a", "b", 1000, messages=10)
        assert many > single

    def test_loopback_is_cheap(self, net):
        remote = net.transfer("a", "b", 10_000_000)
        local = net.transfer("a", "a", 10_000_000)
        assert local < remote

    def test_zero_bytes_costs_latency_only(self, net):
        duration = net.transfer("a", "b", 0)
        assert duration == pytest.approx(
            net.config.latency_s + net.config.per_message_overhead_s
        )

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(NetworkError):
            net.transfer("a", "b", -1)

    def test_zero_messages_rejected(self, net):
        with pytest.raises(NetworkError):
            net.transfer("a", "b", 10, messages=0)

    def test_unknown_hosts_rejected(self, net):
        with pytest.raises(NetworkError):
            net.transfer("a", "zzz", 10)
        with pytest.raises(NetworkError):
            net.transfer("zzz", "a", 10)

    def test_broadcast_is_parallel_max(self, net):
        single = net.transfer("a", "b", 5000)
        duration = net.broadcast("a", ["b", "c"], 5000)
        assert duration == pytest.approx(single)


class TestPartitions:
    def test_partitioned_host_unreachable(self, net):
        net.partition("b")
        with pytest.raises(NetworkError):
            net.transfer("a", "b", 10)
        with pytest.raises(NetworkError):
            net.transfer("b", "a", 10)

    def test_heal_restores_connectivity(self, net):
        net.partition("b")
        net.heal("b")
        assert net.transfer("a", "b", 10) > 0

    def test_other_links_unaffected(self, net):
        net.partition("b")
        assert net.transfer("a", "c", 10) > 0

    def test_is_partitioned(self, net):
        assert not net.is_partitioned("b")
        net.partition("b")
        assert net.is_partitioned("b")


class TestStatistics:
    def test_totals_accumulate(self, net):
        net.transfer("a", "b", 100)
        net.transfer("a", "c", 200)
        assert net.total.bytes == 300
        assert net.total.messages == 2

    def test_link_stats_directional(self, net):
        net.transfer("a", "b", 100)
        assert net.link_stats("a", "b").bytes == 100
        assert net.link_stats("b", "a").bytes == 0

    def test_host_stats_count_both_ends(self, net):
        net.transfer("a", "b", 100)
        assert net.host_stats("a").bytes == 100
        assert net.host_stats("b").bytes == 100
        assert net.host_stats("c").bytes == 0

    def test_loopback_counted_once_per_host(self, net):
        net.transfer("a", "a", 100)
        assert net.host_stats("a").bytes == 100
        assert net.total.bytes == 100

    def test_reset_stats(self, net):
        net.transfer("a", "b", 100)
        net.reset_stats()
        assert net.total.bytes == 0
        assert net.host_stats("a").bytes == 0
        assert net.link_stats("a", "b").bytes == 0


class TestNetworkConfig:
    def test_defaults_match_paper_environment(self):
        cfg = NetworkConfig()
        assert cfg.bandwidth_bytes_per_s == pytest.approx(100e6)

    def test_invalid_configs_rejected(self):
        with pytest.raises(NetworkError):
            NetworkConfig(latency_s=-1)
        with pytest.raises(NetworkError):
            NetworkConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(NetworkError):
            NetworkConfig(per_message_overhead_s=-0.1)
        with pytest.raises(NetworkError):
            NetworkConfig(loopback_bandwidth_bytes_per_s=0)
