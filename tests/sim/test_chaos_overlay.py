"""OverlayChaosHarness: script interpretation and census gating.

The harness is duck-typed (the sim layer never imports ``repro.baton``),
so these tests drive it with a minimal in-test fake overlay — which also
makes it easy to *misbehave* on demand and prove the census gate fires.
"""

import pytest

from repro.errors import ChaosEquivalenceError, MigrationCensusError
from repro.sim.chaos import OverlayChaosHarness, OverlayChaosReport


class FakeResult:
    def __init__(self, values, hops, node_ids):
        self.values = values
        self.hops = hops
        self.node_ids = node_ids


class FakeOverlay:
    """One-node 'overlay' storing a flat multiset; optionally buggy."""

    def __init__(self, lose_key=None, duplicate_key=None):
        self.entries = {}
        self.members = set()
        self.offline = set()
        self.lose_key = lose_key
        self.duplicate_key = duplicate_key
        self.fanout_reads = 0
        self.failover_reads = 0

    def insert(self, key, value):
        self.entries.setdefault(key, []).append(value)
        if key == self.lose_key:
            self.entries[key].pop()  # silently drops the entry
        if key == self.duplicate_key:
            self.entries[key].append(value)  # silently doubles it

    def delete(self, key, value):
        values = self.entries.get(key, [])
        if value in values:
            values.remove(value)
            if not values:
                del self.entries[key]

    def search(self, key, start_id=None):
        return FakeResult(
            values=list(self.entries.get(key, [])), hops=1, node_ids=["n0"]
        )

    def join(self, node_id):
        self.members.add(node_id)

    def leave(self, node_id):
        self.members.discard(node_id)

    def mark_offline(self, node_id):
        self.offline.add(node_id)

    def mark_online(self, node_id):
        self.offline.discard(node_id)

    def census(self):
        return {key: len(values) for key, values in self.entries.items()}

    def check_invariants(self, expected_census=None):
        pass


class FakeBalancer:
    def __init__(self):
        self.calls = 0

    def rebalance(self):
        self.calls += 1

        class Round:
            migrations = 1
            entries_moved = 3
            ratio_after = 1.5

        return Round()


class TestValidation:
    def test_check_every_must_be_positive(self):
        with pytest.raises(ChaosEquivalenceError):
            OverlayChaosHarness(FakeOverlay, check_every=0)

    def test_empty_script_rejected(self):
        with pytest.raises(ChaosEquivalenceError):
            OverlayChaosHarness(FakeOverlay).run([])

    def test_unknown_op_rejected(self):
        with pytest.raises(ChaosEquivalenceError):
            OverlayChaosHarness(FakeOverlay).run([("teleport", 0.5)])

    def test_rebalance_without_balancer_rejected(self):
        with pytest.raises(ChaosEquivalenceError):
            OverlayChaosHarness(FakeOverlay).run([("rebalance",)])


class TestCensusGate:
    def test_lost_entry_trips_the_gate(self):
        harness = OverlayChaosHarness(lambda: FakeOverlay(lose_key=0.5))
        with pytest.raises(MigrationCensusError, match="lost"):
            harness.run([("insert", 0.5, "v")])

    def test_duplicated_entry_trips_the_gate(self):
        harness = OverlayChaosHarness(
            lambda: FakeOverlay(duplicate_key=0.5)
        )
        with pytest.raises(MigrationCensusError, match="gained"):
            harness.run([("insert", 0.5, "v")])

    def test_check_every_defers_but_final_check_still_fires(self):
        harness = OverlayChaosHarness(
            lambda: FakeOverlay(lose_key=0.25), check_every=1000
        )
        with pytest.raises(MigrationCensusError):
            harness.run([("insert", 0.25, "v"), ("search", 0.25)])

    def test_census_counts_multiplicity(self):
        harness = OverlayChaosHarness(FakeOverlay)
        report = harness.run(
            [
                ("insert", 0.5, "a"),
                ("insert", 0.5, "b"),
                ("delete", 0.5, "a"),
            ]
        )
        assert report.census_checks == 4  # one per op + the final sweep


class TestBookkeeping:
    def test_report_counts_every_op_kind(self):
        harness = OverlayChaosHarness(
            FakeOverlay, balancer_factory=lambda overlay: FakeBalancer()
        )
        report = harness.run(
            [
                ("join", "n1"),
                ("insert", 0.5, "v"),
                ("search", 0.5),
                ("crash", "n1"),
                ("restore", "n1"),
                ("rebalance",),
                ("delete", 0.5, "v"),
                ("leave", "n1"),
            ]
        )
        assert report.operations == 8
        assert (report.joins, report.leaves) == (1, 1)
        assert (report.crashes, report.restores) == (1, 1)
        assert (report.inserts, report.deletes, report.searches) == (1, 1, 1)
        assert report.rebalances == 1
        assert report.migrations == 1
        assert report.entries_moved == 3
        assert report.ratio_samples == [1.5]

    def test_queue_depth_grows_then_drains_at_rebalance(self):
        harness = OverlayChaosHarness(
            FakeOverlay, balancer_factory=lambda overlay: FakeBalancer()
        )
        report = harness.run(
            [
                ("insert", 0.5, "v"),
                ("search", 0.5),
                ("search", 0.5),
                ("search", 0.5),
                ("rebalance",),
                ("search", 0.5),
            ]
        )
        # Everything is served by the fake's single node: the backlog
        # climbs 0, 1, 2 and resets to 0 after the rebalance drains it.
        assert report.search_queue_depths == [0, 1, 2, 0]
        latencies = report.search_latencies()
        assert latencies == [1.0, 2.0, 3.0, 1.0]

    def test_report_ratio_properties(self):
        report = OverlayChaosReport()
        assert report.peak_ratio == 1.0
        assert report.final_ratio == 1.0
        report.ratio_samples.extend([2.0, 1.2])
        assert report.peak_ratio == 2.0
        assert report.final_ratio == 1.2
