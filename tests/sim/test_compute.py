"""Tests for the shared per-node compute cost model."""

import pytest

from repro.errors import SimulationError
from repro.sim import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.sqlengine.executor import ExecStats


class TestSeconds:
    def test_zero_work_costs_nothing(self):
        assert DEFAULT_COMPUTE_MODEL.seconds(ExecStats()) == 0.0

    def test_components_additive(self):
        model = ComputeModel(
            scan_s_per_row=1.0,
            emit_s_per_row=2.0,
            join_s_per_row=3.0,
            index_probe_s=4.0,
        )
        stats = ExecStats(
            rows_scanned=1,
            rows_output=1,
            index_probes=1,
            join_build_rows=1,
            join_probe_rows=1,
        )
        assert model.seconds(stats) == pytest.approx(1 + 2 + 3 * 2 + 4)

    def test_compute_units_divide_time(self):
        stats = ExecStats(rows_scanned=1000)
        small = DEFAULT_COMPUTE_MODEL.seconds(stats, compute_units=1.0)
        large = DEFAULT_COMPUTE_MODEL.seconds(stats, compute_units=4.0)
        assert large == pytest.approx(small / 4)

    def test_nonpositive_units_rejected(self):
        with pytest.raises(SimulationError):
            DEFAULT_COMPUTE_MODEL.seconds(ExecStats(), compute_units=0.0)

    def test_rows_seconds(self):
        model = ComputeModel(emit_s_per_row=0.5)
        assert model.rows_seconds(10) == pytest.approx(5.0)
        with pytest.raises(SimulationError):
            model.rows_seconds(10, compute_units=-1)

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            ComputeModel(scan_s_per_row=-1.0)
