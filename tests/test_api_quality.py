"""Meta-tests: public-API hygiene across the whole library.

These are cheap guards a production repo keeps green: every module, public
class and public function carries a docstring, ``__all__`` exports resolve,
and the package imports cleanly without side effects.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_") or name.endswith("__main__")
]
MODULES = [name for name in MODULES if not name.endswith("__main__")]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports are documented at their home module
        if inspect.isclass(member) or inspect.isfunction(member):
            if not inspect.getdoc(member):
                undocumented.append(name)
    assert not undocumented, (
        f"{module_name} has undocumented public members: {undocumented}"
    )


def test_version_is_exposed():
    assert repro.__version__


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)
