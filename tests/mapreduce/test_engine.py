"""Tests for the MapReduce engine."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce import (
    Hdfs,
    InputSplit,
    MapReduceConfig,
    MapReduceEngine,
    MapReduceJob,
    SplitData,
)
from repro.sim import SimNetwork


def make_cluster(n=4, config=None):
    network = SimNetwork()
    hosts = [f"worker-{i}" for i in range(n)]
    for host in hosts:
        network.add_host(host)
    hdfs = Hdfs(network, block_size=10_000)
    for host in hosts:
        hdfs.register_datanode(host)
    engine = MapReduceEngine(hosts, network, hdfs, config)
    return engine, hosts


def word_splits(hosts, texts):
    splits = []
    for host, text in zip(hosts, texts):
        splits.append(
            InputSplit(
                host=host,
                fetch=lambda text=text: SplitData(records=text.split()),
            )
        )
    return splits


def word_count_job(hosts, texts, num_reducers=2, output_path=None):
    return MapReduceJob(
        name="wordcount",
        splits=word_splits(hosts, texts),
        map_fn=lambda word: [(word, 1)],
        reduce_fn=lambda word, counts: [(word, sum(counts))],
        num_reducers=num_reducers,
        output_path=output_path,
    )


class TestJobValidation:
    def test_empty_splits_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceJob("j", [], map_fn=lambda r: [])

    def test_zero_reducers_rejected(self):
        split = InputSplit("h", lambda: SplitData([]))
        with pytest.raises(MapReduceError):
            MapReduceJob("j", [split], map_fn=lambda r: [], num_reducers=0)

    def test_empty_cluster_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceEngine([], SimNetwork())


class TestWordCount:
    def test_correct_output(self):
        engine, hosts = make_cluster()
        job = word_count_job(hosts, ["a b a", "b c", "a", "c c c"])
        result = engine.run_job(job)
        counts = dict(result.records)
        assert counts == {"a": 3, "b": 2, "c": 4}

    def test_output_deterministic(self):
        outputs = []
        for _ in range(2):
            engine, hosts = make_cluster()
            job = word_count_job(hosts, ["a b a", "b c", "a", "c c c"])
            outputs.append(engine.run_job(job).records)
        assert outputs[0] == outputs[1]

    def test_task_counts(self):
        engine, hosts = make_cluster()
        result = engine.run_job(word_count_job(hosts, ["a", "b", "c", "d"]))
        assert result.map_tasks == 4
        assert result.reduce_tasks == 2

    def test_single_reducer(self):
        engine, hosts = make_cluster()
        job = word_count_job(hosts, ["a b", "c d", "e", "f"], num_reducers=1)
        result = engine.run_job(job)
        assert len(result.records) == 6
        # Sorted reduce keys -> deterministic global order.
        assert [word for word, _ in result.records] == sorted(
            word for word, _ in result.records
        )


class TestMapOnlyJobs:
    def test_map_only_skips_shuffle(self):
        engine, hosts = make_cluster()
        job = MapReduceJob(
            name="filter",
            splits=word_splits(hosts, ["1 22 333", "4444", "5", "66"]),
            map_fn=lambda word: [(None, word)] if len(word) > 1 else [],
        )
        result = engine.run_job(job)
        assert sorted(result.records) == ["22", "333", "4444", "66"]
        assert result.timings.shuffle_s == 0.0
        assert result.timings.reduce_s == 0.0
        assert result.bytes_shuffled == 0


class TestCostModel:
    def test_startup_cost_dominates_small_jobs(self):
        config = MapReduceConfig(job_startup_s=12.0)
        engine, hosts = make_cluster(config=config)
        result = engine.run_job(word_count_job(hosts, ["a", "b", "c", "d"]))
        assert result.timings.startup_s >= 12.0
        assert result.timings.startup_s > result.timings.map_s

    def test_shuffle_includes_notification_delay(self):
        config = MapReduceConfig(shuffle_notification_delay_s=1.0)
        engine, hosts = make_cluster(config=config)
        result = engine.run_job(word_count_job(hosts, ["a", "b", "c", "d"]))
        assert result.timings.shuffle_s >= 1.0

    def test_more_data_longer_map_phase(self):
        engine, hosts = make_cluster()
        small = engine.run_job(word_count_job(hosts, ["a"] * 4))
        engine2, hosts2 = make_cluster()
        big = engine2.run_job(word_count_job(hosts2, ["a " * 5000] * 4))
        assert big.timings.map_s > small.timings.map_s

    def test_local_seconds_charged_to_map(self):
        engine, hosts = make_cluster()
        splits = [
            InputSplit(hosts[0], lambda: SplitData(records=["a"], local_seconds=2.5))
        ]
        job = MapReduceJob("j", splits, map_fn=lambda r: [(r, 1)],
                           reduce_fn=lambda k, vs: [(k, len(vs))])
        result = engine.run_job(job)
        assert result.timings.map_s >= 2.5

    def test_parallel_hosts_take_max_not_sum(self):
        engine, hosts = make_cluster()
        splits = [
            InputSplit(host, lambda: SplitData(records=[], local_seconds=3.0))
            for host in hosts
        ]
        job = MapReduceJob("j", splits, map_fn=lambda r: [])
        result = engine.run_job(job)
        assert result.timings.map_s == pytest.approx(3.0)

    def test_two_splits_same_host_serialize(self):
        engine, hosts = make_cluster()
        splits = [
            InputSplit(hosts[0], lambda: SplitData(records=[], local_seconds=3.0))
            for _ in range(2)
        ]
        job = MapReduceJob("j", splits, map_fn=lambda r: [])
        result = engine.run_job(job)
        assert result.timings.map_s == pytest.approx(6.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceConfig(job_startup_s=-1)
        with pytest.raises(MapReduceError):
            MapReduceConfig(map_slots_per_host=0)


class TestHdfsOutput:
    def test_output_written_to_hdfs(self):
        engine, hosts = make_cluster()
        job = word_count_job(hosts, ["a b", "a", "b", "c"], output_path="/out")
        result = engine.run_job(job)
        assert engine.hdfs.exists("/out")
        assert sorted(engine.hdfs.file("/out").records) == sorted(result.records)
        assert result.timings.hdfs_write_s > 0

    def test_output_without_hdfs_rejected(self):
        network = SimNetwork()
        network.add_host("w")
        engine = MapReduceEngine(["w"], network, hdfs=None)
        job = MapReduceJob(
            "j",
            [InputSplit("w", lambda: SplitData(records=["a"]))],
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [k],
            output_path="/out",
        )
        with pytest.raises(MapReduceError):
            engine.run_job(job)


class TestJobChains:
    def test_chain_runs_sequentially(self):
        engine, hosts = make_cluster()
        first = word_count_job(hosts, ["a b", "a", "b", "c"], output_path="/stage1")

        def second_splits():
            def fetch():
                records, seconds = engine.hdfs.read("/stage1", hosts[0])
                return SplitData(records=records, local_seconds=seconds)

            return [InputSplit(hosts[0], fetch)]

        results = [engine.run_job(first)]
        second = MapReduceJob(
            name="total",
            splits=second_splits(),
            map_fn=lambda record: [("total", record[1])],
            reduce_fn=lambda key, values: [(key, sum(values))],
        )
        results.append(engine.run_job(second))
        assert results[1].records == [("total", 5)]
        total_duration = sum(result.duration_s for result in results)
        # Two jobs pay the startup cost twice.
        assert total_duration >= 2 * engine.config.job_startup_s
