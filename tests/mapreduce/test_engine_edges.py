"""Edge-case tests for the MapReduce engine."""

import pytest

from repro.mapreduce import (
    Hdfs,
    InputSplit,
    MapReduceEngine,
    MapReduceJob,
    SplitData,
)
from repro.mapreduce.engine import records_byte_size
from repro.sim import SimNetwork


def make_engine(n=3):
    network = SimNetwork()
    hosts = [f"w{i}" for i in range(n)]
    for host in hosts:
        network.add_host(host)
    hdfs = Hdfs(network, block_size=10_000)
    for host in hosts:
        hdfs.register_datanode(host)
    return MapReduceEngine(hosts, network, hdfs), hosts


class TestReducerEdges:
    def test_more_reducers_than_keys(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [InputSplit(hosts[0], lambda: SplitData(records=["a", "a"]))],
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [(k, len(vs))],
            num_reducers=16,
        )
        result = engine.run_job(job)
        assert result.records == [("a", 2)]
        assert result.reduce_tasks == 16

    def test_empty_input_with_reduce(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [InputSplit(hosts[0], lambda: SplitData(records=[]))],
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [(k, len(vs))],
        )
        result = engine.run_job(job)
        assert result.records == []
        assert result.bytes_shuffled == 0

    def test_map_emits_multiple_pairs(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [InputSplit(hosts[0], lambda: SplitData(records=["ab"]))],
            map_fn=lambda r: [(ch, 1) for ch in r],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
        )
        result = engine.run_job(job)
        assert sorted(result.records) == [("a", 1), ("b", 1)]

    def test_none_keys_shuffle(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [InputSplit(hosts[0], lambda: SplitData(records=[1, 2, 3]))],
            map_fn=lambda r: [(None, r)],
            reduce_fn=lambda k, vs: [sum(vs)],
            num_reducers=2,
        )
        result = engine.run_job(job)
        assert result.records == [6]

    def test_mixed_key_types_deterministic(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [InputSplit(hosts[0], lambda: SplitData(records=[1, "1", (1,)]))],
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [repr(k)],
            num_reducers=1,
        )
        result = engine.run_job(job)
        assert len(result.records) == 3


class TestRecordsByteSize:
    def test_tuples_and_scalars(self):
        assert records_byte_size([(1, "ab")]) == 8 + 6
        assert records_byte_size(["ab"]) == 6
        assert records_byte_size([]) == 0

    def test_none_values(self):
        assert records_byte_size([(None,)]) == 1


class TestShuffleAccounting:
    def test_bytes_shuffled_reported(self):
        engine, hosts = make_engine()
        job = MapReduceJob(
            "j",
            [
                InputSplit(host, lambda: SplitData(records=["k"] * 10))
                for host in hosts
            ],
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
        )
        result = engine.run_job(job)
        assert result.bytes_shuffled > 0
        # 30 pairs, each key "k" (5 bytes) + int value (8 bytes).
        assert result.bytes_shuffled == 30 * (5 + 8)
