"""Tests for the simulated HDFS."""

import pytest

from repro.errors import HdfsError
from repro.mapreduce import Hdfs
from repro.sim import SimNetwork


@pytest.fixture
def net():
    network = SimNetwork()
    for i in range(4):
        network.add_host(f"worker-{i}")
    return network


@pytest.fixture
def hdfs(net):
    fs = Hdfs(net, block_size=1000, replication=3)
    for i in range(4):
        fs.register_datanode(f"worker-{i}")
    return fs


class TestConfig:
    def test_defaults_match_paper(self, net):
        fs = Hdfs(net)
        assert fs.block_size == 256 * 1024 * 1024
        assert fs.replication == 3

    def test_invalid_params_rejected(self, net):
        with pytest.raises(HdfsError):
            Hdfs(net, block_size=0)
        with pytest.raises(HdfsError):
            Hdfs(net, replication=0)


class TestDatanodes:
    def test_register(self, hdfs):
        assert len(hdfs.datanodes) == 4

    def test_double_register_rejected(self, hdfs):
        with pytest.raises(HdfsError):
            hdfs.register_datanode("worker-0")

    def test_unknown_host_rejected(self, hdfs):
        with pytest.raises(HdfsError):
            hdfs.register_datanode("ghost")


class TestWrite:
    def test_write_and_read_roundtrip(self, hdfs):
        records = [(i, f"rec-{i}") for i in range(10)]
        hdfs.write("/out/part-0", records, 500, "worker-0")
        read, _ = hdfs.read("/out/part-0", "worker-1")
        assert read == records

    def test_write_splits_into_blocks(self, hdfs):
        hdfs.write("/big", list(range(100)), 3500, "worker-0")
        hdfs_file = hdfs.file("/big")
        assert len(hdfs_file.blocks) == 4  # ceil(3500 / 1000)
        assert hdfs_file.size_bytes == 3500
        assert hdfs_file.records == list(range(100))

    def test_blocks_replicated(self, hdfs):
        hdfs.write("/f", [1], 100, "worker-0")
        block = hdfs.file("/f").blocks[0]
        assert len(block.replica_hosts) == 3
        assert len(set(block.replica_hosts)) == 3

    def test_first_replica_on_writer(self, hdfs):
        hdfs.write("/f", [1], 100, "worker-2")
        assert hdfs.file("/f").blocks[0].replica_hosts[0] == "worker-2"

    def test_replication_capped_by_cluster_size(self, net):
        fs = Hdfs(net, replication=10)
        fs.register_datanode("worker-0")
        fs.register_datanode("worker-1")
        fs.write("/f", [1], 100, "worker-0")
        assert len(fs.file("/f").blocks[0].replica_hosts) == 2

    def test_write_once(self, hdfs):
        hdfs.write("/f", [1], 100, "worker-0")
        with pytest.raises(HdfsError):
            hdfs.write("/f", [2], 100, "worker-0")

    def test_write_without_datanodes_rejected(self, net):
        with pytest.raises(HdfsError):
            Hdfs(net).write("/f", [1], 100, "worker-0")

    def test_write_costs_network_time(self, hdfs):
        duration = hdfs.write("/f", [1], 10_000_000, "worker-0")
        assert duration > 0

    def test_empty_file(self, hdfs):
        hdfs.write("/empty", [], 0, "worker-0")
        records, _ = hdfs.read("/empty", "worker-1")
        assert records == []


class TestRead:
    def test_local_read_cheaper_than_remote(self, hdfs):
        hdfs.write("/f", list(range(100)), 10_000_000, "worker-0")
        _, local = hdfs.read("/f", "worker-0")
        # worker-3 holds no replica of a 1-block file written at worker-0
        replica_hosts = hdfs.file("/f").blocks[0].replica_hosts
        outsider = next(
            f"worker-{i}" for i in range(4) if f"worker-{i}" not in replica_hosts
        )
        _, remote = hdfs.read("/f", outsider)
        assert local < remote

    def test_read_missing_file(self, hdfs):
        with pytest.raises(HdfsError):
            hdfs.read("/nope", "worker-0")


class TestNamespace:
    def test_exists_and_delete(self, hdfs):
        hdfs.write("/f", [1], 10, "worker-0")
        assert hdfs.exists("/f")
        hdfs.delete("/f")
        assert not hdfs.exists("/f")

    def test_delete_missing(self, hdfs):
        with pytest.raises(HdfsError):
            hdfs.delete("/nope")

    def test_list_files_sorted(self, hdfs):
        hdfs.write("/b", [1], 10, "worker-0")
        hdfs.write("/a", [1], 10, "worker-0")
        assert hdfs.list_files() == ["/a", "/b"]
