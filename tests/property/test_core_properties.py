"""Property-based tests for core invariants: bloom filters, fingerprints,
snapshot diffs, histograms, makespan scheduling."""

from collections import Counter

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import build_filter, fingerprint_tuple, snapshot_diff
from repro.core.execution import makespan
from repro.core.histogram import Histogram


# ----------------------------------------------------------------------
# Bloom filters: never a false negative
# ----------------------------------------------------------------------
values = st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=200)


class TestBloomProperties:
    @given(values)
    def test_no_false_negatives(self, inserted):
        bloom = build_filter(inserted)
        for value in inserted:
            assert value in bloom

    @given(
        st.lists(
            st.integers(-10**6, 10**6),
            min_size=30,
            max_size=200,
            unique=True,
        )
    )
    def test_false_positive_rate_bounded(self, inserted):
        # Tiny filters (a handful of bits) legitimately have high FP rates;
        # the bound below is for reasonably sized filters.
        distinct = set(inserted)
        bloom = build_filter(distinct, bits_per_key=10, num_hashes=4)
        probes = range(2 * 10**6, 2 * 10**6 + 2000)
        false_positives = sum(1 for probe in probes if probe in bloom)
        # ~1% theoretical at 10 bits/key; allow generous slack.
        assert false_positives < 150

    @given(values)
    def test_size_proportional_to_keys(self, inserted):
        bloom = build_filter(inserted, bits_per_key=10)
        assert bloom.size_bytes == (len(inserted) * 10 + 7) // 8


# ----------------------------------------------------------------------
# Rabin fingerprints over tuples
# ----------------------------------------------------------------------
cells = st.one_of(
    st.none(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
tuples_ = st.lists(cells, max_size=6).map(tuple)


class TestFingerprintProperties:
    @given(tuples_)
    def test_deterministic(self, row):
        assert fingerprint_tuple(row) == fingerprint_tuple(row)

    @given(tuples_)
    def test_32_bits(self, row):
        assert 0 <= fingerprint_tuple(row) < (1 << 32)

    @given(tuples_, tuples_)
    def test_equal_rows_equal_fingerprints(self, a, b):
        if a == b and [type(x) for x in a] == [type(x) for x in b]:
            assert fingerprint_tuple(a) == fingerprint_tuple(b)


# ----------------------------------------------------------------------
# Snapshot differential: applying the delta reproduces the new snapshot
# ----------------------------------------------------------------------
snapshot_rows = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(["a", "b", "c"])),
    max_size=60,
)


class TestSnapshotDiffProperties:
    @given(snapshot_rows, snapshot_rows)
    def test_delta_transforms_old_into_new(self, old, new):
        inserted, deleted = snapshot_diff(old, new)
        result = Counter(old)
        for row in deleted:
            assert result[row] > 0, "delta deletes a row the old side lacks"
            result[row] -= 1
        result.update(inserted)
        assert +result == Counter(new)

    @given(snapshot_rows)
    def test_identical_snapshots_empty_delta(self, rows):
        assert snapshot_diff(rows, list(rows)) == ([], [])

    @given(snapshot_rows, snapshot_rows)
    def test_delta_is_minimal(self, old, new):
        inserted, deleted = snapshot_diff(old, new)
        overlap = Counter(old) & Counter(new)
        assert len(deleted) == len(old) - sum(overlap.values())
        assert len(inserted) == len(new) - sum(overlap.values())


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    max_size=300,
)


class TestHistogramProperties:
    @given(points, st.integers(1, 32))
    def test_counts_preserved(self, rows, buckets):
        histogram = Histogram.build(["x", "y"], rows, num_buckets=buckets)
        assert histogram.relation_size() == len(rows)

    @given(points)
    def test_region_count_bounded(self, rows):
        histogram = Histogram.build(["x", "y"], rows, num_buckets=8)
        count = histogram.region_count(lows={"x": 100.0}, highs={"x": 900.0})
        assert 0.0 <= count <= len(rows) + 1e-9

    @given(points)
    def test_full_region_counts_everything(self, rows):
        histogram = Histogram.build(["x", "y"], rows, num_buckets=8)
        assert histogram.region_count() == pytest.approx(len(rows))

    @given(points, st.floats(0, 1000), st.floats(0, 1000))
    def test_selectivity_in_unit_interval(self, rows, low, high):
        histogram = Histogram.build(["x", "y"], rows, num_buckets=8)
        value = histogram.selectivity(
            lows={"x": min(low, high)}, highs={"x": max(low, high)}
        )
        assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Makespan scheduling (the fetch-thread model)
# ----------------------------------------------------------------------
durations = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=40
)


class TestMakespanProperties:
    @given(durations, st.integers(1, 40))
    def test_bounds(self, tasks, workers):
        span = makespan(tasks, workers)
        if not tasks:
            assert span == 0.0
            return
        assert span >= max(tasks) - 1e-9
        assert span <= sum(tasks) + 1e-9

    @given(durations)
    def test_single_worker_is_serial(self, tasks):
        assert makespan(tasks, 1) == pytest.approx(sum(tasks))

    @given(durations)
    def test_enough_workers_is_parallel(self, tasks):
        span = makespan(tasks, max(1, len(tasks)))
        expected = max(tasks) if tasks else 0.0
        assert span == pytest.approx(expected)

    @given(durations, st.integers(1, 20))
    def test_more_workers_never_slower(self, tasks, workers):
        assert makespan(tasks, workers + 1) <= makespan(tasks, workers) + 1e-9
