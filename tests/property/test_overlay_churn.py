"""Property tests: census survives churn, migration, and replication.

The migration invariant — no index entry is ever lost or duplicated —
must hold not just for the scripted bench scenarios but for *any*
interleaving of joins, leaves, inserts, deletes, searches, and
load-driven rebalances.  Hypothesis drives random interleavings against
a :class:`ReplicatedOverlay` wrapped by a :class:`LoadBalancer`, with a
full key-space census (maintained independently from the tree) checked
after every single operation.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baton import (
    BatonOverlay,
    LoadBalancer,
    LoadBalancerConfig,
    ReplicatedOverlay,
    make_policy,
)

KEYS = [(index + 0.5) / 32 for index in range(32)]

# A churn script over a fixed key alphabet so deletes can hit inserted
# keys.  Leaves/searches pick by index into the live membership.
churn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(0, 10**6)),
        st.tuples(st.just("leave"), st.integers(0, 10**6)),
        st.tuples(st.just("insert"), st.integers(0, len(KEYS) - 1)),
        st.tuples(st.just("delete"), st.integers(0, len(KEYS) - 1)),
        st.tuples(st.just("search"), st.integers(0, len(KEYS) - 1)),
        st.tuples(st.just("rebalance"), st.integers(0, 10**6)),
    ),
    max_size=50,
)


def run_script(ops, read_policy=None):
    """Apply ``ops``, checking the census after every operation."""
    replicated = ReplicatedOverlay(
        BatonOverlay(), read_policy=read_policy
    )
    replicated.join("seed-node")
    balancer = LoadBalancer(
        replicated,
        LoadBalancerConfig(hot_multiple=1.2, min_mean_score=0.5),
    )
    expected = Counter()
    counters = {"inserted": 0, "deleted": 0, "migrated": 0}
    joined = 0
    for action, argument in ops:
        if action == "join":
            replicated.join(f"node-{joined}")
            joined += 1
        elif action == "leave" and len(replicated) > 1:
            nodes = replicated.overlay.nodes()
            replicated.leave(nodes[argument % len(nodes)].node_id)
        elif action == "insert":
            key = KEYS[argument]
            replicated.insert(key, f"item-{counters['inserted']}")
            expected[key] += 1
            counters["inserted"] += 1
        elif action == "delete":
            key = KEYS[argument]
            values = replicated.overlay.search(key).values
            if values:
                removed, _ = replicated.delete(key, values[0])
                assert removed
                expected[key] -= 1
                if not expected[key]:
                    del expected[key]
                counters["deleted"] += 1
        elif action == "search":
            key = KEYS[argument]
            result = replicated.search(key)
            assert len(result.values) == expected.get(key, 0)
        elif action == "rebalance":
            report = balancer.rebalance()
            counters["migrated"] += report.entries_moved
        assert replicated.census() == dict(expected), (
            f"census diverged after {action}"
        )
        replicated.check_invariants(expected_census=dict(expected))
    return replicated, expected, counters


class TestChurnCensus:
    @settings(deadline=None, max_examples=50)
    @given(churn_ops)
    def test_census_intact_after_every_op(self, ops):
        run_script(ops)

    @settings(deadline=None, max_examples=30)
    @given(churn_ops)
    def test_census_intact_with_read_fanout(self, ops):
        # Fan-out reads must be pure: serving from a replica holder can
        # never perturb the primary key space.
        run_script(ops, read_policy=make_policy("power-of-k", seed=11))

    @settings(deadline=None, max_examples=30)
    @given(churn_ops)
    def test_replicas_survive_any_single_failure(self, ops):
        replicated, expected, _ = run_script(ops)
        if len(replicated) < 2:
            return
        # With every node down one at a time, every stored key must
        # still be fully readable from some online copy.
        for node in replicated.overlay.nodes():
            replicated.mark_offline(node.node_id)
            for key, count in sorted(expected.items()):
                assert len(replicated.search(key).values) == count
            replicated.mark_online(node.node_id)

    @settings(deadline=None, max_examples=30)
    @given(churn_ops)
    def test_balancer_counters_match_reports(self, ops):
        _, _, counters = run_script(ops)
        assert counters["inserted"] >= counters["deleted"]
