"""Property: vector kernels are indistinguishable from per-row evaluation.

Random expression trees over random row batches — including NULLs, mixed
types, unresolvable columns, and unknown functions — must produce, for every
row, the same value or the same deferred error that ``Expr.evaluate``
produces for that row; and whole queries must return identical rows,
identical :class:`ExecStats`, and identical first errors in all three
``Database`` execution modes.  This is the load-bearing invariant behind
``execution_mode="vectorized"``: batching may only change *speed*, never a
single observable outcome.
"""

from dataclasses import asdict

from hypothesis import given, settings, strategies as st

from repro.errors import SqlExecutionError
from repro.sqlengine import Database, EXECUTION_MODES
from repro.sqlengine.compile import interpreted_evaluator
from repro.sqlengine.expr import RowLayout
from repro.sqlengine.vectorize import (
    compile_vector_evaluator,
    compile_vector_filter,
)
from tests.property.test_compile_equivalence import (
    LAYOUT,
    _assert_same_outcome,
    _outcome,
    expr_trees,
    rows,
)


def _columns(batch):
    if not batch:
        return [[] for _ in LAYOUT.columns]
    return [list(col) for col in zip(*batch)]


def _kind(exc):
    if isinstance(exc, SqlExecutionError):
        return "sql-error"
    if isinstance(exc, TypeError):
        return "type-error"
    return type(exc).__name__


def _check_value_kernel(expr, batch, sel):
    """The kernel's per-row outcome over ``sel`` matches Expr.evaluate."""
    kernel = compile_vector_evaluator(expr, LAYOUT)
    values, errs = kernel(_columns(batch), sel)
    assert len(values) == len(sel)
    err_rows = [row for row, _ in errs]
    assert err_rows == sorted(err_rows), "deferred errors must be row-sorted"
    first_err = {}
    for row, exc in errs:
        first_err.setdefault(row, exc)
    reference = interpreted_evaluator(expr, LAYOUT)
    for position, row_index in enumerate(sel):
        expected = _outcome(reference, batch[row_index])
        if row_index in first_err:
            exc = first_err[row_index]
            assert expected == (_kind(exc), str(exc)), (expected, exc)
        else:
            _assert_same_outcome(expected, ("value", values[position]))


class TestValueKernel:
    @settings(max_examples=250)
    @given(expr_trees, st.lists(rows, max_size=8))
    def test_dense_batch_matches_per_row_interpreted(self, expr, batch):
        _check_value_kernel(expr, batch, range(len(batch)))

    @settings(max_examples=150)
    @given(expr_trees, st.lists(rows, min_size=1, max_size=8), st.data())
    def test_sparse_selection_matches_per_row_interpreted(
        self, expr, batch, data
    ):
        # Progressive narrowing hands kernels strict subsets; rows outside
        # the selection must neither contribute values nor errors.
        sel = sorted(
            data.draw(st.sets(st.sampled_from(range(len(batch)))))
        )
        _check_value_kernel(expr, batch, sel)

    @given(expr_trees)
    def test_empty_batch_is_silent(self, expr):
        values, errs = compile_vector_evaluator(expr, LAYOUT)(
            _columns([]), range(0)
        )
        assert values == [] and errs == []


class TestFilterKernel:
    @settings(max_examples=250)
    @given(expr_trees, st.lists(rows, max_size=8))
    def test_passing_rows_and_first_error_match_reference(self, expr, batch):
        kernel = compile_vector_filter(expr, LAYOUT)
        passing, errs = kernel(_columns(batch), range(len(batch)))
        reference = interpreted_evaluator(expr, LAYOUT)
        outcomes = [_outcome(reference, row) for row in batch]
        erroring = [
            index for index, (kind, _) in enumerate(outcomes)
            if kind != "value"
        ]
        err_rows = [row for row, _ in errs]
        assert err_rows == sorted(err_rows)
        if errs:
            # The executor raises errs[0]; it must be the first row the
            # reference loop would have raised on, with the same error.
            row, exc = errs[0]
            assert erroring and row == erroring[0]
            assert outcomes[row] == (_kind(exc), str(exc))
        else:
            assert not erroring
            assert list(passing) == [
                index
                for index, (_, value) in enumerate(outcomes)
                if value is True
            ]


# ----------------------------------------------------------------------
# Whole-query equivalence across all three execution modes
# ----------------------------------------------------------------------
_CREATE = "CREATE TABLE t (a INTEGER, b FLOAT, c TEXT)"
_QUERIES = (
    "SELECT * FROM t",
    "SELECT a, b * 2 + 1, upper(c) FROM t",
    "SELECT a FROM t WHERE a > 3 AND (b < 10.0 OR c = 'red')",
    "SELECT a FROM t WHERE a = 5",
    "SELECT c, COUNT(*), SUM(a), AVG(b), MIN(a), MAX(b) FROM t GROUP BY c",
    "SELECT COUNT(DISTINCT c), SUM(b) FROM t",
    "SELECT DISTINCT c FROM t ORDER BY c LIMIT 3",
    "SELECT a, b FROM t ORDER BY c ASC, a DESC LIMIT 5",
    "SELECT l.a, r.b FROM t l, t r WHERE l.a = r.a AND l.b < r.b",
    "SELECT l.a, r.a FROM t l LEFT JOIN t r ON l.a = r.a ORDER BY l.a, r.a",
    # Error paths: every mode must raise the same first error.
    "SELECT a + c FROM t",
    "SELECT a FROM t WHERE b + c > 1",
    "SELECT SUM(c) FROM t",
    "SELECT a / 0 FROM t",
)

table_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        st.one_of(
            st.none(),
            st.floats(min_value=-20, max_value=20, allow_nan=False),
        ),
        st.one_of(st.none(), st.sampled_from(["red", "green", ""])),
    ),
    max_size=24,
)


def _run(mode, data_rows, sql):
    db = Database(execution_mode=mode)
    db.execute(_CREATE)
    db.execute("CREATE INDEX idx_a ON t (a)")
    if data_rows:
        db.table("t").insert_many(data_rows)
    try:
        result = db.execute(sql)
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc))
    return ("ok", result.rows, asdict(result.stats))


class TestDatabaseModes:
    @settings(max_examples=40, deadline=None)
    @given(table_rows, st.sampled_from(_QUERIES))
    def test_all_modes_agree_end_to_end(self, data_rows, sql):
        reference = _run("interpreted", data_rows, sql)
        for mode in EXECUTION_MODES[1:]:
            assert _run(mode, data_rows, sql) == reference, (mode, sql)
