"""Property-based tests for the relational engine's core invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Column, ColumnType, Database, TableSchema
from repro.sqlengine.indexes import OrderedIndex


# ----------------------------------------------------------------------
# OrderedIndex behaves like a sorted multimap
# ----------------------------------------------------------------------
keys = st.integers(min_value=-50, max_value=50)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "remove"]), keys),
    max_size=120,
)


class TestOrderedIndexModel:
    @given(operations)
    def test_matches_reference_multimap(self, ops):
        index = OrderedIndex("idx", "k")
        reference = {}
        next_row_id = 0
        for action, key in ops:
            if action == "insert":
                index.insert(key, next_row_id)
                reference.setdefault(key, []).append(next_row_id)
                next_row_id += 1
            else:
                row_ids = reference.get(key)
                if row_ids:
                    victim = row_ids.pop()
                    if not row_ids:
                        del reference[key]
                    index.remove(key, victim)
        for key in range(-50, 51):
            assert sorted(index.lookup(key)) == sorted(reference.get(key, []))
        assert len(index) == sum(len(v) for v in reference.values())
        assert list(index.keys()) == sorted(reference)

    @given(st.lists(keys, min_size=1, max_size=80), keys, keys)
    def test_range_scan_equals_filter(self, inserted, low, high):
        low, high = min(low, high), max(low, high)
        index = OrderedIndex("idx", "k")
        for row_id, key in enumerate(inserted):
            index.insert(key, row_id)
        expected = sorted(
            row_id for row_id, key in enumerate(inserted) if low <= key <= high
        )
        assert sorted(index.range_scan(low, high)) == expected

    @given(st.lists(keys, min_size=1, max_size=80))
    def test_min_max_bounds(self, inserted):
        index = OrderedIndex("idx", "k")
        for row_id, key in enumerate(inserted):
            index.insert(key, row_id)
        assert index.min_key() == min(inserted)
        assert index.max_key() == max(inserted)


# ----------------------------------------------------------------------
# SQL execution invariants over generated tables
# ----------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-1000, max_value=1000),
        st.one_of(st.none(), st.floats(min_value=-100, max_value=100,
                                       allow_nan=False)),
        st.sampled_from(["red", "green", "blue", None]),
    ),
    max_size=60,
)


def load(rows):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("a", ColumnType.INTEGER),
                Column("b", ColumnType.FLOAT),
                Column("c", ColumnType.TEXT),
            ],
        )
    )
    db.table("t").insert_many(rows)
    return db


class TestQueryInvariants:
    @given(rows_strategy)
    def test_count_star_equals_row_count(self, rows):
        db = load(rows)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(rows_strategy)
    def test_where_partitions_rows(self, rows):
        db = load(rows)
        positive = db.execute("SELECT COUNT(*) FROM t WHERE a > 0").scalar()
        non_positive = db.execute(
            "SELECT COUNT(*) FROM t WHERE a <= 0"
        ).scalar()
        # NULLs in `a` would break this, but `a` is never NULL here.
        assert positive + non_positive == len(rows)

    @given(rows_strategy)
    def test_sum_matches_python(self, rows):
        db = load(rows)
        expected_values = [b for _, b, _ in rows if b is not None]
        result = db.execute("SELECT SUM(b) FROM t").scalar()
        if not expected_values:
            assert result is None
        else:
            assert result == pytest.approx(sum(expected_values))

    @given(rows_strategy)
    def test_group_by_counts_match_counter(self, rows):
        db = load(rows)
        result = db.execute(
            "SELECT c, COUNT(*) FROM t WHERE c IS NOT NULL GROUP BY c"
        )
        expected = Counter(c for _, _, c in rows if c is not None)
        assert dict(zip(result.column("c"), result.column("COUNT(*)"))) == dict(
            expected
        )

    @given(rows_strategy)
    def test_order_by_sorts(self, rows):
        db = load(rows)
        values = db.execute(
            "SELECT a FROM t ORDER BY a"
        ).column("a")
        assert values == sorted(values)

    @given(rows_strategy)
    def test_distinct_removes_duplicates_only(self, rows):
        db = load(rows)
        distinct = db.execute("SELECT DISTINCT a FROM t").column("a")
        assert sorted(distinct) == sorted(set(r[0] for r in rows))

    @given(rows_strategy, st.integers(min_value=0, max_value=70))
    def test_limit_truncates(self, rows, limit):
        db = load(rows)
        result = db.execute(f"SELECT a FROM t LIMIT {limit}")
        assert len(result) == min(limit, len(rows))

    @given(rows_strategy)
    def test_index_agrees_with_scan(self, rows):
        with_index = load(rows)
        with_index.execute("CREATE INDEX idx_a ON t (a)")
        without_index = load(rows)
        sql = "SELECT a, b, c FROM t WHERE a BETWEEN -100 AND 100"
        indexed = with_index.execute(sql)
        scanned = without_index.execute(sql)
        assert sorted(indexed.rows, key=repr) == sorted(scanned.rows, key=repr)
        assert indexed.stats.index_probes == 1
        assert scanned.stats.index_probes == 0

    @given(rows_strategy)
    def test_delete_then_count(self, rows):
        db = load(rows)
        deleted = db.execute("DELETE FROM t WHERE a > 0").rowcount
        remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
        assert deleted + remaining == len(rows)
        assert db.execute("SELECT COUNT(*) FROM t WHERE a > 0").scalar() == 0


# ----------------------------------------------------------------------
# Three-valued logic
# ----------------------------------------------------------------------
tri = st.sampled_from([True, False, None])


class TestThreeValuedLogic:
    @given(tri, tri)
    def test_and_or_de_morgan(self, p, q):
        from repro.sqlengine.expr import BinaryOp, Literal, UnaryOp, RowLayout

        layout = RowLayout(["x"])
        row = (0,)

        def lit(value):
            return Literal(value)

        left = UnaryOp("not", BinaryOp("and", lit(p), lit(q))).evaluate(
            row, layout
        )
        right = BinaryOp(
            "or", UnaryOp("not", lit(p)), UnaryOp("not", lit(q))
        ).evaluate(row, layout)
        assert left == right

    @given(tri)
    def test_double_negation(self, p):
        from repro.sqlengine.expr import Literal, UnaryOp, RowLayout

        layout = RowLayout(["x"])
        value = UnaryOp("not", UnaryOp("not", Literal(p))).evaluate((0,), layout)
        assert value == p
