"""Grammar-based query fuzzing: generated SELECTs must execute cleanly.

The oracle here is weaker than equality (no second SQL engine to compare
against) but still catches real bugs: no internal errors, results are
subsets of the data, WHERE/LIMIT/DISTINCT algebraic identities hold, and
execution is deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Column, ColumnType, Database, TableSchema

COLUMNS = ["a", "b", "c"]


def make_db(rows):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                Column("a", ColumnType.INTEGER),
                Column("b", ColumnType.FLOAT),
                Column("c", ColumnType.TEXT),
            ],
        )
    )
    db.table("t").insert_many(rows)
    db.table("t").create_index("idx_a", "a")
    return db


rows_strategy = st.lists(
    st.tuples(
        st.integers(-20, 20),
        st.one_of(st.none(), st.floats(-5, 5, allow_nan=False)),
        st.sampled_from(["x", "y", "z", None]),
    ),
    max_size=40,
)

numbers = st.integers(-25, 25)


@st.composite
def predicates(draw, depth=2):
    """A random WHERE predicate over the columns of t."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(
            st.sampled_from(["cmp", "between", "in", "like", "isnull", "case"])
        )
        if kind == "cmp":
            column = draw(st.sampled_from(["a", "b"]))
            op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
            return f"{column} {op} {draw(numbers)}"
        if kind == "between":
            low, high = sorted([draw(numbers), draw(numbers)])
            return f"a BETWEEN {low} AND {high}"
        if kind == "in":
            values = draw(st.lists(numbers, min_size=1, max_size=4))
            return f"a IN ({', '.join(map(str, values))})"
        if kind == "like":
            pattern = draw(st.sampled_from(["x%", "%y", "_", "%"]))
            return f"c LIKE '{pattern}'"
        if kind == "isnull":
            column = draw(st.sampled_from(COLUMNS))
            negated = draw(st.booleans())
            return f"{column} IS {'NOT ' if negated else ''}NULL"
        return (
            f"CASE WHEN a > {draw(numbers)} THEN 1 ELSE 0 END = "
            f"{draw(st.sampled_from([0, 1]))}"
        )
    connective = draw(st.sampled_from(["AND", "OR"]))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    if draw(st.booleans()):
        return f"NOT ({left}) {connective} ({right})"
    return f"({left}) {connective} ({right})"


class TestFuzzedQueries:
    @settings(deadline=None, max_examples=120)
    @given(rows_strategy, predicates())
    def test_where_executes_and_partitions(self, rows, predicate):
        db = make_db(rows)
        matched = db.execute(f"SELECT a, b, c FROM t WHERE {predicate}")
        inverse = db.execute(f"SELECT a, b, c FROM t WHERE NOT ({predicate})")
        nulls = db.execute(
            f"SELECT a, b, c FROM t WHERE ({predicate}) IS NULL"
        )
        # Three-valued logic: TRUE + FALSE + UNKNOWN partitions the table...
        assert len(matched) + len(inverse) + len(nulls) == len(rows)
        # ...and every matched row is a real row.
        pool = list(rows)
        for row in matched.rows:
            assert row in pool
            pool.remove(row)

    @settings(deadline=None, max_examples=60)
    @given(rows_strategy, predicates(), st.integers(0, 10))
    def test_limit_prefix_identity(self, rows, predicate, limit):
        db = make_db(rows)
        full = db.execute(
            f"SELECT a FROM t WHERE {predicate} ORDER BY a, b, c"
        )
        truncated = db.execute(
            f"SELECT a FROM t WHERE {predicate} ORDER BY a, b, c LIMIT {limit}"
        )
        assert truncated.rows == full.rows[:limit]

    @settings(deadline=None, max_examples=60)
    @given(rows_strategy, predicates())
    def test_count_agrees_with_rows(self, rows, predicate):
        db = make_db(rows)
        counted = db.execute(f"SELECT COUNT(*) FROM t WHERE {predicate}")
        listed = db.execute(f"SELECT a FROM t WHERE {predicate}")
        assert counted.scalar() == len(listed)

    @settings(deadline=None, max_examples=60)
    @given(rows_strategy, predicates())
    def test_deterministic_across_identical_databases(self, rows, predicate):
        sql = f"SELECT a, b, c FROM t WHERE {predicate} ORDER BY a, b, c"
        first = make_db(rows).execute(sql)
        second = make_db(rows).execute(sql)
        assert first.rows == second.rows

    @settings(deadline=None, max_examples=60)
    @given(rows_strategy, predicates())
    def test_distinct_is_idempotent_subset(self, rows, predicate):
        db = make_db(rows)
        distinct = db.execute(f"SELECT DISTINCT a FROM t WHERE {predicate}")
        plain = db.execute(f"SELECT a FROM t WHERE {predicate}")
        assert set(distinct.rows) == set(plain.rows)
        assert len(distinct) == len(set(plain.rows))
