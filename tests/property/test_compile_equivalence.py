"""Property: compiled evaluators are indistinguishable from Expr.evaluate.

Random expression trees over random rows — including NULLs, mixed types,
unresolvable columns, and unknown functions — must produce the same value,
or fail with the same error, in both execution paths.  This is the
load-bearing invariant behind ``Database.use_compiled``: the compiler may
only change *speed*, never a single observable outcome.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import SqlExecutionError
from repro.sqlengine.compile import (
    compile_evaluator,
    compile_key,
    compile_predicate,
    interpreted_evaluator,
)
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    RowLayout,
    UnaryOp,
)

COLUMNS = ("a", "b", "c")
LAYOUT = RowLayout(COLUMNS)

_BINARY_OPS = (
    "and", "or", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%",
)

literals = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-20, max_value=20),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.sampled_from(["red", "green", "", "r%"]),
)

# "missing" is deliberate: the layout cannot resolve it, so the interpreted
# path raises per row and the compiler must fall back to identical behaviour.
leaves = st.one_of(
    literals.map(Literal),
    st.sampled_from(COLUMNS + ("missing",)).map(ColumnRef),
)


def _extend(children):
    whens = st.lists(
        st.tuples(children, children), min_size=1, max_size=2
    ).map(tuple)
    return st.one_of(
        st.builds(BinaryOp, st.sampled_from(_BINARY_OPS), children, children),
        st.builds(UnaryOp, st.sampled_from(("not", "-")), children),
        st.builds(Between, children, children, children, st.booleans()),
        st.builds(
            InList,
            children,
            st.lists(children, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(
            Like,
            children,
            st.sampled_from(("r%", "%e%", "__", "%")),
            st.booleans(),
        ),
        st.builds(IsNull, children, st.booleans()),
        st.builds(CaseWhen, whens, st.one_of(st.none(), children)),
        # "nope" is an unknown function: both paths must raise identically.
        st.builds(
            FuncCall,
            st.sampled_from(("upper", "lower", "abs", "length", "nope")),
            st.tuples(children),
        ),
    )


expr_trees = st.recursive(leaves, _extend, max_leaves=10)

rows = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    st.one_of(
        st.none(), st.floats(min_value=-50, max_value=50, allow_nan=False)
    ),
    st.one_of(st.none(), st.sampled_from(["red", "green", ""])),
)


def _outcome(evaluator, row):
    """What a caller observes: the value, or the error kind and message."""
    try:
        return ("value", evaluator(row))
    except SqlExecutionError as exc:
        return ("sql-error", str(exc))
    except TypeError as exc:
        # BETWEEN over incomparable types propagates the raw TypeError in
        # the interpreted path; the compiled path must do the same.
        return ("type-error", str(exc))


def _assert_same_outcome(expected, actual):
    assert expected[0] == actual[0], (expected, actual)
    if expected[0] == "value":
        assert type(expected[1]) is type(actual[1]), (expected, actual)
        assert expected[1] == actual[1] or (
            expected[1] != expected[1] and actual[1] != actual[1]
        ), (expected, actual)
    else:
        assert expected[1] == actual[1], (expected, actual)


class TestCompiledEquivalence:
    @settings(max_examples=300)
    @given(expr_trees, rows)
    def test_evaluator_matches_interpreted(self, expr, row):
        reference = interpreted_evaluator(expr, LAYOUT)
        compiled = compile_evaluator(expr, LAYOUT)
        _assert_same_outcome(_outcome(reference, row), _outcome(compiled, row))

    @given(expr_trees, rows)
    def test_predicate_matches_is_true(self, expr, row):
        predicate = compile_predicate(expr, LAYOUT)
        expected = _outcome(interpreted_evaluator(expr, LAYOUT), row)
        actual = _outcome(predicate, row)
        if expected[0] == "value":
            # SQL predicate semantics: NULL and False both reject the row.
            assert actual == ("value", expected[1] is True)
        else:
            _assert_same_outcome(expected, actual)

    @given(st.lists(expr_trees, min_size=1, max_size=3), rows)
    def test_key_matches_tuple_of_evaluates(self, exprs, row):
        key = compile_key(exprs, LAYOUT)
        expected_parts = [
            _outcome(interpreted_evaluator(expr, LAYOUT), row)
            for expr in exprs
        ]
        if all(kind == "value" for kind, _ in expected_parts):
            actual = key(row)
            assert isinstance(actual, tuple)
            assert len(actual) == len(exprs)
            for (_, expected_value), actual_value in zip(
                expected_parts, actual
            ):
                assert type(expected_value) is type(actual_value)
                assert expected_value == actual_value or (
                    expected_value != expected_value
                    and actual_value != actual_value
                )

    @given(expr_trees)
    def test_null_row_never_crashes_differently(self, expr):
        null_row = (None, None, None)
        reference = interpreted_evaluator(expr, LAYOUT)
        compiled = compile_evaluator(expr, LAYOUT)
        _assert_same_outcome(
            _outcome(reference, null_row), _outcome(compiled, null_row)
        )
