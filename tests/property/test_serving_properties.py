"""Property-based tests for the serving front door.

Three invariants, each over arbitrary arrival patterns:

* no (tenant, lane) queue ever exceeds the configured bound,
* after a drain the shed/missed counters account for every rejection
  exactly — ``offered == admitted + shed + deadline_missed`` and
  ``admitted == completed + failed``,
* over a continuously backlogged interval, dispatch shares converge to
  the tenants' weights (stride scheduling's defining property).
"""

from hypothesis import given, settings, strategies as st

from repro.core import LANE_BULK, LANE_INTERACTIVE, MetricsRegistry, ServingConfig
from repro.serving import ServingFrontDoor, ServingRequest, WeightedFairScheduler
from repro.sim import SimClock


class StubExecution:
    def __init__(self, latency_s):
        self.latency_s = latency_s


def build_front_door(config, latency_s):
    clock = SimClock()

    def run(request):
        clock.advance(latency_s)
        return StubExecution(latency_s)

    return ServingFrontDoor(
        clock, run, config=config, metrics=MetricsRegistry()
    )


arrivals = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),                   # tenant
        st.sampled_from([LANE_INTERACTIVE, LANE_BULK]),     # lane
        st.floats(min_value=0.0, max_value=2.0),            # inter-arrival gap
    ),
    min_size=1,
    max_size=60,
)

configs = st.builds(
    ServingConfig,
    workers=st.integers(min_value=1, max_value=4),
    queue_depth=st.integers(min_value=1, max_value=8),
    initial_service_estimate_s=st.floats(min_value=0.1, max_value=5.0),
)


class TestFrontDoorProperties:
    @settings(max_examples=60, deadline=None)
    @given(arrivals=arrivals, config=configs, latency=st.floats(0.1, 5.0))
    def test_queues_never_exceed_bound(self, arrivals, config, latency):
        door = build_front_door(config, latency)
        now = 0.0
        for tenant, lane, gap in arrivals:
            now += gap
            ticket = door.submit(
                ServingRequest(tenant=tenant, sql="SELECT 1", lane=lane),
                now=now,
            )
            assert ticket.queue_depth <= config.queue_depth
            for (t, l) in list(door.metrics.serving):
                assert door.admission.depth(t, l) <= config.queue_depth

    @settings(max_examples=60, deadline=None)
    @given(arrivals=arrivals, config=configs, latency=st.floats(0.1, 5.0))
    def test_shed_counters_account_exactly(self, arrivals, config, latency):
        door = build_front_door(config, latency)
        now = 0.0
        offered = {}
        rejected = {}
        for tenant, lane, gap in arrivals:
            now += gap
            key = (tenant, lane)
            offered[key] = offered.get(key, 0) + 1
            ticket = door.submit(
                ServingRequest(tenant=tenant, sql="SELECT 1", lane=lane),
                now=now,
            )
            if not ticket.admitted:
                rejected[key] = rejected.get(key, 0) + 1
        door.drain()
        assert door.admission.backlog() == 0
        for key, count in offered.items():
            stats = door.metrics.serving[key]
            assert stats.offered == count
            assert stats.offered == (
                stats.admitted + stats.shed + stats.deadline_missed
            )
            assert stats.admitted == stats.completed + stats.failed
            # Every up-front rejection is visible in shed/missed; queued
            # requests that expired add to deadline_missed on top.
            up_front = stats.shed + stats.deadline_missed
            assert up_front >= rejected.get(key, 0)
            assert stats.shed <= rejected.get(key, 0) + stats.deadline_missed

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0.25, max_value=8.0),
            min_size=2,
            max_size=3,
        ),
        rounds=st.integers(min_value=200, max_value=600),
    )
    def test_weighted_shares_converge(self, weights, rounds):
        scheduler = WeightedFairScheduler()
        for tenant, weight in weights.items():
            scheduler.set_weight(tenant, weight)
        candidates = sorted(weights)
        counts = {tenant: 0 for tenant in candidates}
        for _ in range(rounds):
            tenant = scheduler.next_tenant(LANE_INTERACTIVE, candidates)
            scheduler.charge(tenant, LANE_INTERACTIVE)
            counts[tenant] += 1
        total_weight = sum(weights.values())
        for tenant in candidates:
            expected = rounds * weights[tenant] / total_weight
            # Stride scheduling bounds each tenant's lag behind its ideal
            # share by one stride; give a little slack on top.
            assert abs(counts[tenant] - expected) <= (
                1.0 + total_weight / min(weights.values())
            )
