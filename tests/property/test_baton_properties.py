"""Property-based tests for the BATON overlay under churn."""

from hypothesis import given, settings, strategies as st

from repro.baton import BatonOverlay


# A churn script: joins, leaves (by index into live peers), item inserts.
churn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(0, 10**6)),
        st.tuples(st.just("leave"), st.integers(0, 10**6)),
        st.tuples(st.just("insert"), st.floats(min_value=0.0, max_value=0.999)),
    ),
    max_size=60,
)


def apply_ops(ops):
    overlay = BatonOverlay()
    overlay.join("seed-node")
    items = []
    joined = 0
    for action, argument in ops:
        if action == "join":
            overlay.join(f"node-{joined}")
            joined += 1
        elif action == "leave" and len(overlay) > 1:
            victims = overlay.nodes()
            victim = victims[argument % len(victims)]
            overlay.leave(victim.node_id)
        elif action == "insert":
            overlay.insert(argument, f"item-{len(items)}")
            items.append(argument)
    return overlay, items


class TestChurnInvariants:
    @settings(deadline=None, max_examples=60)
    @given(churn_ops)
    def test_structural_invariants_hold(self, ops):
        overlay, _ = apply_ops(ops)
        overlay.check_invariants()

    @settings(deadline=None, max_examples=60)
    @given(churn_ops)
    def test_no_items_lost(self, ops):
        overlay, items = apply_ops(ops)
        stored = sum(node.item_count for node in overlay.nodes())
        assert stored == len(items)

    @settings(deadline=None, max_examples=40)
    @given(churn_ops, st.floats(min_value=0.0, max_value=0.999))
    def test_every_key_routable_from_every_node(self, ops, key):
        overlay, _ = apply_ops(ops)
        for start in overlay.nodes():
            owner, _ = overlay.find_responsible(key, start.node_id)
            assert owner.r0.contains(key)

    @settings(deadline=None, max_examples=40)
    @given(churn_ops)
    def test_range_search_equals_filter(self, ops):
        overlay, items = apply_ops(ops)
        result = overlay.range_search(0.25, 0.75)
        expected = sorted(key for key in items if 0.25 <= key < 0.75)
        assert sorted(key for key, _ in result.values) == expected

    @settings(deadline=None, max_examples=40)
    @given(churn_ops)
    def test_exact_search_finds_all_copies(self, ops):
        overlay, items = apply_ops(ops)
        if not items:
            return
        target = items[0]
        expected = sum(1 for key in items if key == target)
        assert len(overlay.search(target).values) == expected


class TestStringKeyStability:
    @given(st.text(min_size=0, max_size=64))
    def test_string_to_key_in_domain(self, text):
        from repro.baton import string_to_key

        key = string_to_key(text)
        assert 0.0 <= key < 1.0

    @given(st.text(min_size=0, max_size=64))
    def test_string_to_key_deterministic(self, text):
        from repro.baton import string_to_key

        assert string_to_key(text) == string_to_key(text)
