"""Tests for distributed online aggregation."""

import math

import pytest

from repro.core import BestPeerNetwork
from repro.core.online_aggregation import (
    OnlineSumAggregator,
    online_aggregate,
)
from repro.errors import BestPeerError
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


class TestOnlineSumAggregator:
    def test_final_estimate_is_exact(self):
        aggregator = OnlineSumAggregator(4)
        partials = [10.0, 20.0, 30.0, 40.0]
        for partial in partials:
            estimate = aggregator.observe(partial)
        assert estimate.is_final
        assert estimate.estimate == pytest.approx(100.0)
        assert estimate.half_width == 0.0

    def test_early_estimate_scales_up(self):
        aggregator = OnlineSumAggregator(10)
        estimate = aggregator.observe(5.0)
        assert estimate.estimate == pytest.approx(50.0)
        assert estimate.peers_observed == 1
        assert not estimate.is_final

    def test_single_observation_has_infinite_interval(self):
        aggregator = OnlineSumAggregator(5)
        estimate = aggregator.observe(5.0)
        assert math.isinf(estimate.half_width)

    def test_interval_shrinks_with_observations(self):
        aggregator = OnlineSumAggregator(20)
        widths = []
        for i in range(19):
            estimate = aggregator.observe(10.0 + (i % 3))
            if estimate.peers_observed >= 2:
                widths.append(estimate.half_width)
        assert widths[-1] < widths[0]

    def test_uniform_partials_give_tight_interval(self):
        aggregator = OnlineSumAggregator(10)
        for _ in range(5):
            estimate = aggregator.observe(10.0)
        assert estimate.half_width == pytest.approx(0.0)
        assert estimate.estimate == pytest.approx(100.0)

    def test_none_counts_as_zero(self):
        aggregator = OnlineSumAggregator(2)
        aggregator.observe(None)
        estimate = aggregator.observe(10.0)
        assert estimate.estimate == pytest.approx(10.0)

    def test_bounds_bracket_estimate(self):
        aggregator = OnlineSumAggregator(10)
        aggregator.observe(5.0)
        estimate = aggregator.observe(15.0)
        assert estimate.low <= estimate.estimate <= estimate.high

    def test_over_reporting_rejected(self):
        aggregator = OnlineSumAggregator(1)
        aggregator.observe(1.0)
        with pytest.raises(BestPeerError):
            aggregator.observe(2.0)

    def test_reading_before_observations_rejected(self):
        with pytest.raises(BestPeerError):
            OnlineSumAggregator(3).current()

    def test_invalid_params(self):
        with pytest.raises(BestPeerError):
            OnlineSumAggregator(0)
        with pytest.raises(BestPeerError):
            OnlineSumAggregator(3, confidence=0.5)


@pytest.fixture(scope="module")
def network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=23)
    for index in range(6):
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", generator.generate_peer(index))
    return net


SQL = "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_discount < 0.05"


class TestOnlineAggregateOverNetwork:
    def test_final_estimate_matches_exact_answer(self, network):
        exact = network.execute(SQL, engine="basic").scalar()
        estimates = list(online_aggregate(network, SQL))
        assert len(estimates) == 6
        assert estimates[-1].is_final
        assert estimates[-1].estimate == pytest.approx(exact)

    def test_intermediate_estimates_converge(self, network):
        exact = network.execute(SQL, engine="basic").scalar()
        estimates = list(online_aggregate(network, SQL))
        errors = [abs(e.estimate - exact) / exact for e in estimates]
        # Uniform TPC-H data: even the first estimate is in the ballpark.
        assert errors[0] < 0.5
        assert errors[-1] == pytest.approx(0.0, abs=1e-12)

    def test_early_stop_on_target_error(self, network):
        estimates = list(
            online_aggregate(network, SQL, target_relative_error=0.2)
        )
        assert estimates[-1].relative_error <= 0.2
        # With uniform data the target is hit before every peer reports.
        assert len(estimates) < 6

    def test_deterministic_given_seed(self, network):
        a = [e.estimate for e in online_aggregate(network, SQL, seed=5)]
        b = [e.estimate for e in online_aggregate(network, SQL, seed=5)]
        assert a == b

    def test_joins_rejected(self, network):
        with pytest.raises(BestPeerError):
            list(
                online_aggregate(
                    network,
                    "SELECT SUM(l_extendedprice) FROM lineitem, orders "
                    "WHERE l_orderkey = o_orderkey",
                )
            )

    def test_group_by_rejected(self, network):
        with pytest.raises(BestPeerError):
            list(
                online_aggregate(
                    network,
                    "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
                    "GROUP BY l_returnflag",
                )
            )

    def test_non_sum_rejected(self, network):
        with pytest.raises(BestPeerError):
            list(online_aggregate(network, "SELECT MAX(l_quantity) FROM lineitem"))
