"""Tests for MHIST histograms and iDistance mapping."""

import math
import random

import pytest

from repro.core.histogram import (
    Bucket,
    Histogram,
    bucket_idistance_ranges,
    estimate_join_size,
    idistance_key,
)
from repro.errors import BestPeerError


def uniform_rows(n=1000, seed=1):
    rng = random.Random(seed)
    return [(rng.uniform(0, 100), rng.uniform(0, 50)) for _ in range(n)]


class TestBucket:
    def test_volume(self):
        bucket = Bucket((0.0, 0.0), (2.0, 3.0), 10)
        assert bucket.volume() == 6.0

    def test_overlap_full(self):
        bucket = Bucket((0.0,), (10.0,), 5)
        assert bucket.overlap_volume([None], [None]) == 10.0

    def test_overlap_partial(self):
        bucket = Bucket((0.0,), (10.0,), 5)
        assert bucket.overlap_volume([5.0], [None]) == 5.0
        assert bucket.overlap_volume([2.0], [4.0]) == 2.0

    def test_overlap_disjoint(self):
        bucket = Bucket((0.0,), (10.0,), 5)
        assert bucket.overlap_volume([20.0], [30.0]) == 0.0

    def test_center(self):
        assert Bucket((0.0, 2.0), (10.0, 4.0), 1).center() == (5.0, 3.0)


class TestBuild:
    def test_bucket_count_respected(self):
        histogram = Histogram.build(["a", "b"], uniform_rows(), num_buckets=16)
        assert len(histogram.buckets) == 16

    def test_counts_total_preserved(self):
        rows = uniform_rows(500)
        histogram = Histogram.build(["a", "b"], rows, num_buckets=8)
        assert histogram.relation_size() == 500

    def test_null_rows_ignored(self):
        rows = [(1.0, 2.0), (None, 3.0), (4.0, None)]
        histogram = Histogram.build(["a", "b"], rows, num_buckets=2)
        assert histogram.relation_size() == 1

    def test_empty_input(self):
        histogram = Histogram.build(["a"], [], num_buckets=4)
        assert histogram.relation_size() == 0
        assert histogram.selectivity() == 0.0

    def test_identical_points_stop_splitting(self):
        rows = [(5.0,)] * 100
        histogram = Histogram.build(["a"], rows, num_buckets=8)
        assert len(histogram.buckets) == 1
        assert histogram.relation_size() == 100

    def test_invalid_bucket_count(self):
        with pytest.raises(BestPeerError):
            Histogram.build(["a"], [(1.0,)], num_buckets=0)

    def test_no_columns_rejected(self):
        with pytest.raises(BestPeerError):
            Histogram([], [])

    def test_splits_highest_spread_dimension(self):
        # Dimension "a" spans [0, 100], "b" is constant; splits must cut "a".
        rows = [(float(i), 1.0) for i in range(100)]
        histogram = Histogram.build(["a", "b"], rows, num_buckets=4)
        lows_a = {bucket.lows[0] for bucket in histogram.buckets}
        assert len(lows_a) == 4  # four distinct sub-ranges along "a"


class TestEstimators:
    def test_relation_size(self):
        histogram = Histogram.build(["a", "b"], uniform_rows(800))
        assert histogram.relation_size() == 800

    def test_region_count_uniform_accuracy(self):
        rows = uniform_rows(4000)
        histogram = Histogram.build(["a", "b"], rows, num_buckets=32)
        # Query region: a in [0, 50] — about half the tuples.
        estimate = histogram.region_count(lows={"a": 0.0}, highs={"a": 50.0})
        actual = sum(1 for a, b in rows if a <= 50.0)
        assert estimate == pytest.approx(actual, rel=0.15)

    def test_selectivity_bounds(self):
        histogram = Histogram.build(["a", "b"], uniform_rows())
        assert 0.0 <= histogram.selectivity(lows={"a": 90.0}) <= 1.0
        assert histogram.selectivity() == pytest.approx(1.0)

    def test_join_size_estimation(self):
        left = Histogram.build(["k"], [(float(i % 100),) for i in range(1000)])
        right = Histogram.build(["k"], [(float(i % 100),) for i in range(500)])
        # Join on k over region width 100: expected |L||R|/W = 1000*500/100.
        estimate = estimate_join_size(left, right, query_widths=[100.0])
        assert estimate == pytest.approx(5000.0, rel=0.05)

    def test_join_size_invalid_width(self):
        histogram = Histogram.build(["k"], [(1.0,)])
        with pytest.raises(BestPeerError):
            estimate_join_size(histogram, histogram, query_widths=[0.0])


class TestIDistance:
    def test_key_is_partition_offset_plus_distance(self):
        refs = [(0.0, 0.0), (100.0, 100.0)]
        key = idistance_key((1.0, 0.0), refs, partition_width=1000.0)
        assert key == pytest.approx(1.0)
        key2 = idistance_key((99.0, 100.0), refs, partition_width=1000.0)
        assert key2 == pytest.approx(1000.0 + 1.0)

    def test_partitions_disjoint(self):
        refs = [(0.0,), (10.0,)]
        near_zero = idistance_key((2.0,), refs, partition_width=100.0)
        near_ten = idistance_key((9.0,), refs, partition_width=100.0)
        assert near_zero < 100.0 <= near_ten

    def test_requires_reference_points(self):
        with pytest.raises(BestPeerError):
            idistance_key((1.0,), [])

    def test_bucket_ranges(self):
        histogram = Histogram.build(["a", "b"], uniform_rows(200), num_buckets=4)
        refs = [(0.0, 0.0)]
        ranges = bucket_idistance_ranges(histogram, refs, partition_width=1e6)
        assert len(ranges) == 4
        for key, bucket in ranges:
            assert key == pytest.approx(math.dist(bucket.center(), refs[0]))
