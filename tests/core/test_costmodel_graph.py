"""Tests for the cost models (Eqs. 1-11) and processing graphs (Def. 3)."""

import pytest

from repro.core.config import PricingConfig
from repro.core.costmodel import (
    CostEstimate,
    CostParams,
    FeedbackCalibrator,
    LevelSpec,
    basic_cost,
    estimate,
    intermediate_sizes,
    mapreduce_cost,
    mapreduce_workloads,
    p2p_cost,
    p2p_workloads,
)
from repro.core.processing_graph import ProcessingGraph
from repro.errors import BestPeerError
from repro.hadoopdb import SmsPlanner
from repro.tpch import Q1, Q3, Q4, Q5, TPCH_SCHEMAS


def levels(*specs):
    return [
        LevelSpec(f"t{i}", size, selectivity, partitions)
        for i, (size, selectivity, partitions) in enumerate(specs)
    ]


class TestLevelSpec:
    def test_validation(self):
        with pytest.raises(BestPeerError):
            LevelSpec("t", -1, 0.5, 1)
        with pytest.raises(BestPeerError):
            LevelSpec("t", 10, 1.5, 1)
        with pytest.raises(BestPeerError):
            LevelSpec("t", 10, 0.5, 0)


class TestIntermediateSizes:
    def test_equation_5_product(self):
        specs = levels((100.0, 0.1, 2), (50.0, 0.5, 3))
        sizes = intermediate_sizes(specs)
        assert sizes[0] == pytest.approx(10.0)         # 100 * 0.1
        assert sizes[1] == pytest.approx(10.0 * 25.0)  # * 50 * 0.5


class TestP2pCost:
    def test_equation_6_workloads(self):
        specs = levels((100.0, 0.1, 2), (50.0, 0.5, 3))
        workloads = p2p_workloads(specs)
        assert workloads[0] == pytest.approx(2 * 10.0)
        assert workloads[1] == pytest.approx(3 * 250.0)

    def test_equation_8_total(self):
        params = CostParams(alpha=1.0, beta_bp=1.0)
        specs = levels((100.0, 0.1, 2), (50.0, 0.5, 3))
        assert p2p_cost(params, specs) == pytest.approx(2.0 * (20.0 + 750.0))

    def test_more_partitions_cost_more(self):
        params = CostParams()
        few = levels((1000.0, 0.5, 2))
        many = levels((1000.0, 0.5, 50))
        assert p2p_cost(params, many) > p2p_cost(params, few)

    def test_empty_levels_rejected(self):
        with pytest.raises(BestPeerError):
            p2p_cost(CostParams(), [])


class TestMapReduceCost:
    def test_equation_9_workloads(self):
        params = CostParams(phi=100.0)
        specs = levels((100.0, 0.1, 2), (50.0, 0.5, 3))
        workloads = mapreduce_workloads(params, specs)
        assert workloads[0] == pytest.approx(1.0 + 100.0 + 100.0)
        assert workloads[1] == pytest.approx(10.0 + 50.0 + 100.0)

    def test_startup_charged_per_job(self):
        params = CostParams(alpha=0.0, beta_mr=1.0, phi=100.0)
        single = levels((10.0, 1.0, 1))
        cost = mapreduce_cost(params, single)
        assert cost >= 100.0  # even one job pays the startup constant


class TestCrossover:
    """The planner's decision logic (§5.5): small queries -> P2P, deep
    joins over large tables -> MapReduce."""

    def test_small_query_prefers_p2p(self):
        params = CostParams()
        small = levels((1e4, 0.01, 5))
        result = estimate(params, small)
        assert result.cheaper_engine == "p2p"

    def test_deep_large_join_prefers_mapreduce(self):
        params = CostParams()
        deep = levels((1e6, 0.9, 50), (1e6, 0.9, 50), (1e6, 0.9, 50))
        result = estimate(params, deep)
        assert result.cheaper_engine == "mapreduce"

    def test_crossover_in_partition_count(self):
        """Fixing the query, growing the cluster flips the winner —
        exactly the Fig. 11 behaviour."""
        params = CostParams()

        def engines_at(n):
            specs = levels((1e6, 0.5, n), (1e6, 0.5, n))
            return estimate(params, specs).cheaper_engine

        assert engines_at(1) == "p2p"
        assert engines_at(200) == "mapreduce"


class TestBasicCost:
    def test_equation_2(self):
        params = CostParams(alpha=1.0, beta_bp=2.0, gamma=10.0, mu=100.0)
        # (1+2)*N + 10*N/100 with N = 200
        assert basic_cost(params, 200) == pytest.approx(600.0 + 20.0)

    def test_pricing_config_equation_1(self):
        pricing = PricingConfig(alpha=1.0, beta=2.0, gamma=0.5)
        assert pricing.basic_cost(100, 10.0) == pytest.approx(305.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(BestPeerError):
            basic_cost(CostParams(), -1)
        with pytest.raises(BestPeerError):
            PricingConfig().basic_cost(-1, 0)


class TestFeedbackCalibrator:
    def test_underestimate_raises_ratio(self):
        calibrator = FeedbackCalibrator(CostParams())
        before = calibrator.params.beta_bp
        calibrator.observe("p2p", predicted=1.0, measured=2.0)
        assert calibrator.params.beta_bp > before

    def test_overestimate_lowers_ratio(self):
        calibrator = FeedbackCalibrator(CostParams())
        before = calibrator.params.beta_mr
        calibrator.observe("mapreduce", predicted=2.0, measured=1.0)
        assert calibrator.params.beta_mr < before

    def test_accurate_prediction_stable(self):
        calibrator = FeedbackCalibrator(CostParams())
        before = calibrator.params
        calibrator.observe("p2p", predicted=1.0, measured=1.0)
        assert calibrator.params.beta_bp == before.beta_bp

    def test_unknown_engine_rejected(self):
        with pytest.raises(BestPeerError):
            FeedbackCalibrator(CostParams()).observe("quantum", 1.0, 2.0)

    def test_invalid_smoothing(self):
        with pytest.raises(BestPeerError):
            FeedbackCalibrator(CostParams(), smoothing=0.0)


class TestProcessingGraph:
    @pytest.fixture
    def planner(self):
        return SmsPlanner(TPCH_SCHEMAS)

    def test_q1_graph_no_joins(self, planner):
        graph = ProcessingGraph.from_plan(planner.compile(Q1()))
        assert graph.depth == 1  # only the scan level above the root
        assert not graph.join_levels
        assert not graph.has_groupby

    def test_q3_graph_one_join(self, planner):
        graph = ProcessingGraph.from_plan(planner.compile(Q3()))
        assert len(graph.join_levels) == 1
        assert not graph.has_groupby
        assert graph.depth == 2  # join level + scan level

    def test_q4_graph_join_plus_groupby(self, planner):
        graph = ProcessingGraph.from_plan(planner.compile(Q4()))
        # L = x + f(y) = 1 + 1
        assert len(graph.join_levels) == 1
        assert graph.has_groupby
        assert graph.level(1).operator == "groupby"

    def test_q5_graph_definition3(self, planner):
        graph = ProcessingGraph.from_plan(
            planner.compile(Q5()),
            partitions_per_table={"orders": 10, "lineitem": 10, "supplier": 10},
        )
        # x = 3 joins, y >= 1 -> L = 4 operator levels.
        assert len(graph.join_levels) == 3
        assert graph.has_groupby
        assert graph.level(0).operator == "root"
        join_level = graph.level(4)
        assert join_level.operator == "join"
        assert join_level.node_count == 10

    def test_unknown_level_rejected(self, planner):
        graph = ProcessingGraph.from_plan(planner.compile(Q1()))
        with pytest.raises(BestPeerError):
            graph.level(99)
