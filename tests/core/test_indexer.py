"""Tests for the BATON-backed data indexer."""

import pytest

from repro.baton import BatonOverlay, ReplicatedOverlay
from repro.core.indexer import DataIndexer, PeerLookup
from repro.errors import BestPeerError


@pytest.fixture
def overlay():
    replicated = ReplicatedOverlay(BatonOverlay())
    for i in range(8):
        replicated.join(f"peer-{i}")
    return replicated


@pytest.fixture
def indexer(overlay):
    return DataIndexer(overlay)


def publish_cluster(indexer):
    """Three peers host lineitem; two host orders; ranges on l_shipdate."""
    for peer, low, high in [
        ("peer-0", "1992-01-01", "1994-12-31"),
        ("peer-1", "1995-01-01", "1996-12-31"),
        ("peer-2", "1997-01-01", "1998-12-31"),
    ]:
        indexer.publish_table("lineitem", peer)
        indexer.publish_column("l_shipdate", peer, ["lineitem"])
        indexer.publish_range("lineitem", "l_shipdate", low, high, peer)
    for peer in ["peer-3", "peer-4"]:
        indexer.publish_table("orders", peer)
        indexer.publish_column("o_orderdate", peer, ["orders"])


class TestTableIndex:
    def test_publish_and_lookup(self, indexer):
        publish_cluster(indexer)
        peers, _, _ = indexer.peers_for_table("lineitem")
        assert peers == {"peer-0", "peer-1", "peer-2"}

    def test_missing_table_empty(self, indexer):
        peers, _, _ = indexer.peers_for_table("widgets")
        assert peers == set()

    def test_tables_are_separate_keys(self, indexer):
        publish_cluster(indexer)
        peers, _, _ = indexer.peers_for_table("orders")
        assert peers == {"peer-3", "peer-4"}


class TestColumnIndex:
    def test_lookup_by_column(self, indexer):
        publish_cluster(indexer)
        peers, _, _ = indexer.peers_for_column("l_shipdate")
        assert peers == {"peer-0", "peer-1", "peer-2"}

    def test_lookup_filtered_by_table(self, indexer):
        publish_cluster(indexer)
        indexer.publish_column("l_shipdate", "peer-5", ["other_table"])
        peers, _, _ = indexer.peers_for_column("l_shipdate", table="lineitem")
        assert "peer-5" not in peers


class TestRangeIndex:
    def test_range_lookup_prunes_peers(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate("lineitem", "l_shipdate", low="1998-01-01")
        assert lookup.index_used == "range"
        assert lookup.peers == ["peer-2"]

    def test_range_overlap_includes_boundaries(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate(
            "lineitem", "l_shipdate", low="1994-12-31", high="1995-01-01"
        )
        assert set(lookup.peers) == {"peer-0", "peer-1"}

    def test_inverted_bounds_rejected(self, indexer):
        with pytest.raises(BestPeerError):
            indexer.publish_range("t", "c", 10, 5, "peer-0")


class TestPriority:
    """Range > Column > Table (§4.3)."""

    def test_range_preferred_when_available(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate("lineitem", "l_shipdate", low="1995-06-01")
        assert lookup.index_used == "range"

    def test_column_when_no_range_index(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate("orders", "o_orderdate", low="1995-06-01")
        assert lookup.index_used == "column"
        assert set(lookup.peers) == {"peer-3", "peer-4"}

    def test_table_when_no_constraint(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate("lineitem")
        assert lookup.index_used == "table"
        assert len(lookup.peers) == 3

    def test_table_fallback_for_unindexed_column(self, indexer):
        publish_cluster(indexer)
        lookup = indexer.locate("lineitem", "l_comment")
        assert lookup.index_used == "table"


class TestCache:
    def test_second_lookup_hits_cache(self, indexer):
        publish_cluster(indexer)
        first = indexer.locate("lineitem")
        second = indexer.locate("lineitem")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.hops == 0

    def test_publish_invalidates_cache(self, indexer):
        publish_cluster(indexer)
        indexer.locate("lineitem")
        indexer.publish_table("lineitem", "peer-6")
        lookup = indexer.locate("lineitem")
        assert "peer-6" in lookup.peers

    def test_cache_disabled(self, overlay):
        indexer = DataIndexer(overlay, cache_enabled=False)
        publish_cluster(indexer)
        indexer.locate("lineitem")
        assert not indexer.locate("lineitem").cache_hit

    def test_clear_cache(self, indexer):
        publish_cluster(indexer)
        indexer.locate("lineitem")
        indexer.clear_cache()
        assert not indexer.locate("lineitem").cache_hit


class TestUnpublish:
    def test_departing_peer_entries_removed(self, indexer):
        publish_cluster(indexer)
        indexer.unpublish_all("peer-1")
        peers, _, _ = indexer.peers_for_table("lineitem")
        assert peers == {"peer-0", "peer-2"}
        lookup = indexer.locate("lineitem", "l_shipdate", low="1995-06-01",
                                high="1995-07-01")
        assert lookup.peers == []

    def test_other_peers_unaffected(self, indexer):
        publish_cluster(indexer)
        indexer.unpublish_all("peer-1")
        peers, _, _ = indexer.peers_for_table("orders")
        assert peers == {"peer-3", "peer-4"}
