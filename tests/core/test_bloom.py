"""Unit tests for the Bloom filter (complemented by property tests)."""

import pytest

from repro.core import BloomFilter, build_filter
from repro.errors import BestPeerError


class TestBloomFilter:
    def test_membership_after_add(self):
        bloom = BloomFilter(expected_keys=10)
        bloom.add("hello")
        assert "hello" in bloom
        assert len(bloom) == 1

    def test_update_batch(self):
        bloom = BloomFilter(expected_keys=10)
        bloom.update([1, 2, 3])
        assert all(value in bloom for value in (1, 2, 3))
        assert len(bloom) == 3

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_keys=10)
        assert 42 not in bloom

    def test_size_bytes(self):
        bloom = BloomFilter(expected_keys=100, bits_per_key=10)
        assert bloom.size_bytes == 125  # 1000 bits

    def test_mixed_types_do_not_collide_by_repr(self):
        bloom = BloomFilter(expected_keys=10)
        bloom.add(1)
        # "1" has a different repr than 1, so it is (almost surely) absent.
        assert "1" not in bloom

    def test_invalid_params(self):
        with pytest.raises(BestPeerError):
            BloomFilter(expected_keys=0)
        with pytest.raises(BestPeerError):
            BloomFilter(expected_keys=1, bits_per_key=0)
        with pytest.raises(BestPeerError):
            BloomFilter(expected_keys=1, num_hashes=0)

    def test_build_filter_sizes_for_input(self):
        bloom = build_filter(range(50), bits_per_key=8)
        assert bloom.num_bits == 400
        assert all(value in bloom for value in range(50))

    def test_build_filter_empty_input(self):
        bloom = build_filter([])
        assert bloom.size_bytes >= 1
        assert 1 not in bloom
