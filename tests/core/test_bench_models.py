"""Tests for the benchmark harness's load models and reporting.

These cover `repro.bench` as library code (the benchmarks themselves live
under benchmarks/ and assert the paper shapes).
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import (
    RoleSample,
    closed_loop_throughput,
    open_loop_sweep,
)


def sample(service_times, role="supplier"):
    return RoleSample(role=role, service_times=list(service_times))


class TestRoleSample:
    def test_mean_and_capacity(self):
        s = sample([0.5, 1.0])
        assert s.mean_service_time == pytest.approx(0.75)
        assert s.capacity_qps == pytest.approx(2.0 + 1.0)


class TestClosedLoop:
    def test_throughput_scales_with_clients(self):
        s = sample([0.1] * 10)
        assert closed_loop_throughput(s, 2) == pytest.approx(20.0)
        assert closed_loop_throughput(s, 5) == pytest.approx(50.0)

    def test_capped_at_capacity(self):
        s = sample([0.1] * 2)  # capacity 20 q/s
        assert closed_loop_throughput(s, 1000) == pytest.approx(20.0)


class TestOpenLoop:
    def test_below_saturation_served_fully(self):
        s = sample([0.1] * 4)  # capacity 40 q/s
        [point] = open_loop_sweep(s, [10.0])
        assert point.achieved_qps == pytest.approx(10.0)
        assert point.avg_latency_s < 0.2

    def test_past_saturation_caps_and_queues(self):
        s = sample([0.1] * 4)
        [point] = open_loop_sweep(s, [80.0], round_duration_s=100.0)
        assert point.achieved_qps == pytest.approx(40.0)
        assert point.avg_latency_s > 1.0

    def test_latency_monotone_in_load(self):
        s = sample([0.05, 0.1, 0.2, 0.1])
        points = open_loop_sweep(s, [5.0, 15.0, 30.0, 60.0])
        latencies = [p.avg_latency_s for p in points]
        assert latencies == sorted(latencies)

    def test_heterogeneous_peers_saturate_individually(self):
        # One slow peer saturates long before the aggregate capacity.
        s = sample([0.01, 1.0])
        [point] = open_loop_sweep(s, [10.0], round_duration_s=100.0)
        assert point.achieved_qps < 10.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["long-name", 123456.789]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # All rows padded to equal width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6]])
        assert "0.123" in text
        assert "12,345.6" in text


class TestSupplyChainValidation:
    def test_odd_peer_count_rejected(self):
        from repro.bench.workloads import SupplyChainBench

        with pytest.raises(ValueError):
            SupplyChainBench(5)
        with pytest.raises(ValueError):
            SupplyChainBench(0)
