"""Bootstrap daemon under concurrent and cascading crashes.

Algorithm 1 must keep the membership intact and the instance population
leak-free no matter how failures overlap: two peers dying in the same
epoch, a replacement instance dying before its first heartbeat, and
suspicion-threshold detection under transient unreachability.
"""

import pytest

from repro.core import BestPeerNetwork, DaemonConfig
from repro.sim import FaultPlan, InstanceState, Outage
from repro.sqlengine import Column, ColumnType, TableSchema


def schemas():
    return {
        "ledger": TableSchema(
            "ledger",
            [
                Column("entry_id", ColumnType.INTEGER),
                Column("amount", ColumnType.FLOAT),
            ],
            primary_key="entry_id",
        )
    }


def build_network(n=4, daemon_config=None):
    net = BestPeerNetwork(schemas(), daemon_config=daemon_config)
    for index in range(n):
        peer_id = f"co-{index}"
        net.add_peer(peer_id)
        net.load_peer(
            peer_id,
            {"ledger": [(index * 10 + j, float(j)) for j in range(5)]},
        )
    return net


def assert_no_instance_leaks(net):
    """Every peer runs on exactly one live instance; crashes are reclaimed."""
    assert net.cloud.list_instances(InstanceState.CRASHED) == []
    running = net.cloud.list_instances(InstanceState.RUNNING)
    assert len(running) == len(net.peers) + 2  # + the bootstrap HA pair
    hosts = {instance.instance_id for instance in running}
    for peer in net.peers.values():
        assert peer.host in hosts


class TestConcurrentCrashes:
    def test_two_crashes_in_one_epoch(self):
        net = build_network()
        total_before = net.execute("SELECT SUM(amount) FROM ledger").scalar()
        net.crash_peer("co-1")
        net.crash_peer("co-3")

        report = net.run_maintenance()
        assert {event.peer_id for event in report.failovers} == {
            "co-1", "co-3"
        }
        net.run_maintenance()  # releases the blacklisted instances
        assert_no_instance_leaks(net)
        assert net.bootstrap.peer_list() == [f"co-{i}" for i in range(4)]
        total_after = net.execute("SELECT SUM(amount) FROM ledger").scalar()
        assert total_after == pytest.approx(total_before)

    def test_crash_during_failover_of_another_peer(self):
        """A second peer dies while the first one's replacement boots."""
        net = build_network()
        net.crash_peer("co-0")
        report = net.run_maintenance()
        assert [event.peer_id for event in report.failovers] == ["co-0"]
        # Mid-recovery, before the next epoch releases co-0's old instance,
        # another peer goes down.
        net.crash_peer("co-2")
        report = net.run_maintenance()
        assert [event.peer_id for event in report.failovers] == ["co-2"]
        net.run_maintenance()
        assert_no_instance_leaks(net)

    def test_replacement_instance_crashes_immediately(self):
        """The fail-over target itself dies before serving anything."""
        net = build_network()
        net.crash_peer("co-1")
        net.run_maintenance()
        # The freshly launched replacement crashes too (cascading failure).
        net.crash_peer("co-1")
        report = net.run_maintenance()
        assert [event.peer_id for event in report.failovers] == ["co-1"]
        net.run_maintenance()
        assert_no_instance_leaks(net)
        total = net.execute("SELECT SUM(amount) FROM ledger").scalar()
        assert total is not None
        assert net.peers["co-1"].online


class TestSuspicionThreshold:
    def test_transient_outage_is_suspected_not_failed_over(self):
        config = DaemonConfig(suspicion_threshold=3)
        net = build_network(daemon_config=config)
        # co-1's host refuses deliveries for a long ordinal window, which
        # CloudWatch reads as missed heartbeats.
        host = net.peers["co-1"].host
        net.install_fault_plan(
            FaultPlan(outages=[Outage(host, start=0, end=10_000)])
        )
        first = net.run_maintenance()
        second = net.run_maintenance()
        assert first.suspected_peers == ["co-1"]
        assert second.suspected_peers == ["co-1"]
        assert first.failovers == [] and second.failovers == []
        # Outage ends; the next heartbeat clears the miss count.
        net.install_fault_plan(None)
        recovered = net.run_maintenance()
        assert recovered.suspected_peers == []
        assert recovered.failovers == []
        assert net.peers["co-1"].host == host  # never moved

    def test_persistent_misses_cross_threshold(self):
        config = DaemonConfig(suspicion_threshold=2)
        net = build_network(daemon_config=config)
        net.crash_peer("co-1")
        first = net.run_maintenance()
        assert first.failovers == []
        assert first.suspected_peers == ["co-1"]
        second = net.run_maintenance()
        assert [event.peer_id for event in second.failovers] == ["co-1"]
        net.run_maintenance()
        assert_no_instance_leaks(net)

    def test_default_threshold_fails_over_immediately(self):
        net = build_network()
        net.crash_peer("co-2")
        report = net.run_maintenance()
        assert [event.peer_id for event in report.failovers] == ["co-2"]

    def test_query_path_recovers_under_raised_threshold(self):
        """execute() keeps blocking across epochs until fail-over happens."""
        config = DaemonConfig(suspicion_threshold=2)
        net = build_network(daemon_config=config)
        baseline = net.execute("SELECT SUM(amount) FROM ledger").scalar()
        net.crash_peer("co-1")
        execution = net.execute("SELECT SUM(amount) FROM ledger")
        assert execution.scalar() == pytest.approx(baseline)
        assert net.peers["co-1"].online

    def test_invalid_threshold_rejected(self):
        from repro.errors import BestPeerError

        with pytest.raises(BestPeerError):
            DaemonConfig(suspicion_threshold=0)
