"""End-to-end tests for the BestPeer++ query engines.

Correctness oracle: a single local database holding the union of all peers'
partitions must agree with every engine on every benchmark query.
"""

import pytest

from repro.core import BestPeerNetwork
from repro.errors import BestPeerError
from repro.sqlengine import Database
from repro.tpch import (
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_PEERS = 4


@pytest.fixture(scope="module")
def network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=11)
    for index in range(NUM_PEERS):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    role = net.create_full_access_role()
    net.create_user("bench", "corp-0", role)
    return net


@pytest.fixture(scope="module")
def oracle():
    db = Database()
    create_tpch_tables(db)
    generator = TpchGenerator(seed=11)
    for index in range(NUM_PEERS):
        for table, rows in generator.generate_peer(index).items():
            if table in ("nation", "region") and index > 0:
                continue
            db.table(table).insert_many(rows)
    return db


def _sorted(rows):
    return sorted(rows, key=repr)


ENGINES = ["basic", "parallel", "mapreduce"]


class TestCorrectnessAcrossEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_q1(self, network, oracle, engine):
        execution = network.execute(Q1(), engine=engine)
        expected = oracle.execute(Q1())
        assert _sorted(execution.records) == _sorted(expected.rows)
        assert len(execution.records) > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_q2(self, network, oracle, engine):
        execution = network.execute(Q2(), engine=engine)
        assert execution.scalar() == pytest.approx(oracle.execute(Q2()).scalar())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_q3(self, network, oracle, engine):
        execution = network.execute(Q3(), engine=engine)
        expected = oracle.execute(Q3())
        assert _sorted(execution.records) == _sorted(expected.rows)
        assert len(execution.records) > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_q4(self, network, oracle, engine):
        execution = network.execute(Q4(), engine=engine)
        expected = oracle.execute(Q4())
        assert {row[0]: row[1] for row in execution.records} == pytest.approx(
            {row[0]: row[1] for row in expected.rows}
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_q5(self, network, oracle, engine):
        execution = network.execute(Q5(), engine=engine)
        expected = oracle.execute(Q5())
        assert len(execution.records) == len(expected.rows)
        for got, want in zip(execution.records, expected.rows):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1])

    def test_adaptive_matches_oracle_on_q5(self, network, oracle):
        execution = network.execute(Q5(), engine="adaptive")
        expected = oracle.execute(Q5())
        assert len(execution.records) == len(expected.rows)
        for got, want in zip(execution.records, expected.rows):
            assert got[1] == pytest.approx(want[1])


class TestEngineBehaviour:
    def test_q1_uses_fetch_and_process(self, network):
        execution = network.execute(Q1(), engine="basic")
        assert execution.strategy == "fetch-and-process"
        assert execution.peers_contacted == NUM_PEERS

    def test_access_control_masks_fetched_data(self, network, oracle):
        from repro.core import Role, rule, READ

        limited = Role(
            "narrow",
            [
                rule("lineitem.l_orderkey", [READ]),
                rule("lineitem.l_partkey", [READ]),
                rule("lineitem.l_suppkey", [READ]),
                rule("lineitem.l_linenumber", [READ]),
                # l_quantity readable only in [0, 10].
                rule("lineitem.l_quantity", [READ], (0.0, 10.0)),
                rule("lineitem.l_shipdate", [READ]),
                rule("lineitem.l_commitdate", [READ]),
            ],
        )
        network.create_user("restricted", "corp-0", limited)
        execution = network.execute(Q1(), engine="basic", user="restricted")
        quantities = execution.column("l_quantity")
        assert all(q is None or q <= 10.0 for q in quantities)
        assert any(q is None for q in quantities)  # something was masked

    def test_aggregates_respect_value_range_masking(self, network, oracle):
        """A restricted user's SUM must skip out-of-range (masked) values —
        the partial-aggregate pushdown may not bypass access control."""
        from repro.core import Role, rule, READ

        capped = Role(
            "capped",
            [rule("lineitem.l_quantity", [READ], (0.0, 25.0))],
        )
        network.create_user("capped_user", "corp-0", capped)
        sql = "SELECT SUM(l_quantity) FROM lineitem"
        execution = network.execute(sql, engine="basic", user="capped_user")
        expected = oracle.execute(
            "SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity <= 25.0"
        ).scalar()
        assert execution.scalar() == pytest.approx(expected)
        # The unrestricted benchmark user still gets the full sum (and the
        # fast pushdown path).
        full = network.execute(sql, engine="basic", user="bench")
        assert full.scalar() == pytest.approx(oracle.execute(sql).scalar())
        assert full.scalar() > execution.scalar()

    def test_mapreduce_engine_pays_startup(self, network):
        execution = network.execute(Q1(), engine="mapreduce")
        assert execution.latency_s >= network.mr_config.job_startup_s

    def test_basic_engine_much_faster_than_mr_on_q1(self, network):
        basic = network.execute(Q1(), engine="basic")
        mapreduce = network.execute(Q1(), engine="mapreduce")
        assert basic.latency_s < mapreduce.latency_s / 3

    def test_bloom_join_used_on_q3(self, network):
        execution = network.execute(Q3(), engine="basic")
        assert execution.bloom_joins == 1

    def test_bloom_join_reduces_bytes(self):
        generator = TpchGenerator(seed=11)

        def run(bloom_enabled):
            from repro.core import BestPeerConfig

            config = BestPeerConfig(bloom_join_enabled=bloom_enabled)
            net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES, config=config)
            for index in range(2):
                net.add_peer(f"p{index}")
                net.load_peer(f"p{index}", generator.generate_peer(index))
            # Highly selective on orders -> few join keys -> bloom prunes
            # most lineitem rows at the source.
            sql = (
                "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
                "WHERE o_orderkey = l_orderkey "
                "AND o_orderdate > DATE '1998-06-01'"
            )
            execution = net.execute(sql, engine="basic")
            return execution

        with_bloom = run(True)
        without_bloom = run(False)
        assert _sorted(with_bloom.records) == _sorted(without_bloom.records)
        assert with_bloom.bytes_transferred < without_bloom.bytes_transferred / 2

    def test_dollar_cost_positive(self, network):
        execution = network.execute(Q2(), engine="basic")
        assert execution.dollar_cost > 0

    def test_unknown_engine_rejected(self, network):
        with pytest.raises(BestPeerError):
            network.execute(Q1(), engine="quantum")

    def test_clock_advances_with_queries(self, network):
        before = network.clock.now
        network.execute(Q1(), engine="basic")
        assert network.clock.now > before


class TestSinglePeerOptimization:
    def test_whole_query_shipped_to_single_owner(self):
        net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
        generator = TpchGenerator(seed=5)
        # Only supplier-0 hosts part/partsupp; corp-1 hosts the rest.
        net.add_peer("supplier-0", tables=["part", "partsupp", "supplier"])
        net.add_peer("corp-1", tables=["lineitem", "orders", "customer"])
        data = generator.generate_peer(0)
        net.load_peer(
            "supplier-0",
            {t: data[t] for t in ("part", "partsupp", "supplier")},
        )
        net.load_peer(
            "corp-1", {t: data[t] for t in ("lineitem", "orders", "customer")}
        )
        execution = net.execute(Q4(), peer_id="corp-1", engine="basic")
        assert execution.strategy == "single-peer"
        assert execution.peers_contacted == 1
        assert len(execution.records) > 0


class TestAdaptiveDecision:
    def test_decision_recorded(self, network):
        network.execute(Q5(), engine="adaptive")
        adaptive = network._adaptive[sorted(network.peers)[0]]
        decision = adaptive.last_decision
        assert decision is not None
        assert decision.chosen_engine in ("p2p", "mapreduce")
        assert len(decision.levels) == 4  # 3 joins + groupby level

    def test_simple_query_always_p2p(self, network):
        execution = network.execute(Q1(), engine="adaptive")
        assert execution.strategy in ("fetch-and-process", "single-peer")
