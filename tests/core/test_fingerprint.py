"""Tests for 32-bit Rabin fingerprinting."""

from repro.core.fingerprint import (
    fingerprint_bytes,
    fingerprint_tuple,
)


class TestFingerprintBytes:
    def test_deterministic(self):
        assert fingerprint_bytes(b"hello") == fingerprint_bytes(b"hello")

    def test_fits_in_32_bits(self):
        for data in [b"", b"a", b"hello world" * 100]:
            assert 0 <= fingerprint_bytes(data) < (1 << 32)

    def test_different_inputs_differ(self):
        assert fingerprint_bytes(b"hello") != fingerprint_bytes(b"world")

    def test_sensitive_to_order(self):
        assert fingerprint_bytes(b"ab") != fingerprint_bytes(b"ba")

    def test_sensitive_to_length(self):
        assert fingerprint_bytes(b"a") != fingerprint_bytes(b"a\x00")

    def test_empty_input(self):
        assert fingerprint_bytes(b"") == 0

    def test_low_collision_rate_on_tuples(self):
        values = {fingerprint_bytes(f"row-{i}".encode()) for i in range(10000)}
        assert len(values) == 10000  # no collisions in a small sample


class TestFingerprintTuple:
    def test_deterministic(self):
        row = (1, "x", 2.5, None)
        assert fingerprint_tuple(row) == fingerprint_tuple(row)

    def test_type_tagging(self):
        # Same repr, different types must not collide.
        assert fingerprint_tuple((1, "2")) != fingerprint_tuple(("1", 2))

    def test_none_distinct_from_string_none(self):
        assert fingerprint_tuple((None,)) != fingerprint_tuple(("None",))

    def test_value_change_changes_fingerprint(self):
        assert fingerprint_tuple((1, "a")) != fingerprint_tuple((1, "b"))

    def test_column_order_matters(self):
        assert fingerprint_tuple((1, 2)) != fingerprint_tuple((2, 1))
