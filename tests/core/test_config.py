"""Validation tests for the configuration dataclasses."""

import pytest

from repro.core.config import BestPeerConfig, DaemonConfig, PricingConfig
from repro.errors import BestPeerError


class TestPricingConfig:
    def test_defaults_sane(self):
        pricing = PricingConfig()
        assert pricing.basic_cost(0, 0.0) == 0.0

    def test_equation_1(self):
        pricing = PricingConfig(alpha=2.0, beta=3.0, gamma=4.0)
        assert pricing.basic_cost(10, 2.0) == pytest.approx(50 + 8)

    def test_negative_ratios_rejected(self):
        with pytest.raises(BestPeerError):
            PricingConfig(alpha=-1)
        with pytest.raises(BestPeerError):
            PricingConfig(gamma=-0.1)


class TestBestPeerConfig:
    def test_defaults_match_benchmark_settings(self):
        config = BestPeerConfig()
        assert config.memtable_capacity_bytes == 100 * 1024 * 1024  # §6.1.2
        assert config.fetch_threads == 20  # §6.1.2
        assert config.bloom_join_enabled

    def test_invalid_values_rejected(self):
        with pytest.raises(BestPeerError):
            BestPeerConfig(memtable_capacity_bytes=0)
        with pytest.raises(BestPeerError):
            BestPeerConfig(fetch_threads=0)
        with pytest.raises(BestPeerError):
            BestPeerConfig(bloom_filter_bits_per_key=0)
        with pytest.raises(BestPeerError):
            BestPeerConfig(bloom_filter_hashes=0)


class TestDaemonConfig:
    def test_defaults(self):
        config = DaemonConfig()
        assert 0 < config.cpu_overload_threshold <= 1
        assert config.epoch_s > 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(BestPeerError):
            DaemonConfig(cpu_overload_threshold=0.0)
        with pytest.raises(BestPeerError):
            DaemonConfig(cpu_overload_threshold=1.5)

    def test_invalid_epoch_rejected(self):
        with pytest.raises(BestPeerError):
            DaemonConfig(epoch_s=0.0)
