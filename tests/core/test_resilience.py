"""Tests for retry policies, circuit breakers and the resilience context."""

import random

import pytest

from repro.core import (
    CircuitBreaker,
    MetricsRegistry,
    ResilienceContext,
    RetryPolicy,
)
from repro.errors import (
    BestPeerError,
    PeerUnavailableError,
    QueryRejectedError,
    RpcTimeoutError,
    TransientNetworkError,
)
from repro.sim import SimClock


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=2.0,
            max_backoff_s=100.0, jitter_fraction=0.0,
        )
        assert [policy.backoff_s(n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_backoff_caps_at_max(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, max_backoff_s=3.0, jitter_fraction=0.0
        )
        assert policy.backoff_s(10) == 3.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter_fraction=0.1)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.9 <= policy.backoff_s(1, rng) <= 1.1

    def test_validation(self):
        with pytest.raises(BestPeerError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(BestPeerError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(BestPeerError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(BestPeerError):
            RetryPolicy().backoff_s(0)
        with pytest.raises(BestPeerError):
            RetryPolicy().backoff_s(1, retry_after_s=-1.0)

    def test_retry_after_hint_raises_short_backoffs(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=2.0,
            max_backoff_s=100.0, jitter_fraction=0.0,
        )
        assert policy.backoff_s(1, retry_after_s=7.5) == 7.5
        # A hint below the computed backoff changes nothing.
        assert policy.backoff_s(4, retry_after_s=2.0) == 8.0

    def test_retry_after_hint_beats_the_backoff_cap(self):
        # The cap bounds the client's own choice, not the server's ask:
        # retrying before the server said "come back" just gets shed again.
        policy = RetryPolicy(
            base_backoff_s=1.0, max_backoff_s=3.0, jitter_fraction=0.0
        )
        assert policy.backoff_s(10, retry_after_s=12.0) == 12.0

    def test_jitter_on_retry_after_is_upward_only(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter_fraction=0.2)
        rng = random.Random(7)
        for _ in range(100):
            backoff = policy.backoff_s(1, rng, retry_after_s=5.0)
            assert 5.0 <= backoff <= 6.0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)  # third strike opens it
        assert breaker.is_open
        assert breaker.cooldown_remaining(5.0) == 5.0

    def test_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(0.0)
        assert breaker.is_open
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.cooldown_remaining(0.0) == 0.0

    def test_failed_probe_rearms_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(50.0)  # half-open probe failed
        assert breaker.cooldown_remaining(55.0) == 5.0

    def test_open_count_tracks_distinct_openings(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.open_count == 2


def make_context(**kwargs):
    clock = SimClock()
    defaults = dict(
        policy=RetryPolicy(
            max_attempts=4, base_backoff_s=0.1, jitter_fraction=0.0
        ),
        clock=clock,
        metrics=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return ResilienceContext(**defaults), clock


class FlakyPeer:
    """Fails with ``error`` for the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, error=TransientNetworkError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error("injected")
        return "ok"


class TestResilienceContextRetry:
    def test_transient_fault_retried_to_success(self):
        context, clock = make_context()
        context.begin_query()
        flaky = FlakyPeer(failures=2)
        assert context.call("p", flaky) == "ok"
        assert flaky.calls == 3
        assert context.session.retries == 2
        assert context.metrics.faults.retries == 2

    def test_backoff_advances_sim_clock(self):
        context, clock = make_context()
        context.begin_query()
        context.call("p", FlakyPeer(failures=1))
        assert clock.now == pytest.approx(0.1)
        assert context.session.advanced_s == pytest.approx(0.1)

    def test_exhausted_attempts_reraise(self):
        context, _ = make_context()
        context.begin_query()
        with pytest.raises(TransientNetworkError):
            context.call("p", FlakyPeer(failures=100))

    def test_breaker_opens_and_cooldown_charged(self):
        context, clock = make_context(
            policy=RetryPolicy(
                max_attempts=10, base_backoff_s=0.0, jitter_fraction=0.0
            ),
            breaker_failure_threshold=2,
            breaker_reset_timeout_s=5.0,
        )
        context.begin_query()
        context.call("p", FlakyPeer(failures=3))
        assert context.metrics.faults.circuit_opens == 1
        # The open breaker made at least one attempt wait out the cooldown.
        assert context.session.waited_s >= 5.0

    def test_non_transient_errors_pass_through(self):
        context, _ = make_context()
        context.begin_query()

        def reject():
            raise QueryRejectedError("snapshot conflict")

        with pytest.raises(QueryRejectedError):
            context.call("p", reject)

    def test_deadline_cuts_retries_short(self):
        context, _ = make_context(
            policy=RetryPolicy(
                max_attempts=50, base_backoff_s=10.0, jitter_fraction=0.0
            ),
            deadline_s=5.0,
        )
        context.begin_query()
        with pytest.raises(RpcTimeoutError):
            context.call("p", FlakyPeer(failures=100))


class TestResilienceContextFailover:
    def test_crashed_peer_triggers_failover_then_refetch(self):
        crashed = {"p": True}
        blocked = []

        def failover(peer_id):
            crashed[peer_id] = False
            blocked.append(peer_id)
            return 60.0

        context, _ = make_context(
            is_crashed=lambda peer_id: crashed.get(peer_id, False),
            failover=failover,
        )
        context.begin_query()
        flaky = FlakyPeer(failures=1, error=PeerUnavailableError)
        assert context.call("p", flaky) == "ok"
        assert blocked == ["p"]
        assert context.session.failovers == 1
        assert context.session.blocked_failover_s == 60.0

    def test_hard_error_without_crash_reraises(self):
        context, _ = make_context(
            is_crashed=lambda peer_id: False,
            failover=lambda peer_id: 0.0,
        )
        context.begin_query()
        with pytest.raises(PeerUnavailableError):
            context.call("p", FlakyPeer(failures=1, error=PeerUnavailableError))

    def test_ensure_available_recovers_before_fanout(self):
        crashed = {"p": True}

        def failover(peer_id):
            crashed[peer_id] = False
            return 30.0

        context, _ = make_context(
            is_crashed=lambda peer_id: crashed.get(peer_id, False),
            failover=failover,
        )
        context.begin_query()
        assert context.ensure_available("p") is True
        assert context.session.blocked_failover_s == 30.0
        # Already-healthy peers cost nothing.
        assert context.ensure_available("p") is True
        assert context.session.failovers == 1

    def test_ensure_available_without_callbacks(self):
        context, _ = make_context()
        assert context.ensure_available("p") is False


class TestHalfOpenRearmThroughCall:
    def test_failed_probe_recharges_cooldown_inside_call(self):
        """A probe that fails while the breaker is open re-arms the full
        cooldown (resilience.py's record_failure-while-open branch), and
        the context charges both waits to the session."""
        context, clock = make_context(
            breaker_failure_threshold=1,
            breaker_reset_timeout_s=10.0,
            policy=RetryPolicy(
                max_attempts=3, base_backoff_s=0.1, jitter_fraction=0.0
            ),
        )
        context.begin_query()
        peer = FlakyPeer(failures=2)
        assert context.call("p", peer) == "ok"
        assert peer.calls == 3
        breaker = context.breaker("p")
        # Re-arming is not a second opening; success closed it again.
        assert breaker.open_count == 1
        assert not breaker.is_open
        # Each failed attempt restarts a full 10s cooldown (the wait
        # tops up to opened_at + reset_timeout, absorbing the backoff):
        # the second full cooldown proves the failed probe re-armed the
        # first.
        assert clock.now == pytest.approx(20.0)
        assert context.session.waited_s == pytest.approx(20.0)

    def test_rearm_keeps_probe_cadence_at_full_cooldown(self):
        context, clock = make_context(
            breaker_failure_threshold=1,
            breaker_reset_timeout_s=10.0,
            policy=RetryPolicy(
                max_attempts=10, base_backoff_s=0.0, jitter_fraction=0.0
            ),
        )
        context.begin_query()
        probes = []
        peer = FlakyPeer(failures=3)

        def probed():
            probes.append(clock.now)
            return peer()

        assert context.call("p", probed) == "ok"
        # After the opening failure at t=0, every probe happens exactly
        # one full cooldown after the previous *failure*.
        assert probes == [
            pytest.approx(t) for t in (0.0, 10.0, 20.0, 30.0)
        ]


class TestRetryBudgetExhaustion:
    def test_budget_raises_out_of_call_with_session_accounting(self):
        context, clock = make_context(
            policy=RetryPolicy(
                max_attempts=50,
                base_backoff_s=1.0,
                backoff_multiplier=1.0,
                jitter_fraction=0.0,
                budget_s=3.0,
            ),
        )
        context.begin_query()
        always_failing = FlakyPeer(failures=10**9)
        with pytest.raises(TransientNetworkError):
            context.call("p", always_failing)
        # Three 1s backoffs fit the 3s budget; the fourth failure finds it
        # exhausted and re-raises instead of backing off again.
        assert always_failing.calls == 4
        assert context.session.retries == 3
        assert context.session.waited_s == pytest.approx(3.0)
        assert clock.now == pytest.approx(3.0)

    def test_attempt_cap_fires_before_budget_when_lower(self):
        context, _ = make_context(
            policy=RetryPolicy(
                max_attempts=2,
                base_backoff_s=1.0,
                backoff_multiplier=1.0,
                jitter_fraction=0.0,
                budget_s=100.0,
            ),
        )
        context.begin_query()
        always_failing = FlakyPeer(failures=10**9)
        with pytest.raises(TransientNetworkError):
            context.call("p", always_failing)
        assert always_failing.calls == 2
        assert context.session.retries == 1
