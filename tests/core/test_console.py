"""Tests for the administrator console."""

import pytest

from repro.console import Console, ConsoleError


def booted_console():
    console = Console()
    console.run_script(
        [
            "schema CREATE TABLE item (id INTEGER PRIMARY KEY, "
            "label TEXT, price FLOAT)",
            "network create",
            "peer add acme",
            "peer add globex",
            "load acme item 1,anvil,99.5;2,rope,5.0",
            "load globex item 10,tnt,250.0",
        ]
    )
    return console


class TestLifecycle:
    def test_full_setup_script(self):
        console = booted_console()
        assert len(console.network.peers) == 2

    def test_comments_and_blanks_ignored(self):
        console = Console()
        assert console.execute("") == ""
        assert console.execute("   # a comment") == ""

    def test_unknown_command(self):
        with pytest.raises(ConsoleError):
            Console().execute("frobnicate now")

    def test_network_before_schema_rejected(self):
        with pytest.raises(ConsoleError):
            Console().execute("network create")

    def test_commands_before_network_rejected(self):
        console = Console()
        with pytest.raises(ConsoleError):
            console.execute("peer add x")

    def test_double_network_create_rejected(self):
        console = booted_console()
        with pytest.raises(ConsoleError):
            console.execute("network create")

    def test_schema_requires_create_table(self):
        console = Console()
        with pytest.raises(ConsoleError):
            console.execute("schema SELECT 1 FROM t")


class TestPeerCommands:
    def test_peer_list(self):
        output = booted_console().execute("peer list")
        assert "acme" in output
        assert "globex" in output
        assert "m1.small" in output

    def test_peer_add_with_options(self):
        console = booted_console()
        output = console.execute("peer add initech type=m1.large tables=item")
        assert "initech" in output
        assert console.network.peers["initech"].instance.instance_type.name == (
            "m1.large"
        )

    def test_peer_depart(self):
        console = booted_console()
        console.execute("peer depart globex")
        assert "globex" not in console.network.peers

    def test_peer_crash_then_maintenance(self):
        console = booted_console()
        console.execute("peer crash acme")
        output = console.execute("maintenance")
        assert "failovers=1" in output


class TestLoadAndQuery:
    def test_inline_load_and_sql(self):
        console = booted_console()
        output = console.execute("sql SELECT COUNT(*) FROM item")
        assert "3" in output.splitlines()[1]

    def test_csv_load(self, tmp_path):
        console = booted_console()
        path = tmp_path / "items.csv"
        path.write_text("100,widget,1.5\n101,gadget,2.5\n")
        console.execute("peer add newco")
        console.execute(f"load newco item {path}")
        output = console.execute("sql SELECT COUNT(*) FROM item")
        assert "5" in output.splitlines()[1]

    def test_sql_with_engine_option(self):
        console = booted_console()
        output = console.execute("sql engine=mapreduce SELECT COUNT(*) FROM item")
        assert "mapreduce" in output

    def test_sql_output_truncated(self):
        console = booted_console()
        console.execute("peer add bulk")
        rows = ";".join(f"{1000 + i},x,1.0" for i in range(30))
        console.execute(f"load bulk item {rows}")
        output = console.execute("sql SELECT id FROM item")
        assert "more rows" in output

    def test_null_rendering(self):
        console = booted_console()
        console.execute("peer add nully")
        console.execute("load nully item 500,NULL,NULL")
        output = console.execute("sql SELECT label, price FROM item WHERE id = 500")
        assert "NULL | NULL" in output

    def test_load_unknown_table_rejected(self):
        console = booted_console()
        with pytest.raises(ConsoleError):
            console.execute("load acme widgets 1,2")


class TestRolesAndUsers:
    def test_full_role_and_user(self):
        console = booted_console()
        console.execute("role full analyst")
        console.execute("user create alice acme analyst")
        output = console.execute("sql user=alice SELECT label FROM item")
        assert "anvil" in output

    def test_range_restricted_role_masks_values(self):
        console = booted_console()
        console.run_script(
            [
                "role define sales item.id:r item.label:r item.price:rw:0..100",
                "user create bob acme sales",
            ]
        )
        output = console.execute(
            "sql user=bob SELECT label, price FROM item ORDER BY label"
        )
        assert "tnt | NULL" in output     # 250.0 is out of range
        assert "anvil | 99.5" in output

    def test_bad_rule_syntax(self):
        console = booted_console()
        with pytest.raises(ConsoleError):
            console.execute("role define broken item.price")
        with pytest.raises(ConsoleError):
            console.execute("role define broken item.price:x")
        with pytest.raises(ConsoleError):
            console.execute("role define broken item.price:r:5")

    def test_user_with_unknown_role(self):
        console = booted_console()
        with pytest.raises(ConsoleError):
            console.execute("user create eve acme ghost_role")


class TestOperationalCommands:
    def test_status(self):
        output = booted_console().execute("status")
        assert "peers: 2" in output
        assert "acme" in output

    def test_status_reports_fault_counters(self):
        console = booted_console()
        output = console.execute("status")
        assert "faults absorbed:" in output
        assert "retries=0" in output
        console.network.metrics.faults.retries = 3
        console.network.metrics.faults.failovers = 1
        output = console.execute("status")
        assert "retries=3" in output
        assert "failovers=1" in output

    def test_metrics_after_queries(self):
        console = booted_console()
        console.execute("sql SELECT COUNT(*) FROM item")
        output = console.execute("metrics")
        assert "queries: 1" in output

    def test_billing(self):
        output = booted_console().execute("billing 10")
        assert "total for 10h" in output
        assert "$" in output

    def test_billing_requires_number(self):
        with pytest.raises(ConsoleError):
            booted_console().execute("billing soon")

    def test_histogram(self):
        output = booted_console().execute("histogram item price")
        assert "buckets" in output

    def test_help(self):
        assert "schema CREATE TABLE" in booted_console().execute("help")

    def test_explain(self):
        console = booted_console()
        output = console.execute("explain SELECT label FROM item WHERE id = 1")
        assert "index eq id = 1" in output

    def test_explain_unknown_peer(self):
        with pytest.raises(ConsoleError):
            booted_console().execute("explain peer=ghost SELECT 1 FROM item")


class TestServingStatus:
    def test_reports_not_attached(self):
        console = booted_console()
        output = console.execute("serving status")
        assert "not attached" in output

    def test_reports_queues_and_slo_counters(self):
        console = booted_console()
        net = console.network
        door = net.attach_serving()
        from repro.serving import ServingRequest

        door.register_tenant("acme", 2.0)
        door.submit(ServingRequest(tenant="acme", sql="SELECT COUNT(*) FROM item"))
        door.drain()
        output = console.execute("serving status")
        assert "workers: 0 busy / 4 total" in output
        assert "per-tenant SLOs:" in output
        assert "acme/interactive: offered=1 admitted=1 completed=1" in output
        assert "wait p50=" in output

    def test_usage_error(self):
        console = booted_console()
        with pytest.raises(ConsoleError, match="usage: serving status"):
            console.execute("serving")

    def test_requires_network(self):
        with pytest.raises(ConsoleError):
            Console().execute("serving status")


class TestScriptRunner:
    def test_main_runs_script_file(self, tmp_path, capsys):
        from repro.console.__main__ import main

        script = tmp_path / "setup.bp"
        script.write_text(
            "schema CREATE TABLE t (a INTEGER)\n"
            "network create\n"
            "peer add p\n"
            "load p t 1;2;3\n"
            "sql SELECT COUNT(*) FROM t\n"
        )
        assert main([str(script)]) == 0
        out = capsys.readouterr().out
        assert "3" in out

    def test_main_reports_script_errors(self, tmp_path, capsys):
        from repro.console.__main__ import main

        script = tmp_path / "bad.bp"
        script.write_text("peer add ghost\n")
        assert main([str(script)]) == 1
        assert "error" in capsys.readouterr().err


class TestBootstrapStatus:
    def test_reports_leader_log_and_standby_lag(self):
        console = booted_console()
        output = console.execute("bootstrap status")
        assert "leader: bootstrap (epoch 1, online=True)" in output
        assert "entries" in output
        assert "0 promotion(s)" in output
        assert "standby bootstrap-standby: 0 entries behind" in output

    def test_reports_promotion_after_crash(self):
        console = booted_console()
        net = console.network
        net.cloud.crash_instance(net.bootstrap_cluster.leader.host)
        net.bootstrap_cluster.recover()
        output = console.execute("bootstrap status")
        assert "leader: bootstrap-standby (epoch 2" in output
        assert "1 promotion(s)" in output
        assert "recent events:" in output
        assert "promotion: bootstrap -> bootstrap-standby" in output

    def test_usage_error_on_other_args(self):
        console = booted_console()
        with pytest.raises(ConsoleError, match="usage: bootstrap status"):
            console.execute("bootstrap")
        with pytest.raises(ConsoleError):
            console.execute("bootstrap promote")

    def test_requires_network(self):
        with pytest.raises(ConsoleError):
            Console().execute("bootstrap status")


class TestBatonCommands:
    def test_status_reports_overlay_and_per_node_load(self):
        console = booted_console()
        console.execute("sql SELECT id, label FROM item")
        output = console.execute("baton status")
        assert "overlay:" in output
        assert "mean load=" in output
        assert "max/mean=" in output
        assert "balancing: rounds=0 migrations=0" in output
        assert "replica reads: fanout=" in output
        # One indented line per overlay node, sorted by id.
        node_lines = [
            line for line in output.splitlines() if line.startswith("  ")
        ]
        assert node_lines == sorted(node_lines)
        assert all("score=" in line for line in node_lines)

    def test_rebalance_reports_a_round(self):
        console = booted_console()
        output = console.execute("baton rebalance")
        assert output.startswith("rebalance: hot=")
        assert "max/mean" in output
        assert console.network.load_balancer.rounds == 1

    def test_rebalance_shows_up_in_status_counters(self):
        console = booted_console()
        console.execute("baton rebalance")
        console.execute("baton rebalance")
        assert "rounds=2" in console.execute("baton status")

    def test_usage_error(self):
        console = booted_console()
        with pytest.raises(ConsoleError, match="usage: baton status"):
            console.execute("baton")
        with pytest.raises(ConsoleError):
            console.execute("baton explode")

    def test_requires_network(self):
        with pytest.raises(ConsoleError):
            Console().execute("baton status")

    def test_help_mentions_baton(self):
        assert "baton" in booted_console().execute("help")
