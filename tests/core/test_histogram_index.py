"""Tests for BATON-indexed histograms (iDistance publication)."""

import pytest
import random

from repro.baton import BatonOverlay
from repro.core.histogram import Histogram
from repro.core.histogram_index import HistogramIndex
from repro.errors import BestPeerError


def build_overlay(n=8):
    overlay = BatonOverlay()
    for i in range(n):
        overlay.join(f"peer-{i}")
    return overlay


def uniform_histogram(n=2000, seed=4, buckets=16):
    rng = random.Random(seed)
    rows = [(rng.uniform(0, 100), rng.uniform(0, 50)) for _ in range(n)]
    return Histogram.build(["x", "y"], rows, num_buckets=buckets), rows


class TestPublishFetch:
    def test_roundtrip_preserves_buckets(self):
        histogram, _ = uniform_histogram()
        index = HistogramIndex(build_overlay())
        index.publish("lineitem", histogram)
        fetched, hops = index.fetch("lineitem")
        assert fetched.relation_size() == histogram.relation_size()
        assert len(fetched.buckets) == len(histogram.buckets)
        assert fetched.columns == histogram.columns

    def test_fetch_unpublished_table_rejected(self):
        index = HistogramIndex(build_overlay())
        with pytest.raises(BestPeerError):
            index.fetch("widgets")

    def test_multiple_tables_do_not_collide(self):
        h1, _ = uniform_histogram(seed=1)
        h2, _ = uniform_histogram(seed=2, n=500, buckets=8)
        index = HistogramIndex(build_overlay())
        index.publish("lineitem", h1)
        index.publish("orders", h2)
        assert index.fetch("lineitem")[0].relation_size() == 2000
        assert index.fetch("orders")[0].relation_size() == 500

    def test_buckets_distributed_across_peers(self):
        histogram, _ = uniform_histogram(buckets=32)
        overlay = build_overlay(8)
        index = HistogramIndex(overlay)
        index.publish("lineitem", histogram)
        holders = [node for node in overlay.nodes() if node.item_count > 0]
        assert len(holders) >= 2  # not all buckets on one node

    def test_invalid_key_span(self):
        with pytest.raises(BestPeerError):
            HistogramIndex(build_overlay(), key_span=0.0)


class TestRemoteEstimation:
    def test_region_estimate_matches_local(self):
        histogram, rows = uniform_histogram()
        index = HistogramIndex(build_overlay())
        index.publish("lineitem", histogram)
        remote, hops = index.estimate_region(
            "lineitem", lows={"x": 0.0}, highs={"x": 50.0}
        )
        local = histogram.region_count(lows={"x": 0.0}, highs={"x": 50.0})
        assert remote == pytest.approx(local)
        assert hops >= 0

    def test_estimate_accuracy_on_uniform_data(self):
        histogram, rows = uniform_histogram(n=4000, buckets=32)
        index = HistogramIndex(build_overlay())
        index.publish("lineitem", histogram)
        estimate, _ = index.estimate_region(
            "lineitem", lows={"x": 25.0}, highs={"x": 75.0}
        )
        actual = sum(1 for x, _ in rows if 25.0 <= x <= 75.0)
        assert estimate == pytest.approx(actual, rel=0.15)
