"""Closed-loop auto-scaling: query load -> CPU gauge -> daemon upgrade."""

import pytest

from repro.core import BestPeerNetwork
from repro.core.config import DaemonConfig
from repro.errors import BestPeerError
from repro.sim import ComputeModel
from repro.sqlengine import Column, ColumnType, TableSchema


def schemas():
    return {
        "t": TableSchema(
            "t",
            [Column("a", ColumnType.INTEGER), Column("b", ColumnType.FLOAT)],
        )
    }


def busy_network(epoch_s=10.0):
    # An expensive compute model so a few queries fill the epoch budget.
    net = BestPeerNetwork(
        schemas(),
        daemon_config=DaemonConfig(epoch_s=epoch_s),
        compute_model=ComputeModel(scan_s_per_row=0.01, emit_s_per_row=0.01),
    )
    net.add_peer("hot")
    net.load_peer("hot", {"t": [(i, float(i)) for i in range(500)]})
    return net


class TestBusyAccounting:
    def test_queries_accumulate_busy_time(self):
        net = busy_network()
        peer = net.peers["hot"]
        net.execute("SELECT SUM(b) FROM t")
        assert peer._busy_s_since_epoch > 0

    def test_update_cpu_metric_resets_accumulator(self):
        net = busy_network()
        peer = net.peers["hot"]
        net.execute("SELECT SUM(b) FROM t")
        utilization = peer.update_cpu_metric(epoch_s=10.0)
        assert 0 < utilization <= 1.0
        assert peer._busy_s_since_epoch == 0.0

    def test_utilization_capped_at_one(self):
        net = busy_network()
        peer = net.peers["hot"]
        peer.record_busy(10_000.0)
        assert peer.update_cpu_metric(epoch_s=1.0) == 1.0

    def test_invalid_epoch_rejected(self):
        net = busy_network()
        with pytest.raises(BestPeerError):
            net.peers["hot"].update_cpu_metric(0.0)

    def test_idle_epoch_keeps_external_gauge(self):
        net = busy_network()
        peer = net.peers["hot"]
        peer.instance.cpu_utilization = 0.93
        peer.update_cpu_metric(epoch_s=10.0)
        assert peer.instance.cpu_utilization == 0.93


class TestClosedLoop:
    def test_sustained_load_triggers_upgrade(self):
        net = busy_network(epoch_s=10.0)
        for _ in range(5):
            net.execute("SELECT SUM(b) FROM t")
        report = net.run_maintenance()
        assert any(event.action == "upgrade" for event in report.scalings)
        assert net.peers["hot"].instance.instance_type.name == "m1.medium"

    def test_light_load_does_not_upgrade(self):
        net = busy_network(epoch_s=10_000.0)
        net.execute("SELECT COUNT(*) FROM t")
        report = net.run_maintenance()
        assert not any(event.action == "upgrade" for event in report.scalings)

    def test_upgrade_makes_peer_faster(self):
        net = busy_network(epoch_s=10.0)
        slow = net.execute("SELECT SUM(b) FROM t").latency_s
        for _ in range(5):
            net.execute("SELECT SUM(b) FROM t")
        net.run_maintenance()
        fast = net.execute("SELECT SUM(b) FROM t").latency_s
        assert fast < slow

    def test_repeated_epochs_keep_scaling_until_load_fits(self):
        net = busy_network(epoch_s=5.0)
        for _ in range(3):
            for _ in range(6):
                net.execute("SELECT SUM(b) FROM t")
            net.run_maintenance()
        # m1.small -> m1.medium -> m1.large at least.
        assert net.peers["hot"].instance.instance_type.compute_units >= 4.0
