"""Tests for instance-level schema matching."""

import pytest

from repro.core.instance_mapping import InstanceMatcher
from repro.errors import SchemaMappingError
from repro.sqlengine import Column, ColumnType, TableSchema


def schemas():
    return {
        "customer": TableSchema(
            "customer",
            [
                Column("c_custkey", ColumnType.INTEGER),
                Column("c_name", ColumnType.TEXT),
                Column("c_acctbal", ColumnType.FLOAT),
            ],
        ),
        "supplier": TableSchema(
            "supplier",
            [
                Column("s_suppkey", ColumnType.INTEGER),
                Column("s_name", ColumnType.TEXT),
            ],
        ),
    }


def customer_sample():
    return [
        (i, f"Customer#{i:04d}", round(100.0 + i * 3.5, 2)) for i in range(60)
    ]


def supplier_sample():
    return [(1000 + i, f"Supplier#{i:04d}") for i in range(30)]


@pytest.fixture
def matcher():
    m = InstanceMatcher(schemas())
    m.register_global_sample("customer", customer_sample())
    m.register_global_sample("supplier", supplier_sample())
    return m


class TestMatching:
    def test_matches_identical_data(self, matcher):
        # A local table with unhelpful column names but overlapping values.
        rows = [(i, f"Customer#{i:04d}", 100.0 + i * 3.5) for i in range(40)]
        result = matcher.match("kunden", ["knr", "kname", "saldo"], rows)
        assert result.global_table == "customer"
        assert result.mapping.column_map["knr"] == "c_custkey"
        assert result.mapping.column_map["kname"] == "c_name"
        assert result.mapping.column_map["saldo"] == "c_acctbal"
        assert result.confidence > 0.3

    def test_picks_right_table_automatically(self, matcher):
        rows = [(1000 + i, f"Supplier#{i:04d}") for i in range(20)]
        result = matcher.match("lieferanten", ["lnr", "lname"], rows)
        assert result.global_table == "supplier"

    def test_explicit_table_restricts_search(self, matcher):
        rows = [(i, f"Customer#{i:04d}", 50.0) for i in range(20)]
        result = matcher.match(
            "kunden", ["a", "b", "c"], rows, global_table="customer"
        )
        assert result.global_table == "customer"

    def test_numeric_range_overlap_matches_without_exact_values(self, matcher):
        # Different keys but same numeric range for the balance column.
        rows = [
            (10**6 + i, f"Other#{i}", 120.0 + i * 3.5) for i in range(40)
        ]
        result = matcher.match(
            "konten", ["id", "label", "balance"], rows, global_table="customer"
        )
        assert result.mapping.column_map.get("balance") == "c_acctbal"

    def test_incompatible_kinds_never_match(self, matcher):
        rows = [("textual", "x") for _ in range(10)]
        result = matcher.match(
            "weird", ["t1", "t2"], rows, global_table="customer"
        )
        assert "t1" not in result.mapping.column_map or (
            result.mapping.column_map["t1"] != "c_custkey"
        )

    def test_unmatched_columns_reported(self, matcher):
        rows = [(i, "zzz-unrelated-value") for i in range(10)]
        result = matcher.match(
            "partial", ["id", "junk"], rows, global_table="customer"
        )
        assert "junk" in result.unmatched_local or "junk" in result.mapping.column_map

    def test_one_to_one_assignment(self, matcher):
        # Two identical local columns cannot both map to the same global one.
        rows = [(i, i, f"Customer#{i:04d}") for i in range(30)]
        result = matcher.match(
            "dup", ["id1", "id2", "name"], rows, global_table="customer"
        )
        targets = list(result.mapping.column_map.values())
        assert len(targets) == len(set(targets))

    def test_inferred_mapping_usable_by_loader(self, matcher):
        from repro.core.schema_mapping import SchemaMapping

        rows = [(i, f"Customer#{i:04d}", 100.0 + i * 3.5) for i in range(40)]
        result = matcher.match("kunden", ["knr", "kname", "saldo"], rows)
        mapping = SchemaMapping(schemas())
        mapping.add_table_mapping(result.mapping)
        table, transformed = mapping.transform(
            "kunden", ["knr", "kname", "saldo"], [(7, "ACME", 50.0)]
        )
        assert table == "customer"
        assert transformed == [(7, "ACME", 50.0)]


class TestValidation:
    def test_no_samples_registered(self):
        with pytest.raises(SchemaMappingError):
            InstanceMatcher(schemas()).match("t", ["a"], [(1,)])

    def test_unknown_global_table(self, matcher):
        with pytest.raises(SchemaMappingError):
            matcher.register_global_sample("widgets", [])
        with pytest.raises(SchemaMappingError):
            matcher.match("t", ["a"], [(1,)], global_table="widgets")

    def test_invalid_min_score(self):
        with pytest.raises(SchemaMappingError):
            InstanceMatcher(schemas(), min_score=1.5)
