"""Tests for the certificate authority."""

import dataclasses

import pytest

from repro.core.certificates import Certificate, CertificateAuthority
from repro.errors import CertificateError


@pytest.fixture
def ca():
    return CertificateAuthority()


class TestIssue:
    def test_issue_and_verify(self, ca):
        cert = ca.issue("peer-1", now=10.0)
        assert cert.peer_id == "peer-1"
        assert cert.issued_at == 10.0
        assert ca.verify(cert)

    def test_serials_unique(self, ca):
        a = ca.issue("peer-1")
        b = ca.issue("peer-2")
        assert a.serial != b.serial

    def test_empty_peer_id_rejected(self, ca):
        with pytest.raises(CertificateError):
            ca.issue("")


class TestVerify:
    def test_forged_signature_rejected(self, ca):
        cert = ca.issue("peer-1")
        forged = dataclasses.replace(cert, signature="0" * 64)
        assert not ca.verify(forged)

    def test_tampered_peer_id_rejected(self, ca):
        cert = ca.issue("peer-1")
        tampered = dataclasses.replace(cert, peer_id="peer-evil")
        assert not ca.verify(tampered)

    def test_certificate_from_other_ca_rejected(self):
        other = CertificateAuthority(secret="different")
        cert = other.issue("peer-1")
        assert not CertificateAuthority().verify(cert)


class TestRevoke:
    def test_revoked_certificate_fails_verification(self, ca):
        cert = ca.issue("peer-1")
        ca.revoke(cert)
        assert ca.is_revoked(cert)
        assert not ca.verify(cert)

    def test_revoking_unknown_certificate_rejected(self, ca):
        stranger = CertificateAuthority(secret="x").issue("peer-1")
        with pytest.raises(CertificateError):
            ca.revoke(stranger)

    def test_other_certificates_unaffected(self, ca):
        a = ca.issue("peer-1")
        b = ca.issue("peer-2")
        ca.revoke(a)
        assert ca.verify(b)
