"""Tests for the normal peer and the bootstrap peer (Algorithm 1)."""

import pytest

from repro.core.bootstrap import BootstrapPeer, PeerRecord
from repro.core.config import DaemonConfig
from repro.core.metrics import MetricsRegistry
from repro.core.peer import NormalPeer
from repro.core.schema_mapping import identity_mapping
from repro.core.access_control import Role, rule, READ
from repro.errors import BestPeerError, MembershipError, QueryRejectedError
from repro.sim import CloudProvider, SimNetwork
from repro.sqlengine import Column, ColumnType, TableSchema


def schemas():
    return {
        "item": TableSchema(
            "item",
            [
                Column("id", ColumnType.INTEGER),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        )
    }


@pytest.fixture
def cloud():
    return CloudProvider(SimNetwork())


@pytest.fixture
def bootstrap(cloud):
    return BootstrapPeer(cloud, schemas())


def make_peer(cloud, peer_id="peer-1"):
    instance = cloud.launch_instance(instance_id=f"i-{peer_id}")
    peer = NormalPeer(peer_id, instance)
    peer.create_table(schemas()["item"], secondary_indices=["price"])
    peer.set_schema_mapping(identity_mapping(schemas()))
    return peer


class TestNormalPeerBasics:
    def test_load_and_query(self, cloud):
        peer = make_peer(cloud)
        peer.load_initial("item", ["id", "price"], [(1, 10.0), (2, 20.0)])
        execution = peer.execute_local("SELECT SUM(price) FROM item")
        assert execution.result.scalar() == 30.0
        assert execution.seconds > 0

    def test_refresh_updates_timestamp(self, cloud):
        peer = make_peer(cloud)
        peer.load_initial("item", ["id", "price"], [(1, 10.0)], now=5.0)
        assert peer.last_refresh_at == 5.0
        peer.refresh("item", ["id", "price"], [(1, 15.0)], now=9.0)
        assert peer.last_refresh_at == 9.0

    def test_snapshot_semantics_definition2(self, cloud):
        peer = make_peer(cloud)
        peer.load_initial("item", ["id", "price"], [(1, 10.0)], now=5.0)
        # Query submitted at t=6, data refreshed at t=5: fine.
        peer.execute_local("SELECT * FROM item", query_timestamp=6.0)
        # Query submitted at t=4, data refreshed at t=5: rejected.
        with pytest.raises(QueryRejectedError):
            peer.execute_local("SELECT * FROM item", query_timestamp=4.0)

    def test_offline_peer_rejects_queries(self, cloud):
        peer = make_peer(cloud)
        cloud.crash_instance(peer.host)
        with pytest.raises(BestPeerError):
            peer.execute_local("SELECT 1 FROM item")

    def test_no_mapping_rejected(self, cloud):
        instance = cloud.launch_instance()
        peer = NormalPeer("p", instance)
        with pytest.raises(BestPeerError):
            peer.load_initial("item", ["id"], [])

    def test_fetch_applies_access_control(self, cloud):
        peer = make_peer(cloud)
        peer.load_initial("item", ["id", "price"], [(1, 10.0), (2, 500.0)])
        peer.access.assign(
            "bob",
            Role("limited", [
                rule("item.id", [READ]),
                rule("item.price", [READ], (0, 100)),
            ]),
        )
        execution = peer.execute_fetch(
            "item", "SELECT id, price FROM item", user="bob"
        )
        assert execution.result.rows == [(1, 10.0), (2, None)]

    def test_faster_instance_processes_faster(self, cloud):
        small = make_peer(cloud, "small")
        large_instance = cloud.launch_instance("m1.large", instance_id="i-large")
        large = NormalPeer("large", large_instance)
        large.create_table(schemas()["item"])
        large.set_schema_mapping(identity_mapping(schemas()))
        rows = [(i, float(i)) for i in range(500)]
        small.load_initial("item", ["id", "price"], rows)
        large.load_initial("item", ["id", "price"], rows)
        slow = small.execute_local("SELECT SUM(price) FROM item").seconds
        fast = large.execute_local("SELECT SUM(price) FROM item").seconds
        assert fast < slow

    def test_backup_restore_roundtrip(self, cloud):
        peer = make_peer(cloud)
        peer.load_initial("item", ["id", "price"], [(1, 10.0)], now=3.0)
        snapshot = peer.backup_to(cloud)
        # Wipe and restore.
        peer.database.execute("DELETE FROM item")
        peer.restore_from_payload(snapshot.payload)
        assert peer.execute_local("SELECT COUNT(*) FROM item").result.scalar() == 1
        assert peer.last_refresh_at == 3.0
        # Secondary indices rebuilt.
        assert peer.database.table("item").index_on("price") is not None


class TestMembership:
    def test_join_grants_certificate_and_metadata(self, cloud, bootstrap):
        peer = make_peer(cloud)
        grant = bootstrap.register_peer(peer, now=1.0)
        assert bootstrap.verify_certificate(grant.certificate)
        assert peer.certificate is grant.certificate
        assert "item" in grant.global_schemas
        assert bootstrap.is_member("peer-1")

    def test_double_join_rejected(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        with pytest.raises(MembershipError):
            bootstrap.register_peer(peer)

    def test_departure_revokes_certificate(self, cloud, bootstrap):
        peer = make_peer(cloud)
        grant = bootstrap.register_peer(peer)
        bootstrap.handle_departure("peer-1")
        assert not bootstrap.verify_certificate(grant.certificate)
        assert not bootstrap.is_member("peer-1")

    def test_blacklisted_peer_cannot_rejoin(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        bootstrap.handle_departure("peer-1")
        with pytest.raises(MembershipError):
            bootstrap.register_peer(peer)

    def test_departure_of_unknown_peer_rejected(self, bootstrap):
        with pytest.raises(MembershipError):
            bootstrap.handle_departure("ghost")

    def test_departed_instance_released_at_epoch_end(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        bootstrap.handle_departure("peer-1")
        report = bootstrap.run_maintenance_epoch({})
        assert peer.host in report.released_instances

    def test_admission_policy_rejects_joins(self, cloud):
        bootstrap = BootstrapPeer(
            cloud,
            schemas(),
            admission_policy=lambda peer_id: peer_id.startswith("trusted-"),
        )
        accepted = make_peer(cloud, "trusted-1")
        bootstrap.register_peer(accepted)
        rejected = make_peer(cloud, "shady-1")
        with pytest.raises(MembershipError):
            bootstrap.register_peer(rejected)
        assert not bootstrap.is_member("shady-1")

    def test_register_rejects_unverifiable_certificate(self, cloud, bootstrap):
        # §3.1: credentials are CA-verified before admission; a CA that
        # cannot vouch for its own issuance must not admit the peer.
        peer = make_peer(cloud)
        bootstrap.ca.verify = lambda certificate: False
        with pytest.raises(MembershipError, match="failed CA verification"):
            bootstrap.register_peer(peer)
        assert not bootstrap.is_member("peer-1")
        assert peer.certificate is None

    def test_user_registry(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        bootstrap.register_user("alice", "peer-1")
        assert bootstrap.user_registry["alice"] == "peer-1"
        with pytest.raises(MembershipError):
            bootstrap.register_user("bob", "nonmember")


class TestAlgorithm1:
    def test_healthy_network_no_events(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        report = bootstrap.run_maintenance_epoch({"peer-1": peer})
        assert report.failovers == []
        assert report.scalings == []
        assert report.notified_peers == 1

    def test_failover_restores_from_backup(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        peer.load_initial("item", ["id", "price"], [(1, 10.0), (2, 20.0)])
        peer.backup_to(cloud)
        old_host = peer.host
        cloud.crash_instance(old_host)

        report = bootstrap.run_maintenance_epoch({"peer-1": peer})

        assert len(report.failovers) == 1
        event = report.failovers[0]
        assert event.old_instance_id == old_host
        assert event.restored_rows == 2
        assert event.duration_s > 0
        # Peer is alive again on a fresh instance with its data back.
        assert peer.online
        assert peer.host != old_host
        result = peer.execute_local("SELECT COUNT(*) FROM item").result
        assert result.scalar() == 2
        # The crashed instance is released in the same epoch.
        assert old_host in report.released_instances

    def test_failover_without_backup_loses_unbacked_data(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        peer.load_initial("item", ["id", "price"], [(1, 10.0)])
        cloud.crash_instance(peer.host)
        report = bootstrap.run_maintenance_epoch({"peer-1": peer})
        assert report.failovers[0].restored_rows == 0

    def test_cpu_overload_triggers_upgrade(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        peer.instance.cpu_utilization = 0.95
        report = bootstrap.run_maintenance_epoch({"peer-1": peer})
        assert any(event.action == "upgrade" for event in report.scalings)
        assert peer.instance.instance_type.name == "m1.medium"

    def test_low_storage_triggers_extension(self, cloud, bootstrap):
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        peer.instance.storage_used_gb = peer.instance.storage_gb - 0.5
        report = bootstrap.run_maintenance_epoch({"peer-1": peer})
        assert any(event.action == "add-storage" for event in report.scalings)

    def test_vanished_blacklisted_instance_is_skipped_and_counted(self, cloud):
        # A blacklist entry whose instance the cloud no longer knows about
        # (reclaimed out of band) must not abort the release sweep — and
        # must not vanish silently either.
        metrics = MetricsRegistry()
        bootstrap = BootstrapPeer(cloud, schemas(), metrics=metrics)
        peer = make_peer(cloud)
        bootstrap.register_peer(peer)
        bootstrap.handle_departure("peer-1")
        ghost = PeerRecord("ghost", bootstrap.ca.issue("ghost", 0.0), "i-ghost")
        bootstrap._blacklist.append(ghost)

        report = bootstrap.run_maintenance_epoch({})

        # The known instance is still released despite the ghost entry.
        assert report.released_instances == [peer.host]
        assert report.release_skips == 1
        assert metrics.faults.blacklist_release_skips == 1
        assert bootstrap._blacklist == []

    def test_top_tier_instance_not_upgraded(self, cloud, bootstrap):
        instance = cloud.launch_instance("m1.xlarge", instance_id="i-max")
        peer = NormalPeer("maxed", instance)
        bootstrap.register_peer(peer)
        peer.instance.cpu_utilization = 0.99
        report = bootstrap.run_maintenance_epoch({"maxed": peer})
        assert not any(event.action == "upgrade" for event in report.scalings)
