"""Tests for schema mapping and the snapshot-differential data loader."""

import pytest

from repro.core.loader import DataLoader, SnapshotDelta, snapshot_diff
from repro.core.schema_mapping import (
    MappingTemplate,
    SchemaMapping,
    TableMapping,
    identity_mapping,
)
from repro.errors import SchemaMappingError
from repro.sqlengine import Column, ColumnType, Database, TableSchema


def global_schemas():
    return {
        "customer": TableSchema(
            "customer",
            [
                Column("c_custkey", ColumnType.INTEGER),
                Column("c_name", ColumnType.TEXT),
                Column("c_nation", ColumnType.TEXT),
            ],
            primary_key="c_custkey",
        )
    }


@pytest.fixture
def mapping():
    schema_mapping = SchemaMapping(global_schemas())
    schema_mapping.add_table_mapping(
        TableMapping(
            local_table="kunden",
            global_table="customer",
            column_map={"knr": "c_custkey", "kname": "c_name", "land": "c_nation"},
            value_map={"c_nation": {"DE": "GERMANY", "FR": "FRANCE"}},
        )
    )
    return schema_mapping


class TestSchemaMapping:
    def test_transform_renames_and_translates(self, mapping):
        table, rows = mapping.transform(
            "kunden",
            ["knr", "kname", "land"],
            [(1, "ACME", "DE"), (2, "Bolt", "US")],
        )
        assert table == "customer"
        assert rows == [(1, "ACME", "GERMANY"), (2, "Bolt", "US")]

    def test_unmapped_local_column_dropped(self, mapping):
        table, rows = mapping.transform(
            "kunden", ["knr", "kname", "land", "extra"], [(1, "A", "DE", "junk")]
        )
        assert rows == [(1, "A", "GERMANY")]

    def test_unmapped_global_column_is_null(self):
        schema_mapping = SchemaMapping(global_schemas())
        schema_mapping.add_table_mapping(
            TableMapping("kunden", "customer", {"knr": "c_custkey"})
        )
        _, rows = schema_mapping.transform("kunden", ["knr"], [(7,)])
        assert rows == [(7, None, None)]

    def test_unknown_global_table_rejected(self):
        schema_mapping = SchemaMapping(global_schemas())
        with pytest.raises(SchemaMappingError):
            schema_mapping.add_table_mapping(TableMapping("x", "widgets", {}))

    def test_unknown_global_column_rejected(self):
        schema_mapping = SchemaMapping(global_schemas())
        with pytest.raises(SchemaMappingError):
            schema_mapping.add_table_mapping(
                TableMapping("x", "customer", {"a": "missing_col"})
            )

    def test_missing_mapping_rejected(self, mapping):
        with pytest.raises(SchemaMappingError):
            mapping.transform("unknown_table", ["a"], [(1,)])

    def test_row_width_mismatch_rejected(self, mapping):
        with pytest.raises(SchemaMappingError):
            mapping.transform("kunden", ["knr", "kname", "land"], [(1, "A")])

    def test_identity_mapping(self):
        mapping = identity_mapping(global_schemas())
        table, rows = mapping.transform(
            "customer", ["c_custkey", "c_name", "c_nation"], [(1, "A", "X")]
        )
        assert table == "customer"
        assert rows == [(1, "A", "X")]

    def test_template_instantiation_with_override(self):
        template = MappingTemplate(
            system="SAP",
            tables={"customer": {"kunnr": "c_custkey", "name1": "c_name"}},
            local_table_names={"customer": "kna1"},
        )
        schema_mapping = SchemaMapping(global_schemas())
        template.instantiate(schema_mapping, overrides={"customer": "kna1_custom"})
        assert schema_mapping.has_mapping("kna1_custom")
        assert not schema_mapping.has_mapping("kna1")


class TestSnapshotDiff:
    def test_no_changes(self):
        rows = [(1, "a"), (2, "b")]
        inserted, deleted = snapshot_diff(rows, rows)
        assert inserted == []
        assert deleted == []

    def test_pure_insert(self):
        inserted, deleted = snapshot_diff([(1, "a")], [(1, "a"), (2, "b")])
        assert inserted == [(2, "b")]
        assert deleted == []

    def test_pure_delete(self):
        inserted, deleted = snapshot_diff([(1, "a"), (2, "b")], [(2, "b")])
        assert deleted == [(1, "a")]
        assert inserted == []

    def test_update_is_delete_plus_insert(self):
        inserted, deleted = snapshot_diff([(1, "old")], [(1, "new")])
        assert deleted == [(1, "old")]
        assert inserted == [(1, "new")]

    def test_duplicate_multiplicity(self):
        inserted, deleted = snapshot_diff([(1, "a"), (1, "a")], [(1, "a")])
        assert deleted == [(1, "a")]
        assert inserted == []

    def test_empty_sides(self):
        assert snapshot_diff([], [(1,)]) == ([(1,)], [])
        assert snapshot_diff([(1,)], []) == ([], [(1,)])
        assert snapshot_diff([], []) == ([], [])

    def test_large_diff_correct(self):
        old = [(i, f"row-{i}") for i in range(500)]
        new = [(i, f"row-{i}") for i in range(100, 600)]
        inserted, deleted = snapshot_diff(old, new)
        assert sorted(deleted) == [(i, f"row-{i}") for i in range(100)]
        assert sorted(inserted) == [(i, f"row-{i}") for i in range(500, 600)]


class TestDataLoader:
    @pytest.fixture
    def loader(self, mapping):
        database = Database()
        database.create_table(global_schemas()["customer"])
        return DataLoader(database, mapping)

    def test_initial_load(self, loader):
        delta = loader.initial_load(
            "kunden", ["knr", "kname", "land"], [(1, "A", "DE")]
        )
        assert delta.change_count == 1
        result = loader.database.execute("SELECT c_nation FROM customer")
        assert result.column("c_nation") == ["GERMANY"]

    def test_double_initial_load_rejected(self, loader):
        loader.initial_load("kunden", ["knr", "kname", "land"], [(1, "A", "DE")])
        with pytest.raises(SchemaMappingError):
            loader.initial_load("kunden", ["knr", "kname", "land"], [])

    def test_refresh_applies_delta(self, loader):
        columns = ["knr", "kname", "land"]
        loader.initial_load("kunden", columns, [(1, "A", "DE"), (2, "B", "FR")])
        delta = loader.refresh(
            "kunden", columns, [(1, "A", "DE"), (3, "C", "US")]
        )
        assert len(delta.inserted) == 1
        assert len(delta.deleted) == 1
        keys = loader.database.execute(
            "SELECT c_custkey FROM customer ORDER BY c_custkey"
        ).column("c_custkey")
        assert keys == [1, 3]

    def test_refresh_without_changes_is_empty(self, loader):
        columns = ["knr", "kname", "land"]
        rows = [(1, "A", "DE")]
        loader.initial_load("kunden", columns, rows)
        delta = loader.refresh("kunden", columns, rows)
        assert delta.is_empty

    def test_refresh_before_load_rejected(self, loader):
        with pytest.raises(SchemaMappingError):
            loader.refresh("kunden", ["knr", "kname", "land"], [])

    def test_snapshot_kept_separately(self, loader):
        columns = ["knr", "kname", "land"]
        loader.initial_load("kunden", columns, [(1, "A", "DE")])
        snapshot = loader.snapshot_of("customer")
        assert snapshot == [(1, "A", "GERMANY")]
        # Mutating the returned list must not corrupt the stored snapshot.
        snapshot.append(("junk",))
        assert loader.snapshot_of("customer") == [(1, "A", "GERMANY")]

    def test_update_roundtrip(self, loader):
        columns = ["knr", "kname", "land"]
        loader.initial_load("kunden", columns, [(1, "A", "DE")])
        loader.refresh("kunden", columns, [(1, "A-renamed", "DE")])
        names = loader.database.execute("SELECT c_name FROM customer")
        assert names.column("c_name") == ["A-renamed"]
