"""Unit tests for the bootstrap write-ahead metadata log (repro.core.metalog).

The WAL is the survivability primitive of the HA bootstrap pair: every
metadata mutation is a typed record folded through the single ``apply``
reducer, entries are epoch-fenced, and certificate serials are strided by
epoch.  These tests pin the contract piece by piece.
"""

import pytest

from repro.core import metalog
from repro.core.access_control import Role, rule, READ
from repro.core.certificates import CertificateAuthority
from repro.core.metalog import (
    BootstrapState,
    LogEntry,
    MetadataLog,
    SERIAL_STRIDE,
)
from repro.errors import (
    BestPeerError,
    CertificateError,
    MembershipError,
    StaleLeaderError,
)


def cert(serial, peer_id="peer-1"):
    return CertificateAuthority().issue(peer_id, now=0.0, serial=serial)


def admit(peer_id, serial, instance="i-1"):
    return metalog.PeerAdmitted(peer_id, cert(serial, peer_id), instance)


class TestMetadataLog:
    def test_append_assigns_contiguous_one_based_indices(self):
        log = MetadataLog()
        first = log.append(admit("a", 1), epoch=0)
        second = log.append(admit("b", 2), epoch=0)
        assert (first.index, second.index) == (1, 2)
        assert len(log) == 2

    def test_append_carries_writer_epoch(self):
        log = MetadataLog()
        entry = log.append(admit("a", SERIAL_STRIDE + 1), epoch=1)
        assert entry.epoch == 1
        assert log.last_epoch == 1

    def test_stale_epoch_append_fenced(self):
        log = MetadataLog()
        log.append(admit("a", 2 * SERIAL_STRIDE + 1), epoch=2)
        with pytest.raises(StaleLeaderError):
            log.append(admit("b", SERIAL_STRIDE + 1), epoch=1)

    def test_same_and_newer_epochs_accepted(self):
        log = MetadataLog()
        log.append(admit("a", SERIAL_STRIDE + 1), epoch=1)
        log.append(admit("b", SERIAL_STRIDE + 2), epoch=1)
        log.append(admit("c", 3 * SERIAL_STRIDE + 1), epoch=3)
        assert log.last_epoch == 3

    def test_receive_adopts_in_order(self):
        leader, follower = MetadataLog(), MetadataLog()
        for peer_id, serial in (("a", 1), ("b", 2)):
            entry = leader.append(admit(peer_id, serial), epoch=0)
            follower.receive(entry)
        assert follower.fingerprint() == leader.fingerprint()

    def test_receive_refuses_gap(self):
        leader, follower = MetadataLog(), MetadataLog()
        leader.append(admit("a", 1), epoch=0)
        skipped = leader.append(admit("b", 2), epoch=0)
        with pytest.raises(BestPeerError, match="gap"):
            follower.receive(skipped)

    def test_receive_refuses_stale_epoch(self):
        follower = MetadataLog()
        follower.receive(
            LogEntry(index=1, epoch=2, record=admit("a", 2 * SERIAL_STRIDE + 1))
        )
        with pytest.raises(StaleLeaderError):
            follower.receive(
                LogEntry(index=2, epoch=1, record=admit("b", SERIAL_STRIDE + 1))
            )

    def test_entries_since_returns_missing_suffix(self):
        log = MetadataLog()
        entries = [log.append(admit(p, s), epoch=0)
                   for p, s in (("a", 1), ("b", 2), ("c", 3))]
        assert log.entries_since(1) == entries[1:]
        assert log.entries_since(3) == []

    def test_fingerprint_is_describe_based_and_stable(self):
        log = MetadataLog()
        log.append(admit("a", 1, instance="i-9"), epoch=0)
        assert log.fingerprint() == (
            (1, 0, "admit:a:serial=1:instance=i-9"),
        )


class TestReducer:
    def entry(self, record, index=1, epoch=0):
        return LogEntry(index=index, epoch=epoch, record=record)

    def test_admission_populates_all_bookkeeping(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 7, "i-a"), epoch=0))
        assert state.peers["a"].instance_id == "i-a"
        assert state.serials == {7: "a"}
        assert state.admission_epochs == {"a": 0}

    def test_double_admission_rejected(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1)))
        with pytest.raises(MembershipError):
            metalog.apply(state, self.entry(admit("a", 2), index=2))

    def test_duplicate_serial_rejected(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1)))
        with pytest.raises(CertificateError, match="duplicate"):
            metalog.apply(state, self.entry(admit("b", 1), index=2))

    def test_departure_moves_peer_to_blacklist(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1, "i-a")))
        metalog.apply(state, self.entry(metalog.PeerDeparted("a"), index=2))
        assert "a" not in state.peers
        assert [held.instance_id for held in state.blacklist] == ["i-a"]

    def test_blacklisted_peer_cannot_readmit(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1)))
        metalog.apply(state, self.entry(metalog.PeerDeparted("a"), index=2))
        # admission_epochs still remembers the first admission too.
        with pytest.raises(MembershipError):
            metalog.apply(state, self.entry(admit("a", 2), index=3))

    def test_departure_of_unknown_peer_rejected(self):
        with pytest.raises(MembershipError):
            metalog.apply(
                BootstrapState(), self.entry(metalog.PeerDeparted("ghost"))
            )

    def test_failover_lifecycle(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1, "i-old")))
        metalog.apply(
            state,
            self.entry(metalog.FailoverStarted("a", "i-old"), index=2),
        )
        assert state.pending_failovers == {"a": "i-old"}
        metalog.apply(
            state,
            self.entry(
                metalog.FailoverCompleted("a", "i-old", "i-new"), index=3
            ),
        )
        assert state.pending_failovers == {}
        assert state.peers["a"].instance_id == "i-new"
        assert [held.instance_id for held in state.blacklist] == ["i-old"]

    def test_failover_of_unknown_peer_rejected(self):
        with pytest.raises(MembershipError):
            metalog.apply(
                BootstrapState(),
                self.entry(metalog.FailoverStarted("ghost", "i-x")),
            )

    def test_blacklist_release_by_instance(self):
        state = BootstrapState()
        metalog.apply(state, self.entry(admit("a", 1, "i-a")))
        metalog.apply(state, self.entry(metalog.PeerDeparted("a"), index=2))
        metalog.apply(
            state,
            self.entry(metalog.BlacklistReleased(("i-a",)), index=3),
        )
        assert state.blacklist == []

    def test_role_and_user_records(self):
        state = BootstrapState()
        role = Role("R", (rule("item.price", (READ,)),))
        metalog.apply(state, self.entry(metalog.RoleDefined(role)))
        metalog.apply(
            state,
            self.entry(metalog.UserRegistered("alice", "a"), index=2),
        )
        assert state.roles["R"] is role
        assert state.user_registry == {"alice": "a"}

    def test_replay_reconstructs_identical_state(self):
        log = MetadataLog()
        log.append(admit("a", 1, "i-a"), epoch=0)
        log.append(admit("b", 2, "i-b"), epoch=0)
        log.append(metalog.PeerDeparted("a"), epoch=0)
        log.append(metalog.FailoverStarted("b", "i-b"), epoch=0)
        replayed = metalog.replay(log.entries)
        assert sorted(replayed.peers) == ["b"]
        assert replayed.pending_failovers == {"b": "i-b"}
        assert replayed.serials == {1: "a", 2: "b"}
        # Replaying twice is byte-for-byte repeatable.
        again = metalog.replay(log.entries)
        assert again.serials == replayed.serials
        assert sorted(again.peers) == sorted(replayed.peers)


class TestSerialStriding:
    def test_epoch_zero_starts_at_one(self):
        assert metalog.next_serial(BootstrapState(), epoch=0) == 1

    def test_continues_past_existing_serials_in_epoch(self):
        state = BootstrapState()
        state.serials = {1: "a", 3: "b"}
        assert metalog.next_serial(state, epoch=0) == 4

    def test_epochs_are_disjoint_ranges(self):
        state = BootstrapState()
        state.serials = {1: "a", 2: "b"}
        serial = metalog.next_serial(state, epoch=1)
        assert serial == SERIAL_STRIDE + 1
        state.serials[serial] = "c"
        assert metalog.next_serial(state, epoch=1) == SERIAL_STRIDE + 2
        # epoch 0 serials never collide with epoch 1 serials.
        assert metalog.next_serial(state, epoch=0) == 3

    def test_exhausted_epoch_range_raises(self):
        state = BootstrapState()
        state.serials = {SERIAL_STRIDE: "a"}
        with pytest.raises(CertificateError, match="exhausted"):
            metalog.next_serial(state, epoch=0)
