"""Network-facade tests: fail-over, consistency, membership churn."""

import pytest

from repro.core import BestPeerNetwork
from repro.errors import BestPeerError, PeerUnavailableError
from repro.tpch import Q1, Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def build_network(n=3, scale=0.5):
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=21, scale=scale)
    for index in range(n):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    return net


class TestFailoverDuringQueries:
    def test_query_blocks_until_failover_then_succeeds(self):
        net = build_network()
        baseline = net.execute(Q2(), engine="basic")
        net.crash_peer("corp-1")

        execution = net.execute(Q2(), engine="basic")

        # Strong consistency: the answer includes corp-1's data (recovered
        # from its EBS backup), never a partial result.
        assert execution.scalar() == pytest.approx(baseline.scalar())
        # The fail-over wait is charged to the query.
        assert "blocked_on_failover_s" in execution.engine_details
        assert execution.latency_s > baseline.latency_s
        assert net.total_blocked_s > 0

    def test_peer_is_rebound_to_new_instance(self):
        net = build_network()
        old_host = net.peers["corp-1"].host
        net.crash_peer("corp-1")
        net.execute(Q2(), engine="basic")
        assert net.peers["corp-1"].host != old_host
        assert net.peers["corp-1"].online

    def test_unbacked_changes_lost_but_service_continues(self):
        net = build_network()
        # Data loaded after the last backup is lost on fail-over.
        peer = net.peers["corp-2"]
        peer.database.execute(
            "DELETE FROM lineitem"
        )  # diverge from the backup
        net.crash_peer("corp-2")
        execution = net.execute(Q2(), engine="basic")
        assert execution.scalar() is not None  # restored from snapshot

    def test_multiple_crashes_all_recovered(self):
        net = build_network()
        baseline = net.execute(Q2(), engine="basic")
        net.crash_peer("corp-0")
        net.crash_peer("corp-2")
        execution = net.execute(Q2(), engine="basic", peer_id="corp-1")
        assert execution.scalar() == pytest.approx(baseline.scalar())


class TestRefreshAfterFailover:
    def test_differential_refresh_diffs_against_restored_state(self):
        """Regression: the loader must be rebound to the restored database.

        Before the fix, fail-over rebuilt ``peer.database`` but the
        DataLoader kept writing to the orphaned pre-crash database (and
        diffed against an unrestored snapshot store), so the first refresh
        after a recovery silently disappeared from query results.
        """
        net = build_network(2)
        generator = TpchGenerator(seed=21, scale=0.5)

        net.crash_peer("corp-1")
        net.execute(Q2(ship_date="1995-01-01"), engine="basic")  # fail-over
        assert net.peers["corp-1"].online

        # Refresh the recovered peer: drop every lineitem row.
        delta = net.refresh_peer("corp-1", "lineitem", [])
        assert delta.deleted  # the diff saw the restored rows
        total = net.execute("SELECT COUNT(*) FROM lineitem").scalar()
        solo = net.peers["corp-0"].database.execute(
            "SELECT COUNT(*) FROM lineitem"
        ).scalar()
        assert total == solo  # corp-1 contributes nothing anymore

    def test_loader_snapshots_travel_with_backups(self):
        net = build_network(2)
        peer = net.peers["corp-1"]
        snapshot_before = peer.loader.snapshot_of("orders")
        net.crash_peer("corp-1")
        net.execute(Q2(ship_date="1995-01-01"), engine="basic")
        assert net.peers["corp-1"].loader.snapshot_of("orders") == (
            snapshot_before
        )


class TestMembership:
    def test_departed_peer_leaves_no_index_entries(self):
        net = build_network()
        before = net.execute(Q1(), engine="basic")
        assert before.peers_contacted == 3
        net.depart_peer("corp-2")
        after = net.execute(Q1(), engine="basic")
        assert after.peers_contacted == 2
        assert len(after.records) < len(before.records)

    def test_departed_peer_unknown_afterwards(self):
        net = build_network()
        net.depart_peer("corp-2")
        with pytest.raises(BestPeerError):
            net.execute(Q1(), peer_id="corp-2")

    def test_duplicate_peer_rejected(self):
        net = build_network(2)
        with pytest.raises(BestPeerError):
            net.add_peer("corp-0")

    def test_late_joiner_contributes_after_load(self):
        net = build_network(2)
        before = net.execute(Q2(), engine="basic")
        net.add_peer("corp-late")
        net.load_peer(
            "corp-late", TpchGenerator(seed=21, scale=0.5).generate_peer(7)
        )
        after = net.execute(Q2(), engine="basic")
        assert after.scalar() > before.scalar()

    def test_empty_network_rejects_queries(self):
        net = BestPeerNetwork(TPCH_SCHEMAS)
        with pytest.raises(BestPeerError):
            net.execute("SELECT COUNT(*) FROM lineitem")


class TestSnapshotConsistency:
    def test_refresh_after_submission_triggers_resubmit(self):
        net = build_network(2)
        # Make corp-1's data newer than any in-flight timestamp: the engine
        # must transparently resubmit with a fresh timestamp and succeed.
        net.clock.advance(100.0)
        peer = net.peers["corp-1"]
        generator = TpchGenerator(seed=21, scale=0.5)
        peer.refresh(
            "lineitem",
            TPCH_SCHEMAS["lineitem"].column_names,
            generator.generate_peer(1)["lineitem"],
            now=net.clock.now + 50.0,  # "future" refresh
        )
        execution = net.execute(Q2(), engine="basic")
        assert execution.scalar() is not None


class TestPricing:
    def test_pay_as_you_go_charges_accumulate(self):
        net = build_network(2)
        execution = net.execute(Q2(), engine="basic")
        assert execution.dollar_cost > 0
        bigger = net.execute(Q1(ship_date="1992-01-01",
                                commit_date="1992-01-01"), engine="basic")
        assert bigger.dollar_cost > execution.dollar_cost
