"""Tests for the `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.__main__ import FIGURES, main


class TestBenchCli:
    def test_list_prints_figures(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(FIGURES)

    def test_all_nine_figures_registered(self):
        assert sorted(FIGURES) == [
            "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14",
        ]

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown figures" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        # fig12 at its smallest is the cheapest end-to-end figure.
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "supplier q/s" in out
