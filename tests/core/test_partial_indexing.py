"""Tests for the partial indexing scheme ([26]) with broadcast fallback."""

import pytest

from repro.baton import BatonOverlay, ReplicatedOverlay
from repro.core import BestPeerNetwork
from repro.core.indexer import (
    DataIndexer,
    FULL_INDEX_POLICY,
    PartialIndexPolicy,
)
from repro.sqlengine import Column, ColumnType, TableSchema


def schemas():
    return {
        "big": TableSchema(
            "big",
            [Column("id", ColumnType.INTEGER), Column("v", ColumnType.FLOAT)],
            primary_key="id",
        ),
        "tiny": TableSchema(
            "tiny",
            [Column("id", ColumnType.INTEGER), Column("w", ColumnType.FLOAT)],
            primary_key="id",
        ),
    }


class TestPolicy:
    def test_full_policy_admits_everything(self):
        assert FULL_INDEX_POLICY.admits_table(0)
        assert FULL_INDEX_POLICY.admits_column("anything")
        assert not FULL_INDEX_POLICY.is_partial

    def test_row_threshold(self):
        policy = PartialIndexPolicy(min_table_rows=100)
        assert policy.is_partial
        assert not policy.admits_table(99)
        assert policy.admits_table(100)

    def test_column_allow_list(self):
        policy = PartialIndexPolicy(indexed_columns=frozenset({"id"}))
        assert policy.is_partial
        assert policy.admits_column("ID")
        assert not policy.admits_column("v")


class TestBroadcastFallback:
    def test_locate_falls_back_when_unindexed(self):
        overlay = ReplicatedOverlay(BatonOverlay())
        for i in range(4):
            overlay.join(f"p{i}")
        indexer = DataIndexer(overlay)
        lookup = indexer.locate("big", fallback_peers=["p0", "p1", "p2", "p3"])
        assert lookup.index_used == "broadcast"
        assert lookup.peers == ["p0", "p1", "p2", "p3"]

    def test_no_fallback_means_empty(self):
        overlay = ReplicatedOverlay(BatonOverlay())
        overlay.join("p0")
        indexer = DataIndexer(overlay)
        assert indexer.locate("big").peers == []


class TestNetworkWithPartialIndexing:
    @pytest.fixture
    def network(self):
        policy = PartialIndexPolicy(min_table_rows=50)
        net = BestPeerNetwork(schemas(), index_policy=policy)
        for index in range(3):
            peer_id = f"corp-{index}"
            net.add_peer(peer_id)
            net.load_peer(
                peer_id,
                {
                    "big": [
                        (index * 1000 + i, float(i)) for i in range(100)
                    ],
                    "tiny": [(index * 1000 + i, float(i)) for i in range(3)],
                },
            )
        return net

    def test_small_table_not_indexed(self, network):
        peers, _, _ = network.indexers["corp-0"].peers_for_table("tiny")
        assert peers == set()
        peers, _, _ = network.indexers["corp-0"].peers_for_table("big")
        assert len(peers) == 3

    def test_unindexed_table_still_queryable_via_broadcast(self, network):
        result = network.execute("SELECT COUNT(*) FROM tiny", engine="basic")
        assert result.scalar() == 9

    def test_indexed_table_unaffected(self, network):
        result = network.execute("SELECT COUNT(*) FROM big", engine="basic")
        assert result.scalar() == 300

    def test_join_across_indexed_and_unindexed(self, network):
        result = network.execute(
            "SELECT COUNT(*) FROM big, tiny WHERE big.id = tiny.id",
            engine="basic",
        )
        assert result.scalar() == 9  # tiny ids are a subset of big ids

    def test_index_size_reduced(self):
        def entries(policy):
            net = BestPeerNetwork(schemas(), index_policy=policy)
            net.add_peer("p")
            net.load_peer(
                "p",
                {
                    "big": [(i, float(i)) for i in range(100)],
                    "tiny": [(i + 500, 0.0) for i in range(3)],
                },
            )
            return sum(
                node.item_count for node in net.overlay.overlay.nodes()
            )

        full = entries(FULL_INDEX_POLICY)
        partial = entries(PartialIndexPolicy(min_table_rows=50))
        assert partial < full
