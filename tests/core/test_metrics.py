"""Tests for the metrics registry."""

import math

import pytest

from repro.core.execution import QueryExecution
from repro.core.metrics import BoundedSamples, MetricsRegistry
from repro.errors import BestPeerError


def execution(strategy="fetch-and-process", latency=0.5, nbytes=100,
              dollars=0.01, rows=3):
    return QueryExecution(
        columns=["a"],
        records=[(i,) for i in range(rows)],
        latency_s=latency,
        strategy=strategy,
        bytes_transferred=nbytes,
        dollar_cost=dollars,
    )


class TestRecording:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.record(execution(latency=1.0))
        registry.record(execution(latency=3.0))
        metrics = registry.engine("fetch-and-process")
        assert metrics.queries == 2
        assert metrics.mean_latency_s == pytest.approx(2.0)
        assert metrics.max_latency_s == 3.0
        assert metrics.total_bytes == 200
        assert metrics.rows_returned == 6

    def test_strategies_separated(self):
        registry = MetricsRegistry()
        registry.record(execution(strategy="mapreduce"))
        registry.record(execution(strategy="single-peer"))
        assert registry.strategies() == ["mapreduce", "single-peer"]
        assert registry.total_queries == 2
        assert registry.engine("mapreduce").queries == 1

    def test_unknown_engine_zeroes(self):
        assert MetricsRegistry().engine("nope").queries == 0

    def test_reset(self):
        registry = MetricsRegistry()
        registry.record(execution())
        registry.reset()
        assert registry.total_queries == 0


class TestHistogram:
    def test_bucket_assignment(self):
        registry = MetricsRegistry(buckets=(1.0, 10.0))
        registry.record(execution(latency=0.5))
        registry.record(execution(latency=5.0))
        registry.record(execution(latency=50.0))
        histogram = registry.latency_histogram()
        assert histogram == {"<=1s": 1, "<=10s": 1, ">10s": 1}

    def test_percentiles(self):
        registry = MetricsRegistry(buckets=(1.0, 10.0))
        for _ in range(9):
            registry.record(execution(latency=0.5))
        registry.record(execution(latency=100.0))
        assert registry.percentile_latency(0.5) == 1.0
        assert math.isinf(registry.percentile_latency(1.0))

    def test_percentile_on_empty(self):
        assert MetricsRegistry().percentile_latency(0.99) == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(BestPeerError):
            MetricsRegistry().percentile_latency(0.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(BestPeerError):
            MetricsRegistry(buckets=(10.0, 1.0))
        with pytest.raises(BestPeerError):
            MetricsRegistry(buckets=(1.0, 1.0))


class TestSummary:
    def test_summary_mentions_engines(self):
        registry = MetricsRegistry()
        registry.record(execution(strategy="single-peer"))
        text = registry.summary()
        assert "single-peer" in text
        assert "queries: 1" in text


class TestBoundedSamples:
    def test_window_is_bounded_but_count_is_not(self):
        samples = BoundedSamples(capacity=4)
        for value in range(10):
            samples.record(float(value))
        assert len(samples) == 4
        assert samples.count == 10
        # Only the newest four survive: 6, 7, 8, 9.
        assert samples.mean == pytest.approx(7.5)

    def test_exact_percentiles(self):
        samples = BoundedSamples(capacity=100)
        for value in range(1, 101):
            samples.record(float(value))
        assert samples.percentile(0.5) == 50.0
        assert samples.percentile(0.99) == 99.0
        assert samples.percentile(1.0) == 100.0

    def test_empty_percentile_is_zero(self):
        assert BoundedSamples(capacity=4).percentile(0.5) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(BestPeerError):
            BoundedSamples(capacity=0)
        with pytest.raises(BestPeerError):
            BoundedSamples(capacity=4).percentile(0.0)


class TestServingStats:
    def test_lanes_created_on_demand_and_sorted(self):
        registry = MetricsRegistry()
        registry.serving_lane("zeta", "bulk").offered += 1
        registry.serving_lane("acme", "interactive").offered += 2
        assert registry.serving_tenants() == ["acme", "zeta"]
        assert sorted(registry.serving) == [
            ("acme", "interactive"),
            ("zeta", "bulk"),
        ]
        assert registry.serving_lane("acme", "interactive").offered == 2

    def test_shed_sums_both_reasons(self):
        stats = MetricsRegistry().serving_lane("acme", "interactive")
        stats.shed_queue_full = 2
        stats.shed_backpressure = 3
        assert stats.shed == 5

    def test_as_dict_exposes_slo_fields(self):
        stats = MetricsRegistry().serving_lane("acme", "interactive")
        stats.offered = 3
        stats.admitted = 2
        stats.completed = 2
        stats.queue_wait.record(0.5)
        stats.e2e_latency.record(1.5)
        as_dict = stats.as_dict()
        assert as_dict["offered"] == 3
        assert as_dict["queue_wait_p99_s"] == pytest.approx(0.5)
        assert as_dict["latency_p50_s"] == pytest.approx(1.5)

    def test_summary_and_reset_cover_serving(self):
        registry = MetricsRegistry()
        registry.serving_lane("acme", "interactive").offered = 1
        assert "acme/interactive" in registry.summary()
        registry.reset()
        assert not registry.serving


class TestNetworkIntegration:
    def test_network_records_queries(self):
        from repro.core import BestPeerNetwork
        from repro.sqlengine import Column, ColumnType, TableSchema

        schemas = {
            "t": TableSchema("t", [Column("a", ColumnType.INTEGER)])
        }
        net = BestPeerNetwork(schemas)
        net.add_peer("p")
        net.load_peer("p", {"t": [(1,), (2,)]})
        net.execute("SELECT COUNT(*) FROM t", engine="basic")
        net.execute("SELECT a FROM t", engine="basic")
        assert net.metrics.total_queries == 2
        assert net.metrics.engine("single-peer").queries == 2
