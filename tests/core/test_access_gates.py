"""The §4.4 pushdown gate shared by every path that bypasses row rewriting.

The single-peer optimization, the MapReduce engine's map-side reads and
online aggregation's partial sums all move rows without going through
``execute_fetch``'s access rewriting — each must refuse (or step aside)
unless the user's role provably could not have masked anything.
"""

import pytest

from repro.core import READ, BestPeerNetwork, Role, rule
from repro.core.online_aggregation import online_aggregate
from repro.errors import AccessControlError
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

LINEITEM_SQL = "SELECT l_orderkey, l_quantity FROM lineitem"


@pytest.fixture(scope="module")
def net():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=5)
    # Only corp-1 hosts lineitem: lineitem queries qualify for the
    # single-peer optimization.
    net.add_peer("supplier-0", tables=["part", "partsupp", "supplier"])
    net.add_peer("corp-1", tables=["lineitem", "orders", "customer"])
    data = generator.generate_peer(0)
    net.load_peer(
        "supplier-0", {t: data[t] for t in ("part", "partsupp", "supplier")}
    )
    net.load_peer(
        "corp-1", {t: data[t] for t in ("lineitem", "orders", "customer")}
    )
    net.create_user("bench", "corp-1", net.create_full_access_role())
    limited = Role(
        "limited",
        [
            rule("lineitem.l_orderkey", [READ]),
            # Quantities only visible in [0, 10]: masking CAN apply.
            rule("lineitem.l_quantity", [READ], (0.0, 10.0)),
        ],
    )
    net.create_user("restricted", "corp-1", limited)
    return net


class TestSinglePeerGate:
    def test_unrestricted_user_keeps_the_shortcut(self, net):
        execution = net.execute(LINEITEM_SQL, engine="basic", user="bench")
        assert execution.strategy == "single-peer"

    def test_no_user_keeps_the_shortcut(self, net):
        execution = net.execute(LINEITEM_SQL, engine="basic")
        assert execution.strategy == "single-peer"

    def test_restricted_user_falls_back_to_the_masking_path(self, net):
        execution = net.execute(
            LINEITEM_SQL, engine="basic", user="restricted"
        )
        assert execution.strategy != "single-peer"
        quantities = execution.column("l_quantity")
        assert all(q is None or q <= 10.0 for q in quantities)
        assert any(q is None for q in quantities)  # something was masked

    def test_fallback_loses_no_rows(self, net):
        full = net.execute(LINEITEM_SQL, engine="basic", user="bench")
        masked = net.execute(LINEITEM_SQL, engine="basic", user="restricted")
        assert len(masked.records) == len(full.records)


class TestMapReduceGate:
    def test_unrestricted_user_runs(self, net):
        execution = net.execute(LINEITEM_SQL, engine="mapreduce", user="bench")
        assert execution.strategy == "mapreduce"
        assert len(execution.records) > 0

    def test_restricted_user_is_refused(self, net):
        # Map tasks read raw fragments; there is no masking fallback, so
        # the job must not run at all for a restricted role.
        with pytest.raises(AccessControlError):
            net.execute(LINEITEM_SQL, engine="mapreduce", user="restricted")


class TestOnlineAggregationGate:
    SQL = "SELECT SUM(l_quantity) FROM lineitem"

    def test_unrestricted_user_runs_to_completion(self, net):
        estimates = list(online_aggregate(net, self.SQL, user="bench"))
        assert estimates[-1].is_final

    def test_restricted_user_is_refused(self, net):
        # Partial sums are derived values no rule can rewrite.
        with pytest.raises(AccessControlError):
            list(online_aggregate(net, self.SQL, user="restricted"))
