"""Tests for distributed role-based access control."""

import pytest

from repro.core.access_control import (
    READ,
    WRITE,
    AccessController,
    AccessRule,
    Role,
    full_access_role,
    rule,
)
from repro.errors import AccessControlError
from repro.sqlengine import Column, ColumnType, TableSchema


def sales_role():
    """The paper's Role_sales example (§4.4)."""
    return Role(
        "sales",
        [
            rule("lineitem.l_extendedprice", [READ, WRITE], (0, 100)),
            rule("lineitem.l_shipdate", [READ]),
        ],
    )


class TestAccessRule:
    def test_unqualified_column_rejected(self):
        with pytest.raises(AccessControlError):
            rule("l_shipdate")

    def test_unknown_privilege_rejected(self):
        with pytest.raises(AccessControlError):
            AccessRule("t.c", frozenset({"execute"}))

    def test_empty_privileges_rejected(self):
        with pytest.raises(AccessControlError):
            AccessRule("t.c", frozenset())

    def test_range_check(self):
        r = rule("t.c", [READ], (0, 100))
        assert r.allows_value(50)
        assert r.allows_value(0)
        assert r.allows_value(100)
        assert not r.allows_value(101)
        assert r.allows_value(None)

    def test_null_range_allows_everything(self):
        assert rule("t.c", [READ]).allows_value(10**9)


class TestRoleOperators:
    def test_paper_example_privileges(self):
        role = sales_role()
        assert role.can_read("lineitem.l_shipdate")
        assert not role.can_write("lineitem.l_shipdate")
        assert role.can_write("lineitem.l_extendedprice")
        assert not role.can_read("lineitem.l_quantity")

    def test_inherit(self):
        derived = sales_role().inherit("junior_sales")
        assert derived.name == "junior_sales"
        assert derived.can_read("lineitem.l_shipdate")

    def test_plus_adds_rule(self):
        derived = sales_role().plus(rule("orders.o_totalprice", [READ]))
        assert derived.can_read("orders.o_totalprice")
        assert not sales_role().can_read("orders.o_totalprice")

    def test_plus_overrides_existing_rule(self):
        derived = sales_role().plus(rule("lineitem.l_shipdate", [READ, WRITE]))
        assert derived.can_write("lineitem.l_shipdate")

    def test_minus_removes_rule(self):
        derived = sales_role().minus("lineitem.l_shipdate")
        assert not derived.can_read("lineitem.l_shipdate")
        assert derived.can_read("lineitem.l_extendedprice")

    def test_minus_unknown_rule_rejected(self):
        with pytest.raises(AccessControlError):
            sales_role().minus("orders.o_orderkey")

    def test_nameless_role_rejected(self):
        with pytest.raises(AccessControlError):
            Role("")


class TestFullAccessRole:
    def test_grants_everything(self):
        schema = TableSchema(
            "t",
            [Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)],
        )
        role = full_access_role("R", [schema])
        assert role.can_read("t.a")
        assert role.can_write("t.b")


class TestAccessController:
    @pytest.fixture
    def controller(self):
        controller = AccessController()
        controller.assign("alice", sales_role())
        return controller

    def test_unknown_user_rejected(self, controller):
        with pytest.raises(AccessControlError):
            controller.role_of("mallory")

    def test_rewrite_masks_unreadable_columns(self, controller):
        rows = controller.rewrite_rows(
            "alice",
            "lineitem",
            ["l_quantity", "l_shipdate"],
            [(5.0, "1998-01-01")],
        )
        assert rows == [(None, "1998-01-01")]

    def test_rewrite_masks_out_of_range_values(self, controller):
        # The paper: "For extendedprice, only values in [0, 100] are shown,
        # the rest are marked as NULL."
        rows = controller.rewrite_rows(
            "alice",
            "lineitem",
            ["l_extendedprice", "l_shipdate"],
            [(50.0, "1998-01-01"), (250.0, "1998-02-02")],
        )
        assert rows == [(50.0, "1998-01-01"), (None, "1998-02-02")]

    def test_check_readable(self, controller):
        assert controller.check_readable(
            "alice", "lineitem", ["l_shipdate", "l_extendedprice"]
        )
        assert not controller.check_readable("alice", "lineitem", ["l_quantity"])

    def test_has_user(self, controller):
        assert controller.has_user("alice")
        assert not controller.has_user("bob")
