"""Tests for the parallel P2P engine (replicated joins, §5.3)."""

import pytest

from repro.core import BestPeerNetwork
from repro.sqlengine import Database
from repro.tpch import (
    Q3,
    Q4,
    Q5,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_PEERS = 3


@pytest.fixture(scope="module")
def network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=17)
    for index in range(NUM_PEERS):
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", generator.generate_peer(index))
    return net


@pytest.fixture(scope="module")
def oracle():
    db = Database()
    create_tpch_tables(db)
    generator = TpchGenerator(seed=17)
    for index in range(NUM_PEERS):
        for table, rows in generator.generate_peer(index).items():
            if table in ("nation", "region") and index > 0:
                continue
            db.table(table).insert_many(rows)
    return db


class TestCorrectness:
    def test_q3_matches_oracle(self, network, oracle):
        execution = network.execute(Q3(), engine="parallel")
        expected = oracle.execute(Q3())
        assert sorted(execution.records, key=repr) == sorted(
            expected.rows, key=repr
        )

    def test_q4_matches_oracle(self, network, oracle):
        execution = network.execute(Q4(), engine="parallel")
        expected = oracle.execute(Q4())
        assert {r[0]: r[1] for r in execution.records} == pytest.approx(
            {r[0]: r[1] for r in expected.rows}
        )

    def test_q5_matches_oracle(self, network, oracle):
        execution = network.execute(Q5(), engine="parallel")
        expected = oracle.execute(Q5())
        assert len(execution.records) == len(expected.rows)
        for got, want in zip(execution.records, expected.rows):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1])

    def test_single_table_aggregate(self, network, oracle):
        sql = "SELECT SUM(l_quantity) FROM lineitem"
        execution = network.execute(sql, engine="parallel")
        assert execution.scalar() == pytest.approx(oracle.execute(sql).scalar())

    def test_single_table_selection(self, network, oracle):
        sql = "SELECT l_orderkey FROM lineitem WHERE l_discount > 0.08"
        execution = network.execute(sql, engine="parallel")
        expected = oracle.execute(sql)
        assert sorted(execution.records) == sorted(expected.rows)


class TestParallelBehaviour:
    def test_strategy_label(self, network):
        assert network.execute(Q3(), engine="parallel").strategy == "parallel-p2p"

    def test_replication_ships_more_bytes_than_fetch(self, network):
        """The replicated join trades network cost for parallelism (§5.3)."""
        parallel = network.execute(Q5(), engine="parallel")
        basic = network.execute(Q5(), engine="basic")
        assert parallel.bytes_transferred > basic.bytes_transferred

    def test_per_level_timings_reported(self, network):
        execution = network.execute(Q5(), engine="parallel")
        level_keys = [k for k in execution.engine_details if k.startswith("level_")]
        # base scan + 3 joins + final collect
        assert len(level_keys) == 5

    def test_contacts_all_owner_peers(self, network):
        execution = network.execute(Q5(), engine="parallel")
        assert execution.peers_contacted == NUM_PEERS
