"""Survivable bootstrap end-to-end: crash, promotion, fencing, determinism.

The ISSUE acceptance scenarios for the HA bootstrap pair:

* primary crashes mid-workload -> a standby promotes within the lease
  timeout, a join issued during the outage eventually succeeds, and the
  final answers are identical to a fault-free run;
* a fail-over the old primary left in flight is finished by the promoted
  standby (two-record ``FailoverStarted``/``FailoverCompleted`` protocol);
* a partitioned-away ex-leader is fenced: it cannot commit admissions
  under its stale epoch, and no certificate serial is ever issued twice;
* the whole thing is bit-for-bit deterministic per seed.
"""

import pytest

from repro.bench import chaos_soak
from repro.core import BestPeerNetwork, NormalPeer
from repro.core import metalog
from repro.errors import StaleLeaderError
from repro.sim import FaultPlan, Partition, verify_bootstrap_invariants
from repro.tpch import Q1, Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

QUERIES = (Q2(), Q1(ship_date="1998-11-01"))


def build_network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=21, scale=0.25)
    for index in range(3):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    return net


def answers(net):
    return [sorted(map(tuple, net.execute(sql).records)) for sql in QUERIES]


def crash_plan(ordinal=2):
    return FaultPlan(seed=11, crash_after={ordinal: "bootstrap"})


def partition_plan():
    # The primary is cut off from everything (standby, lease service,
    # peers) for the rest of the run.
    return FaultPlan(
        seed=12,
        partitions=[Partition(group=("bootstrap",), start=1, end=10**9)],
    )


class TestCrashMidWorkload:
    def test_standby_promotes_and_join_succeeds_during_outage(self):
        def workload(net):
            first = answers(net)
            # For the fault run, the join lands while the primary is dead:
            # leader discovery inside resilience.call must promote the
            # standby and retry there.
            net.add_peer("late-joiner")
            net.load_peer(
                "late-joiner",
                TpchGenerator(seed=21, scale=0.25).generate_peer(3),
            )
            net.run_maintenance()
            return first, answers(net)

        baseline_net = build_network()
        baseline = workload(baseline_net)

        net = build_network()
        net.install_fault_plan(crash_plan())
        result = workload(net)

        cluster = net.bootstrap_cluster
        assert cluster.promotions == 1
        assert cluster.leader_id == "bootstrap-standby"
        assert cluster.epoch == 2
        assert cluster.leader.is_member("late-joiner")
        assert result == baseline  # answers identical, before and after
        verify_bootstrap_invariants(net)

    def test_promotion_waits_out_the_old_lease(self):
        net = build_network()
        cluster = net.bootstrap_cluster
        lease = cluster.service.lease
        assert lease is not None and lease.holder == "bootstrap"
        net.cloud.crash_instance(cluster.nodes["bootstrap"].host)
        before = net.clock.now
        blocked = cluster.recover()
        # The standby may only lead after the deposed primary's lease
        # lapsed — that wait *is* the promotion latency, and it is bounded
        # by the lease term.
        assert blocked == pytest.approx(lease.expires_at - before)
        assert blocked <= cluster.lease_config.duration_s
        assert cluster.leader_id == "bootstrap-standby"

    def test_admission_survives_on_promoted_standby(self):
        """The WAL replay claim: standby state == replayed primary log."""
        net = build_network()
        cluster = net.bootstrap_cluster
        replayed = metalog.replay(cluster.leader.log.entries)
        standby = cluster.nodes["bootstrap-standby"]
        assert sorted(replayed.peers) == sorted(standby.state.peers)
        assert standby.log.fingerprint() == cluster.leader.log.fingerprint()


class TestInFlightFailover:
    def test_promoted_standby_finishes_started_failover(self):
        net = build_network()
        cluster = net.bootstrap_cluster
        victim = net.peers["corp-1"]
        old_instance = victim.host
        # The primary durably declares the fail-over (first record of the
        # two-record protocol) ... and dies before completing it.
        cluster.leader._commit(
            metalog.FailoverStarted("corp-1", old_instance)
        )
        net.cloud.crash_instance(cluster.leader.host)
        report = net.run_maintenance()

        assert cluster.promotions == 1
        finished = [ev for ev in report.failovers if ev.peer_id == "corp-1"]
        assert len(finished) == 1
        assert finished[0].old_instance_id == old_instance
        assert cluster.leader.state.pending_failovers == {}
        new_instance = cluster.leader.state.peers["corp-1"].instance_id
        assert new_instance != old_instance
        assert victim.host == new_instance  # the peer was rebound
        verify_bootstrap_invariants(net)


class TestSplitBrainFencing:
    def test_partitioned_ex_leader_cannot_admit(self):
        net = build_network()
        net.install_fault_plan(partition_plan())
        net.add_peer("during-partition")  # forces promotion
        cluster = net.bootstrap_cluster
        assert cluster.promotions == 1
        assert cluster.leader_id == "bootstrap-standby"

        stale = cluster.nodes["bootstrap"]
        rogue = NormalPeer(
            "rogue", net.cloud.launch_instance("m1.small")
        )
        # The deposed primary is alive but cut off: its lease lapsed
        # during promotion and it cannot reach the lock service, so it
        # must self-fence rather than issue a certificate.
        with pytest.raises(StaleLeaderError):
            stale.register_peer(rogue, now=net.clock.now)
        assert not stale.is_member("rogue")

    def test_no_serial_issued_twice_across_epochs(self):
        net = build_network()
        net.install_fault_plan(partition_plan())
        net.add_peer("during-partition")
        cluster = net.bootstrap_cluster
        serials = {}
        for node_id in sorted(cluster.nodes):
            for entry in cluster.nodes[node_id].log.entries:
                record = entry.record
                if not record.describe().startswith("admit:"):
                    continue
                serial = record.certificate.serial
                seen = serials.setdefault(serial, record.describe())
                assert seen == record.describe()
        # Epoch-2 admissions live in a disjoint serial range from epoch 1.
        epoch2 = [
            entry.record.certificate.serial
            for entry in cluster.leader.log.entries
            if entry.epoch == 2
            and entry.record.describe().startswith("admit:")
        ]
        assert epoch2
        assert all(
            serial > metalog.SERIAL_STRIDE for serial in epoch2
        )
        verify_bootstrap_invariants(net)

    def test_each_admission_under_exactly_one_epoch(self):
        net = build_network()
        net.install_fault_plan(crash_plan())
        net.execute(QUERIES[0])
        net.add_peer("late-joiner")
        cluster = net.bootstrap_cluster
        epochs = cluster.leader.state.admission_epochs
        assert epochs["late-joiner"] == 2
        assert all(epoch == 1 for peer, epoch in epochs.items()
                   if peer != "late-joiner")


class TestDeterminism:
    def test_crash_run_bit_for_bit_repeatable(self):
        def one_pass():
            net = build_network()
            net.install_fault_plan(crash_plan())
            rows = answers(net)
            net.add_peer("late-joiner")
            cluster = net.bootstrap_cluster
            return (
                rows,
                cluster.leader.log.fingerprint(),
                tuple(cluster.service.transitions),
                cluster.promotions,
            )

        assert one_pass() == one_pass()


class TestSoakSmoke:
    def test_two_seed_soak_passes(self, tmp_path):
        out = tmp_path / "artifact.json"
        assert chaos_soak.soak(2, 0, str(out)) == 0
        assert not out.exists()

    def test_scenario_plans_always_crash_before_the_join(self):
        # The opening query batch completes exactly four transfers; every
        # derived crash ordinal must land inside it (see scenario_plans).
        for seed in range(32):
            plans = chaos_soak.scenario_plans(seed)
            for plan in plans.values():
                for ordinal in plan.crash_after:
                    assert 1 <= ordinal <= 4
