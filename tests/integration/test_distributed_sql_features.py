"""Distributed execution of the full SQL surface, checked against an oracle.

The per-figure tests cover the five benchmark queries; these cover the rest
of the dialect (HAVING, ORDER BY + LIMIT, DISTINCT, expressions, CASE) on
both systems and all BestPeer++ engines.
"""

import pytest

from repro.core import BestPeerNetwork
from repro.hadoopdb import HadoopDbCluster
from repro.sqlengine import Database
from repro.tpch import (
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_NODES = 3
SEED = 29


@pytest.fixture(scope="module")
def oracle():
    db = Database()
    create_tpch_tables(db)
    generator = TpchGenerator(seed=SEED)
    for index in range(NUM_NODES):
        for table, rows in generator.generate_peer(index).items():
            if table in ("nation", "region") and index > 0:
                continue
            db.table(table).insert_many(rows)
    return db


@pytest.fixture(scope="module")
def network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=SEED)
    for index in range(NUM_NODES):
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", generator.generate_peer(index))
    return net


@pytest.fixture(scope="module")
def hadoopdb():
    cluster = HadoopDbCluster(NUM_NODES)
    cluster.create_tables(TPCH_SCHEMAS.values(), SECONDARY_INDICES)
    generator = TpchGenerator(seed=SEED)
    for index in range(NUM_NODES):
        cluster.load_worker(index, generator.generate_peer(index))
    return cluster


QUERIES = {
    "having": (
        "SELECT l_suppkey, COUNT(*) FROM lineitem "
        "GROUP BY l_suppkey HAVING COUNT(*) > 100"
    ),
    "order_limit": (
        "SELECT o_orderkey, o_totalprice FROM orders "
        "ORDER BY o_totalprice DESC LIMIT 7"
    ),
    "distinct": "SELECT DISTINCT l_returnflag FROM lineitem",
    "expression_projection": (
        "SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net "
        "FROM lineitem WHERE l_shipdate > DATE '1998-06-01'"
    ),
    "avg_group": (
        "SELECT o_orderstatus, AVG(o_totalprice) FROM orders "
        "GROUP BY o_orderstatus"
    ),
    "join_order_limit": (
        "SELECT o_orderkey, l_linenumber FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 300000 "
        "ORDER BY o_orderkey, l_linenumber LIMIT 10"
    ),
    "case_aggregate": (
        "SELECT SUM(CASE WHEN l_discount > 0.05 THEN 1 ELSE 0 END) "
        "FROM lineitem"
    ),
}


def _rounded(rows):
    return [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


def _norm(rows):
    return sorted(_rounded(rows), key=repr)


class TestBestPeerEngines:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("engine", ["basic", "mapreduce"])
    def test_engine_matches_oracle(self, network, oracle, name, engine):
        sql = QUERIES[name]
        execution = network.execute(sql, engine=engine)
        expected = oracle.execute(sql)
        if "ORDER BY" in sql:
            # Order-sensitive comparison for ordered queries.
            assert _rounded(execution.records) == _rounded(expected.rows)
        else:
            assert _norm(execution.records) == _norm(expected.rows)

    @pytest.mark.parametrize(
        "name", ["having", "order_limit", "join_order_limit", "avg_group"]
    )
    def test_parallel_engine_matches_oracle(self, network, oracle, name):
        sql = QUERIES[name]
        execution = network.execute(sql, engine="parallel")
        expected = oracle.execute(sql)
        if "ORDER BY" in sql:
            assert len(execution.records) == len(expected.rows)
            for got, want in zip(execution.records, expected.rows):
                assert got[0] == want[0]
        else:
            assert _norm(execution.records) == _norm(expected.rows)


class TestHadoopDb:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_matches_oracle(self, hadoopdb, oracle, name):
        sql = QUERIES[name]
        result = hadoopdb.execute(sql)
        expected = oracle.execute(sql)
        if "ORDER BY" in sql:
            assert _rounded(result.records) == _rounded(expected.rows)
        else:
            assert _norm(result.records) == _norm(expected.rows)
