"""Chaos under load: crashes while per-tenant queues drain.

The acceptance bar: after a peer crash — or a bootstrap leader crash — in
the middle of a busy serving window, no admitted request is silently
lost.  Every one either completes, is shed with a counted reason, or
fails with a typed error that the SLO counters account for; and the whole
run replays bit-for-bit under the same seed.
"""

import pytest

from repro.core import (
    LANE_BULK,
    LANE_INTERACTIVE,
    BestPeerNetwork,
    ServingConfig,
)
from repro.serving import ServingRequest
from repro.tpch import Q1, Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

TENANTS = ("acme", "globex")


def build_network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=21, scale=0.2)
    for index in range(3):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    return net


def serving_config():
    # Small pool + queues so the crash lands while work is genuinely
    # queued; deadlines generous enough that recovery time (fail-over
    # restore) does not shed the whole backlog.
    return ServingConfig(
        workers=2,
        queue_depth=6,
        interactive_deadline_s=600.0,
        bulk_deadline_s=1200.0,
        bulk_backpressure_s=500.0,
    )


def request_schedule():
    """A fixed arrival plan: (tenant, lane, sql) at 1s spacing."""
    plan = []
    for index in range(12):
        tenant = TENANTS[index % 2]
        lane = LANE_BULK if index % 4 == 0 else LANE_INTERACTIVE
        sql = Q2() if index % 3 == 0 else Q1(ship_date="1998-11-01")
        plan.append((tenant, lane, sql))
    return plan


def run_scenario(crash):
    """Submit half the plan, crash mid-drain, submit the rest, drain."""
    net = build_network()
    door = net.attach_serving(serving_config())
    door.register_tenant("acme", 2.0)
    door.register_tenant("globex", 1.0)
    plan = request_schedule()
    tickets = []
    base = door.now
    for index, (tenant, lane, sql) in enumerate(plan):
        if index == 6:
            if crash == "peer":
                net.crash_peer("corp-1")
            elif crash == "bootstrap":
                # Kill the bootstrap leader *and* a peer: the fail-over
                # that recovers the peer must first promote the standby.
                net.crash_bootstrap()
                net.crash_peer("corp-2")
        tickets.append(
            door.submit(
                ServingRequest(tenant=tenant, lane=lane, sql=sql),
                now=max(door.now, base + 1.0 * index),
            )
        )
    end = door.drain()
    return net, door, tickets, end


def accounting_snapshot(net):
    return {
        key: stats.as_dict() for key, stats in sorted(net.metrics.serving.items())
    }


class TestNoSilentLoss:
    @pytest.mark.parametrize("crash", ["peer", "bootstrap"])
    def test_every_request_is_accounted_for(self, crash):
        net, door, tickets, _ = run_scenario(crash)
        admitted_tickets = sum(1 for ticket in tickets if ticket.admitted)
        shed_tickets = len(tickets) - admitted_tickets
        totals = {
            "offered": 0,
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "deadline_missed": 0,
        }
        for stats in net.metrics.serving.values():
            assert stats.offered == (
                stats.admitted + stats.shed + stats.deadline_missed
            )
            assert stats.admitted == stats.completed + stats.failed
            for field in totals:
                totals[field] += getattr(stats, field)
        assert totals["offered"] == len(tickets)
        # Every ticket-level rejection shows up in a counted column, and
        # admitted work ends as completed, failed (typed), or a counted
        # dispatch-time deadline drop — never vanishes.
        assert totals["shed"] + totals["deadline_missed"] >= shed_tickets
        assert totals["admitted"] + totals["shed"] + totals[
            "deadline_missed"
        ] == len(tickets)
        assert door.admission.backlog() == 0

    @pytest.mark.parametrize("crash", ["peer", "bootstrap"])
    def test_crash_recovery_really_ran(self, crash):
        net, _, _, _ = run_scenario(crash)
        # The crash landed mid-window: queries blocked on fail-over and
        # the crashed peer came back on a fresh instance.
        assert net.total_blocked_s > 0
        crashed = "corp-1" if crash == "peer" else "corp-2"
        assert net.peers[crashed].online
        if crash == "bootstrap":
            assert net.bootstrap_cluster.leader.epoch > 1

    def test_completions_still_happen_under_chaos(self):
        net, _, _, _ = run_scenario("peer")
        completed = sum(
            stats.completed for stats in net.metrics.serving.values()
        )
        assert completed > 0


class TestDeterminism:
    @pytest.mark.parametrize("crash", ["peer", "bootstrap"])
    def test_identical_runs_replay_exactly(self, crash):
        net_a, _, tickets_a, end_a = run_scenario(crash)
        net_b, _, tickets_b, end_b = run_scenario(crash)
        assert end_a == end_b
        assert [t.admitted for t in tickets_a] == [
            t.admitted for t in tickets_b
        ]
        assert [t.reason for t in tickets_a] == [t.reason for t in tickets_b]
        assert accounting_snapshot(net_a) == accounting_snapshot(net_b)
