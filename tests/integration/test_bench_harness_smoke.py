"""Smoke tests for the benchmark harness at tiny scale.

The real figures run under ``pytest benchmarks/``; these keep the harness
code covered by the fast test suite (2-node clusters, one query each).
"""

import pytest

from repro.bench.harness import (
    PerfPoint,
    latency_of,
    run_adaptive_comparison,
    run_performance_comparison,
)
from repro.bench.workloads import SupplyChainBench, closed_loop_throughput
from repro.tpch import Q1, Q3


class TestPerformanceHarness:
    def test_comparison_produces_both_systems(self):
        points = run_performance_comparison("Q1", Q1(), cluster_sizes=(2,))
        systems = {point.system for point in points}
        assert systems == {"BestPeer++", "HadoopDB"}
        for point in points:
            assert point.latency_s > 0
            assert point.nodes == 2

    def test_latency_of_lookup(self):
        points = [PerfPoint("X", "Q", 2, 1.5)]
        assert latency_of(points, "X", 2) == 1.5
        with pytest.raises(KeyError):
            latency_of(points, "Y", 2)

    def test_adaptive_comparison_runs_three_engines(self):
        points = run_adaptive_comparison(Q3(), cluster_sizes=(2,))
        assert {point.system for point in points} == {
            "P2P engine", "MapReduce engine", "Adaptive engine",
        }


class TestThroughputHarness:
    def test_supply_chain_round_trip(self):
        bench = SupplyChainBench(4, seed=3)
        supplier = bench.sample_role("supplier")
        retailer = bench.sample_role("retailer")
        assert len(supplier.service_times) == 2
        assert len(retailer.service_times) == 2
        # The heavy workload really is heavier.
        assert retailer.mean_service_time > supplier.mean_service_time
        assert closed_loop_throughput(supplier, 2) > closed_loop_throughput(
            retailer, 2
        )
