"""Chaos equivalence: seeded fault schedules must never change answers.

The TPC-H workload runs once fault-free and once under each seeded
:class:`FaultPlan`; results must be row-identical while the fault-tolerance
counters prove the faults actually happened and were absorbed (retries,
fail-overs, re-fetches) rather than silently skipped.
"""

import pytest

from repro.core import BestPeerNetwork
from repro.sim import ChaosHarness, FaultPlan, LinkFault, Outage
from repro.tpch import Q1, Q2, Q3, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator


def build_network():
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=21, scale=0.4)
    for index in range(3):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    return net


def harness(queries=None, engine="basic"):
    return ChaosHarness(
        build_network,
        queries or [Q2(), Q1(ship_date="1998-11-01")],
        engine=engine,
    )


# Three qualitatively different fault schedules (ISSUE acceptance: drops,
# transient unavailability, crash-during-query), all seeded.
def drop_plan():
    # seed 7 at p=0.35 deterministically drops four deliveries over this
    # workload — enough to prove the retry path ran.
    return FaultPlan(seed=7, drop_probability=0.35)


def outage_plan():
    # corp-1 runs on the second auto-launched instance; refuse a window of
    # deliveries so the query path must retry through it.
    return FaultPlan(seed=202, outages=[Outage("i-000002", start=1, end=4)])


def crash_plan():
    # corp-2's partition is still pending when transfer #1 completes: the
    # crash lands mid-query and forces an engine-level fail-over.
    return FaultPlan(seed=303, crash_after={1: "corp-2"})


class TestEquivalence:
    def test_answers_identical_under_all_plans(self):
        runs = harness().verify_equivalence(
            {
                "drops": drop_plan(),
                "outages": outage_plan(),
                "crash": crash_plan(),
            }
        )
        baseline = runs["baseline"]
        assert all(outcome.rows for outcome in baseline.outcomes)
        for name in ("drops", "outages", "crash"):
            assert runs[name].row_sets() == baseline.row_sets()
            assert runs[name].faults_seen > 0, name

    def test_fault_free_run_reports_zero_fault_counters(self):
        run = harness().run(None)
        assert run.retries == 0
        assert run.failovers == 0
        assert run.faults_seen == 0
        assert run.total_blocked_s == 0.0

    def test_chaos_run_reports_nonzero_counters(self):
        run = harness().run(drop_plan())
        assert run.dropped_messages > 0
        assert run.retries > 0
        crash_run = harness().run(crash_plan())
        assert crash_run.injected_crashes == 1
        assert crash_run.failovers >= 1
        assert crash_run.total_blocked_s > 0

    def test_combined_plan_with_slow_links(self):
        plan = FaultPlan(
            seed=404,
            drop_probability=0.1,
            link_faults=[
                LinkFault(src="i-000003", bandwidth_factor=0.25,
                          extra_latency_s=0.05)
            ],
            outages=[Outage("i-000001", start=2, end=4)],
        )
        runs = harness().verify_equivalence({"combined": plan})
        assert runs["combined"].faults_seen > 0

    def test_latency_grows_under_chaos_but_rows_do_not(self):
        h = harness(queries=[Q2()])
        baseline = h.run(None)
        chaotic = h.run(drop_plan())
        assert chaotic.row_sets() == baseline.row_sets()
        assert (
            chaotic.outcomes[0].latency_s > baseline.outcomes[0].latency_s
        )


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        h = harness()
        first = h.run(drop_plan())
        second = h.run(drop_plan())
        assert first.fingerprint() == second.fingerprint()

    def test_different_seed_different_schedule(self):
        h = harness()
        first = h.run(FaultPlan(seed=3, drop_probability=0.3))
        second = h.run(FaultPlan(seed=4, drop_probability=0.3))
        # The answers agree even though the fault schedules differ.
        assert first.row_sets() == second.row_sets()
        assert (
            first.dropped_messages != second.dropped_messages
            or first.retries != second.retries
        )

    def test_crash_schedule_deterministic(self):
        h = harness()
        assert (
            h.run(crash_plan()).fingerprint()
            == h.run(crash_plan()).fingerprint()
        )


class TestPartialRefetch:
    def test_crash_mid_query_refetches_only_failed_partition(self):
        """Sub-query recovery: the surviving partitions are not re-shipped.

        A crash mid-query costs at most the failed peer's partition again;
        a whole-query restart would roughly double the bytes moved.
        """
        h = harness(queries=[Q2()])
        baseline = h.run(None)
        crashed = h.run(crash_plan())
        assert crashed.row_sets() == baseline.row_sets()
        assert crashed.failovers >= 1
        extra = crashed.bytes_transferred - baseline.bytes_transferred
        assert extra <= 0.6 * baseline.bytes_transferred

    def test_refetch_visible_in_network_byte_counters(self):
        h = harness(queries=[Q2()])
        # Wire-level accounting (SimNetwork.total) includes wasted traffic;
        # even so, sub-query recovery keeps it well below a full restart.
        net_baseline = build_network()
        net_baseline.execute(Q2())
        wire_baseline = net_baseline.network.total.bytes

        net_chaos = build_network()
        net_chaos.install_fault_plan(crash_plan())
        net_chaos.execute(Q2())
        wire_chaos = net_chaos.network.total.bytes

        assert wire_chaos - wire_baseline <= 0.6 * wire_baseline


class TestParallelEngineUnderChaos:
    def test_join_query_survives_drops(self):
        h = harness(
            queries=[Q3(ship_date="1998-09-01", order_date="1998-09-01")],
            engine="parallel",
        )
        runs = h.verify_equivalence(
            {"drops": FaultPlan(seed=77, drop_probability=0.1)}
        )
        assert runs["drops"].row_sets() == runs["baseline"].row_sets()

    def test_join_query_survives_outage(self):
        h = harness(
            queries=[Q3(ship_date="1998-09-01", order_date="1998-09-01")],
            engine="parallel",
        )
        runs = h.verify_equivalence(
            {"outage": FaultPlan(seed=88,
                                 outages=[Outage("i-000003", 1, 3)])}
        )
        assert runs["outage"].faults_seen > 0
