"""A deterministic soak test: mixed operations against a live network.

Interleaves queries, refreshes, crashes (with fail-over), departures and
joins over many rounds, checking the network's answer against a recomputed
oracle after every mutation.  This is the closest the suite gets to a
long-running deployment.
"""

import random

import pytest

from repro.core import BestPeerNetwork
from repro.sqlengine import Column, ColumnType, Database, TableSchema


def schemas():
    return {
        "ledger": TableSchema(
            "ledger",
            [
                Column("entry_id", ColumnType.INTEGER),
                Column("account", ColumnType.TEXT),
                Column("amount", ColumnType.FLOAT),
            ],
            primary_key="entry_id",
        )
    }


def rows_for(company_index, version=0):
    rng = random.Random(f"{company_index}/{version}")
    base = company_index * 100_000
    return [
        (
            base + i,
            f"acct-{rng.randrange(5)}",
            round(rng.uniform(-500, 500), 2),
        )
        for i in range(40 + 5 * version)
    ]


class TestSoak:
    def test_thirty_rounds_of_churn(self):
        net = BestPeerNetwork(schemas())
        live = {}  # company index -> current version
        next_company = 0
        rng = random.Random(99)

        def add_company():
            nonlocal next_company
            company = next_company
            next_company += 1
            peer_id = f"co-{company}"
            net.add_peer(peer_id)
            net.load_peer(peer_id, {"ledger": rows_for(company)})
            live[company] = 0

        def oracle_total():
            db = Database()
            db.create_table(schemas()["ledger"])
            for company, version in live.items():
                db.table("ledger").insert_many(rows_for(company, version))
            return db.execute("SELECT SUM(amount) FROM ledger").scalar()

        for _ in range(4):
            add_company()

        for round_number in range(30):
            action = rng.choice(["query", "refresh", "crash", "churn"])
            if action == "refresh" and live:
                company = rng.choice(sorted(live))
                live[company] += 1
                net.refresh_peer(
                    f"co-{company}", "ledger",
                    rows_for(company, live[company]),
                )
            elif action == "crash" and len(live) > 1:
                company = rng.choice(sorted(live))
                peer = net.peers[f"co-{company}"]
                if peer.online:
                    net.crash_peer(f"co-{company}")
            elif action == "churn":
                if len(live) > 2 and rng.random() < 0.5:
                    company = rng.choice(sorted(live))
                    peer = net.peers[f"co-{company}"]
                    if peer.online:  # departed peers must be reachable
                        net.depart_peer(f"co-{company}")
                        del live[company]
                else:
                    add_company()
            # Every round: the network answer matches the oracle (crashed
            # peers are failed over transparently mid-query).
            answer = net.execute(
                "SELECT SUM(amount) FROM ledger", engine="basic"
            ).scalar()
            expected = oracle_total()
            assert answer == pytest.approx(expected), (
                f"diverged at round {round_number} after {action}"
            )

        # The run exercised real churn, not a single path.
        assert net.metrics.total_queries == 30
        assert next_company > 4
