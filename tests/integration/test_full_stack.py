"""Full-stack integration scenarios across subsystems."""

import pytest

from repro.core import BestPeerNetwork, InstanceMatcher, SchemaMapping
from repro.core.schema_mapping import TableMapping
from repro.sqlengine import Column, ColumnType, Database, TableSchema
from repro.tpch import (
    Q2,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)


def simple_schemas():
    return {
        "product": TableSchema(
            "product",
            [
                Column("p_id", ColumnType.INTEGER),
                Column("p_name", ColumnType.TEXT),
                Column("p_price", ColumnType.FLOAT),
            ],
            primary_key="p_id",
        )
    }


class TestHeterogeneousSchemaMapping:
    """Two companies with different local schemas share one global table."""

    def test_mapped_data_queryable_network_wide(self):
        net = BestPeerNetwork(simple_schemas())
        # Company A: identity schema.
        net.add_peer("acme")
        net.load_peer("acme", {"product": [(1, "anvil", 99.0), (2, "rope", 5.0)]})

        # Company B: a German ERP with different names and value terms.
        mapping = SchemaMapping(simple_schemas())
        mapping.add_table_mapping(
            TableMapping(
                local_table="artikel",
                global_table="product",
                column_map={"nr": "p_id", "bezeichnung": "p_name",
                            "preis": "p_price"},
                value_map={"p_name": {"amboss": "anvil"}},
            )
        )
        net.add_peer("gmbh", mapping=mapping)
        peer = net.peers["gmbh"]
        peer.load_initial(
            "artikel", ["nr", "bezeichnung", "preis"],
            [(100, "amboss", 120.0), (101, "seil", 7.5)],
            now=net.clock.now,
        )
        peer.publish_indices(net.indexers["gmbh"])
        for indexer in net.indexers.values():
            indexer.clear_cache()

        result = net.execute(
            "SELECT COUNT(*) FROM product WHERE p_name = 'anvil'",
            engine="basic",
        )
        assert result.scalar() == 2  # one from each company, terms unified


class TestDifferentialRefresh:
    def test_refresh_propagates_to_queries(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("acme")
        net.load_peer("acme", {"product": [(1, "anvil", 99.0)]})
        before = net.execute("SELECT SUM(p_price) FROM product").scalar()
        assert before == 99.0

        delta = net.refresh_peer(
            "acme", "product", [(1, "anvil", 89.0), (2, "rope", 5.0)]
        )
        assert len(delta.inserted) == 2  # price update = delete+insert
        assert len(delta.deleted) == 1
        after = net.execute("SELECT SUM(p_price) FROM product").scalar()
        assert after == pytest.approx(94.0)

    def test_refresh_survives_failover(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("acme")
        net.load_peer("acme", {"product": [(1, "anvil", 99.0)]})
        net.refresh_peer("acme", "product", [(1, "anvil", 50.0)])
        net.crash_peer("acme")
        result = net.execute("SELECT SUM(p_price) FROM product")
        # The refresh-time backup was restored, not the original one.
        assert result.scalar() == 50.0

    def test_refresh_updates_range_index(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("acme")
        net.add_peer("other")
        net.load_peer(
            "acme",
            {"product": [(1, "a", 10.0)]},
            range_columns={"product": ["p_price"]},
        )
        net.load_peer(
            "other",
            {"product": [(2, "b", 500.0)]},
            range_columns={"product": ["p_price"]},
        )
        # Initially only "other" holds prices above 100.
        lookup = net.indexers["acme"].locate("product", "p_price", low=100.0)
        assert lookup.peers == ["other"]
        # After acme's refresh introduces an expensive product, the range
        # index must include it again.
        net.refresh_peer(
            "acme",
            "product",
            [(1, "a", 10.0), (3, "c", 900.0)],
            range_columns={"product": ["p_price"]},
        )
        lookup = net.indexers["acme"].locate("product", "p_price", low=100.0)
        assert lookup.peers == ["acme", "other"]


class TestInstanceMatchingPipeline:
    def test_inferred_mapping_feeds_the_loader(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("reference")
        reference_rows = [(i, f"part-{i}", 10.0 + i) for i in range(50)]
        net.load_peer("reference", {"product": reference_rows})

        # A new business has a dump with opaque column names; infer the
        # mapping from the data, then join with it.
        matcher = InstanceMatcher(simple_schemas())
        matcher.register_global_sample("product", reference_rows)
        local_rows = [(i, f"part-{i}", 10.0 + i) for i in range(30, 70)]
        result = matcher.match("dump_t42", ["c0", "c1", "c2"], local_rows)
        assert result.global_table == "product"

        mapping = SchemaMapping(simple_schemas())
        mapping.add_table_mapping(result.mapping)
        net.add_peer("newcomer", mapping=mapping)
        peer = net.peers["newcomer"]
        peer.load_initial("dump_t42", ["c0", "c1", "c2"],
                          [(1000, "widget", 3.0)], now=net.clock.now)
        peer.publish_indices(net.indexers["newcomer"])
        for indexer in net.indexers.values():
            indexer.clear_cache()
        total = net.execute("SELECT COUNT(*) FROM product").scalar()
        assert total == 51


class TestAutoScalingEffect:
    def test_upgraded_instance_answers_faster(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("busy")
        rows = [(i, f"p{i}", float(i)) for i in range(2000)]
        net.load_peer("busy", {"product": rows})

        slow = net.execute("SELECT SUM(p_price) FROM product").latency_s

        # The daemon sees an overloaded CPU and upgrades the instance.
        net.peers["busy"].record_busy(10_000.0)  # sustained load this epoch
        report = net.run_maintenance()
        assert any(event.action == "upgrade" for event in report.scalings)

        fast = net.execute("SELECT SUM(p_price) FROM product").latency_s
        assert fast < slow  # more compute units -> faster local processing


class TestChurnUnderQueries:
    def test_engines_agree_with_oracle_through_churn(self):
        net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
        generator = TpchGenerator(seed=31, scale=0.5)
        for index in range(3):
            net.add_peer(f"corp-{index}")
            net.load_peer(f"corp-{index}", generator.generate_peer(index))

        def oracle(peer_indices):
            db = Database()
            create_tpch_tables(db)
            for position, index in enumerate(peer_indices):
                for table, rows in generator.generate_peer(index).items():
                    if table in ("nation", "region") and position > 0:
                        continue
                    db.table(table).insert_many(rows)
            return db

        sql = Q2(ship_date="1995-01-01")
        assert net.execute(sql).scalar() == pytest.approx(
            oracle([0, 1, 2]).execute(sql).scalar()
        )

        net.depart_peer("corp-1")
        assert net.execute(sql).scalar() == pytest.approx(
            oracle([0, 2]).execute(sql).scalar()
        )

        net.add_peer("corp-3")
        net.load_peer("corp-3", generator.generate_peer(3))
        for engine in ("basic", "mapreduce"):
            assert net.execute(sql, engine=engine).scalar() == pytest.approx(
                oracle([0, 2, 3]).execute(sql).scalar()
            )


class TestPayAsYouGoBilling:
    def test_instance_hours_accrue(self):
        net = BestPeerNetwork(simple_schemas())
        net.add_peer("acme")
        net.load_peer("acme", {"product": [(1, "a", 1.0)]})
        instance = net.peers["acme"].instance
        charge = net.cloud.bill(instance.instance_id, hours=24.0)
        assert charge == pytest.approx(24.0 * 0.08)
        assert instance.accumulated_cost_usd == pytest.approx(charge)

    def test_query_costs_scale_with_data(self):
        net = BestPeerNetwork(simple_schemas())
        for peer_id, count in [("small", 10), ("big", 1000)]:
            net.add_peer(peer_id)
        net.load_peer("small", {"product": [(i, "x", 1.0) for i in range(10)]})
        net.load_peer(
            "big", {"product": [(10_000 + i, "x", 1.0) for i in range(1000)]}
        )
        cheap = net.execute(
            "SELECT p_id FROM product WHERE p_id < 100", engine="basic"
        )
        pricey = net.execute("SELECT p_id FROM product", engine="basic")
        assert pricey.dollar_cost > cheap.dollar_cost
