"""Tests for less-travelled execution paths across the systems."""

import pytest

from repro.core import BestPeerNetwork
from repro.errors import BestPeerError
from repro.hadoopdb import HadoopDbCluster
from repro.sqlengine import Database
from repro.tpch import (
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_NODES = 3
SEED = 37


@pytest.fixture(scope="module")
def trio():
    generator = TpchGenerator(seed=SEED, scale=0.5)
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    cluster = HadoopDbCluster(NUM_NODES)
    cluster.create_tables(TPCH_SCHEMAS.values(), SECONDARY_INDICES)
    oracle = Database()
    create_tpch_tables(oracle)
    for index in range(NUM_NODES):
        data = generator.generate_peer(index)
        net.add_peer(f"corp-{index}")
        net.load_peer(f"corp-{index}", data)
        cluster.load_worker(index, data)
        for table, rows in data.items():
            if table in ("nation", "region") and index > 0:
                continue
            oracle.table(table).insert_many(rows)
    return net, cluster, oracle


COUNT_DISTINCT = "SELECT COUNT(DISTINCT l_suppkey) FROM lineitem"


class TestNonDecomposableAggregates:
    """COUNT(DISTINCT ...) cannot use partial aggregation — both systems
    must fall back to shuffling raw rows and still be exact."""

    def test_bestpeer_basic(self, trio):
        net, _, oracle = trio
        execution = net.execute(COUNT_DISTINCT, engine="basic")
        assert execution.scalar() == oracle.execute(COUNT_DISTINCT).scalar()

    def test_bestpeer_mapreduce(self, trio):
        net, _, oracle = trio
        execution = net.execute(COUNT_DISTINCT, engine="mapreduce")
        assert execution.scalar() == oracle.execute(COUNT_DISTINCT).scalar()

    def test_hadoopdb(self, trio):
        _, cluster, oracle = trio
        result = cluster.execute(COUNT_DISTINCT)
        assert result.records[0][0] == oracle.execute(COUNT_DISTINCT).scalar()

    def test_grouped_count_distinct(self, trio):
        net, _, oracle = trio
        sql = (
            "SELECT l_returnflag, COUNT(DISTINCT l_suppkey) FROM lineitem "
            "GROUP BY l_returnflag"
        )
        execution = net.execute(sql, engine="basic")
        expected = oracle.execute(sql)
        assert sorted(execution.records) == sorted(expected.rows)


class TestEmptyResults:
    def test_selective_predicate_matches_nothing(self, trio):
        net, cluster, _ = trio
        sql = "SELECT l_orderkey FROM lineitem WHERE l_quantity > 10000"
        assert len(net.execute(sql, engine="basic").records) == 0
        assert len(net.execute(sql, engine="mapreduce").records) == 0
        assert len(cluster.execute(sql).records) == 0

    def test_scalar_aggregate_over_empty_selection(self, trio):
        net, cluster, _ = trio
        sql = "SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity > 10000"
        assert net.execute(sql, engine="basic").scalar() is None
        assert cluster.execute(sql).records[0][0] is None

    def test_count_over_empty_selection_is_zero(self, trio):
        net, _, _ = trio
        sql = "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10000"
        assert net.execute(sql, engine="basic").scalar() == 0

    def test_join_with_empty_side(self, trio):
        net, _, _ = trio
        sql = (
            "SELECT o_orderkey, l_quantity FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey AND o_totalprice > 10000000"
        )
        assert len(net.execute(sql, engine="basic").records) == 0


class TestQueryExecutionApi:
    def test_column_and_scalar_errors(self, trio):
        net, _, _ = trio
        execution = net.execute(
            "SELECT l_orderkey, l_quantity FROM lineitem", engine="basic"
        )
        with pytest.raises(BestPeerError):
            execution.column("nope")
        with pytest.raises(BestPeerError):
            execution.scalar()
        assert len(execution.column("l_quantity")) == len(execution)


class TestRetryExhaustion:
    def test_unrecoverable_peer_raises_after_retries(self):
        net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
        net.add_peer("solo")
        net.load_peer(
            "solo", TpchGenerator(seed=1, scale=0.2).generate_peer(0),
            backup=True,
        )
        # Crash the peer and break the cloud's ability to fail it over by
        # crashing every replacement the daemon launches.
        original_launch = net.cloud.launch_instance

        def doomed_launch(*args, **kwargs):
            instance = original_launch(*args, **kwargs)
            net.cloud.crash_instance(instance.instance_id)
            return instance

        net.crash_peer("solo")
        net.cloud.launch_instance = doomed_launch
        with pytest.raises(Exception):
            net.execute("SELECT COUNT(*) FROM lineitem", engine="basic")
