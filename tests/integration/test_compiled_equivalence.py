"""Fast execution modes must be observationally identical to interpreted.

The acceptance bar for expression compilation and vectorization (and the
reason the batch path is safe to enable by default): over the full TPC-H
benchmark suite, all three execution modes return byte-identical rows and
identical :class:`ExecStats` — and therefore, at the network level,
identical simulated bytes and latency.  A fast path may only change how
fast the reproduction runs, never a figure it produces.
"""

from dataclasses import asdict

import pytest

from repro.core import BestPeerNetwork
from repro.sqlengine import Database, EXECUTION_MODES
from repro.tpch import (
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    TpchGenerator,
    create_tpch_tables,
)

NUM_PEERS = 3
FAST_MODES = tuple(mode for mode in EXECUTION_MODES if mode != "interpreted")
SUITE = (
    ("q1", Q1()),
    ("q2", Q2()),
    ("q3", Q3()),
    ("q4", Q4()),
    ("q5", Q5()),
)


def build_oracle(execution_mode: str) -> Database:
    """One local database holding the union of every peer's partition."""
    db = Database("oracle", execution_mode=execution_mode)
    create_tpch_tables(db)
    generator = TpchGenerator(seed=11, scale=0.4)
    for index in range(NUM_PEERS):
        for table, rows in generator.generate_peer(index).items():
            if table in ("nation", "region") and index > 0:
                continue  # replicated dimension tables
            db.table(table).insert_many(rows)
    return db


def build_network(execution_mode: str) -> BestPeerNetwork:
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=11, scale=0.4)
    for index in range(NUM_PEERS):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
        net.peers[peer_id].database.execution_mode = execution_mode
    return net


class TestLocalSuite:
    @pytest.mark.parametrize("mode", FAST_MODES)
    @pytest.mark.parametrize("name,sql", SUITE)
    def test_rows_and_stats_identical(self, mode, name, sql):
        interpreted = build_oracle("interpreted").execute(sql)
        fast = build_oracle(mode).execute(sql)
        assert interpreted.rows == fast.rows
        assert asdict(interpreted.stats) == asdict(fast.stats)
        # Guard against a vacuous pass: the suite's selectivities are tuned
        # to return data.
        assert len(fast.rows) > 0


class TestDistributedSuite:
    @pytest.mark.parametrize("mode", FAST_MODES)
    @pytest.mark.parametrize("engine", ["basic", "parallel"])
    def test_records_and_simulated_costs_identical(self, mode, engine):
        interpreted_net = build_network("interpreted")
        fast_net = build_network(mode)
        for name, sql in SUITE:
            interpreted = interpreted_net.execute(sql, engine=engine)
            fast = fast_net.execute(sql, engine=engine)
            assert interpreted.records == fast.records, name
            # ExecStats invariance propagates: every simulated figure the
            # paper reproduction reports is mode-independent.
            assert interpreted.bytes_transferred == fast.bytes_transferred
            assert interpreted.latency_s == fast.latency_s
            assert interpreted.strategy == fast.strategy

    @pytest.mark.parametrize("mode", FAST_MODES)
    def test_repeated_queries_hit_the_plan_cache(self, mode):
        net = build_network(mode)
        sql = Q3()
        first = net.execute(sql, engine="basic")
        second = net.execute(sql, engine="basic")
        assert first.records == second.records
        # The broadcast subquery is prepared once per owner set and the
        # repeated statement reuses cached plans: hits must be visible in
        # the synced network metrics.
        assert net.metrics.plan_cache_hits > 0
        assert net.metrics.plan_cache_misses > 0
