"""SIM003: nondeterministic set iteration feeding ordered results."""


class TestPositive:
    def test_for_loop_over_set_literal_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def emit(out):
                for host in {"a", "b", "c"}:
                    out.append(host)
            """,
        )
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_for_loop_over_set_variable_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def emit(rows):
                seen = set()
                for row in rows:
                    seen.add(row[0])
                result = []
                for key in seen:
                    result.append(key)
                return result
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 6

    def test_list_comprehension_over_set_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def keys(mapping):
                touched = set(mapping)
                return [key for key in touched]
            """,
        )
        assert len(findings) == 1

    def test_list_call_on_set_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def snapshot(hosts: set) -> list:
                return list(hosts)
            """,
        )
        assert len(findings) == 1

    def test_annotated_parameter_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            from typing import Set

            def emit(peer_ids: Set[str]):
                return [peer for peer in peer_ids]
            """,
        )
        assert len(findings) == 1

    def test_self_attribute_set_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            class Network:
                def __init__(self):
                    self._hosts = set()

                def dump(self):
                    return [host for host in self._hosts]
            """,
        )
        assert len(findings) == 1

    def test_set_union_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def merge(left: set, right: set):
                return list(left | right)
            """,
        )
        assert len(findings) == 1

    def test_join_over_set_fires(self, reported):
        findings = reported(
            "SIM003",
            """\
            def render(names: set) -> str:
                return ", ".join(names)
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_sorted_iteration_is_clean(self, reported):
        assert not reported(
            "SIM003",
            """\
            def emit(peer_ids: set):
                return [peer for peer in sorted(peer_ids)]
            """,
        )

    def test_order_insensitive_consumers_are_clean(self, reported):
        assert not reported(
            "SIM003",
            """\
            def stats(values: set):
                return sum(v for v in values), max(values), len(values)
            """,
        )

    def test_membership_test_is_clean(self, reported):
        assert not reported(
            "SIM003",
            """\
            def keep(rows, wanted: set):
                return [row for row in rows if row[0] in wanted]
            """,
        )

    def test_list_iteration_is_clean(self, reported):
        assert not reported(
            "SIM003",
            """\
            def emit(peers: list):
                return [peer for peer in peers]
            """,
        )

    def test_dict_iteration_is_clean(self, reported):
        # Python dicts are insertion-ordered, hence deterministic here.
        assert not reported(
            "SIM003",
            """\
            def emit(stats: dict):
                return [key for key in stats]
            """,
        )

    def test_set_to_set_is_clean(self, reported):
        assert not reported(
            "SIM003",
            """\
            def copy_of(hosts: set):
                return {host for host in hosts}
            """,
        )

    def test_not_applied_to_tests_category(self, reported):
        assert not reported(
            "SIM003",
            """\
            def check(hosts: set):
                return list(hosts)
            """,
            path="tests/test_fake.py",
        )


class TestSuppression:
    def test_standalone_allow_with_reason(self, analyze):
        findings = analyze(
            "SIM003",
            """\
            def first(single: set):
                # repro: allow[SIM003] singleton set by construction
                return next(iter(single))
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert "singleton" in findings[0].justification
