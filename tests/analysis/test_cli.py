"""The ``python -m repro.analysis`` entry point, driven through main()."""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.baseline import Baseline


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A tiny scan tree with one dirty file; cwd moved into it."""
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "dirty.py").write_text(
        "import random\nx = random.random()\n"
    )
    (src / "clean.py").write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def justify_baseline(tree, reason="deliberate: test fixture noise"):
    """Replace the write-time TODO placeholder with a real justification."""
    path = tree / "analysis-baseline.json"
    payload = json.loads(path.read_text())
    for entry in payload["entries"]:
        entry["justification"] = reason
    path.write_text(json.dumps(payload))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        (tree / "src" / "repro" / "dirty.py").unlink()
        assert main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert "dirty.py:2" in out

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["no/such/dir"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_select_exits_two(self, tree, capsys):
        assert main(["--select", "NOPE999", "src"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule id: 'NOPE999'" in err
        # The error lists every valid id so the fix is a copy-paste away.
        for rule_id in ("SIM001", "SEC001", "RES001", "ARCH001"):
            assert rule_id in err


class TestSelect:
    def test_select_limits_rules(self, tree, capsys):
        assert main(["--select", "SIM002", "src"]) == 0
        assert main(["--select", "sim001", "src"]) == 1


class TestJson:
    def test_json_output_parses(self, tree, capsys):
        assert main(["--json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "SIM001"


class TestListRules:
    def test_list_rules_prints_all_ids(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "SIM001",
            "SIM002",
            "SIM003",
            "SIM004",
            "ISO001",
            "ISO002",
            "CFG001",
        ):
            assert rule_id in out


class TestGraphSubcommand:
    def test_dot_export_names_the_scanned_modules(self, tree, capsys):
        assert main(["graph", "src"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph repro_imports {")
        assert '"repro.dirty"' in out
        assert '"repro.clean"' in out
        assert out.count("{") == out.count("}")

    def test_json_export_parses(self, tree, capsys):
        assert main(["graph", "--format", "json", "src"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        names = [module["name"] for module in payload["modules"]]
        assert "repro.dirty" in names

    def test_out_writes_the_file(self, tree, capsys):
        assert main(["graph", "--out", "deps.dot", "src"]) == 0
        assert "wrote dot graph" in capsys.readouterr().out
        assert (tree / "deps.dot").read_text().startswith("digraph")

    def test_syntax_error_exits_two(self, tree, capsys):
        (tree / "src" / "repro" / "broken.py").write_text("def broken(:\n")
        assert main(["graph", "src"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["graph", "no/such/dir"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAstCache:
    def test_lint_and_graph_share_one_cache(self, tree, capsys):
        assert main(["--ast-cache", ".ast-cache", "src"]) == 1
        cached = set((tree / ".ast-cache").iterdir())
        assert cached  # the lint pass populated it
        capsys.readouterr()
        assert main(["graph", "--ast-cache", ".ast-cache", "src"]) == 0
        # The graph pass parsed the same sources: nothing new was written.
        assert set((tree / ".ast-cache").iterdir()) == cached

    def test_results_match_without_a_cache(self, tree, capsys):
        assert main(["--json", "src"]) == 1
        uncached = json.loads(capsys.readouterr().out)
        assert main(["--json", "--ast-cache", ".ast-cache", "src"]) == 1
        cached = json.loads(capsys.readouterr().out)
        assert cached["findings"] == uncached["findings"]

    def test_unusable_cache_dir_exits_two(self, tree, capsys):
        (tree / "blocker").write_text("a file, not a directory\n")
        assert main(["--ast-cache", "blocker/nested", "src"]) == 2
        assert "AST cache" in capsys.readouterr().err


class TestBaselineFlow:
    def test_write_then_justify_then_pass(self, tree, capsys):
        assert main(["--write-baseline", "src"]) == 0
        assert "1 entry" in capsys.readouterr().out

        # A freshly written baseline stamps each entry with a TODO
        # justification for a human to replace.
        baseline = Baseline.load("analysis-baseline.json")
        assert baseline.entries[0].justification == "TODO: justify or fix"
        assert main(["src"]) == 0

    def test_baselined_finding_no_longer_fails(self, tree, capsys):
        main(["--write-baseline", "src"])
        capsys.readouterr()
        assert main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_file(self, tree, capsys):
        main(["--write-baseline", "src"])
        capsys.readouterr()
        assert main(["--no-baseline", "src"]) == 1

    def test_strict_baseline_fails_on_stale_entries(self, tree, capsys):
        main(["--write-baseline", "src"])
        justify_baseline(tree)  # isolate staleness from the TODO gate
        capsys.readouterr()
        (tree / "src" / "repro" / "dirty.py").write_text("x = 1\n")
        assert main(["src"]) == 0
        assert "stale" in capsys.readouterr().out
        assert main(["--strict-baseline", "src"]) == 1

    def test_explicit_missing_baseline_exits_two(self, tree, capsys):
        assert main(["--baseline", "nope.json", "src"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestPruneBaseline:
    def test_prune_rewrites_the_file_and_lists_entries(self, tree, capsys):
        main(["--write-baseline", "src"])
        capsys.readouterr()
        # Fix the grandfathered finding, then prune its stale entry.
        (tree / "src" / "repro" / "dirty.py").write_text("x = 1\n")
        assert main(["--prune-baseline", "src"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1" in out
        assert "SIM001" in out
        assert not Baseline.load("analysis-baseline.json").entries
        # A pruned baseline satisfies the strict check again.
        assert main(["--strict-baseline", "src"]) == 0

    def test_prune_on_clean_baseline_is_a_no_op(self, tree, capsys):
        main(["--write-baseline", "src"])
        before = (tree / "analysis-baseline.json").read_text()
        capsys.readouterr()
        assert main(["--prune-baseline", "src"]) == 0
        assert "no stale entries" in capsys.readouterr().out
        assert (tree / "analysis-baseline.json").read_text() == before

    def test_prune_without_a_baseline_exits_two(self, tree, capsys):
        assert main(["--prune-baseline", "src"]) == 2
        assert "needs a baseline file" in capsys.readouterr().err


class TestStrictBaselinePlaceholders:
    def test_placeholder_entry_fails_strict_with_exit_two(self, tree, capsys):
        main(["--write-baseline", "src"])
        capsys.readouterr()
        # The entry still carries the write-time TODO: a suppression
        # nobody reviewed is a configuration error under --strict-baseline.
        assert main(["--strict-baseline", "src"]) == 2
        err = capsys.readouterr().err
        assert "unjustified" in err
        assert "SIM001" in err
        assert "dirty.py" in err

    def test_placeholders_reported_but_tolerated_without_strict(
        self, tree, capsys
    ):
        main(["--write-baseline", "src"])
        capsys.readouterr()
        assert main(["src"]) == 0
        assert "unjustified" in capsys.readouterr().err

    def test_justified_baseline_passes_strict(self, tree, capsys):
        main(["--write-baseline", "src"])
        justify_baseline(tree)
        capsys.readouterr()
        assert main(["--strict-baseline", "src"]) == 0
        assert "unjustified" not in capsys.readouterr().err

    def test_mixed_baseline_lists_only_the_placeholders(self, tree, capsys):
        (tree / "src" / "repro" / "dirty2.py").write_text(
            "import random\ny = random.random()\n"
        )
        main(["--write-baseline", "src"])
        # Justify one of the two entries; the other keeps its TODO.
        path = tree / "analysis-baseline.json"
        payload = json.loads(path.read_text())
        payload["entries"][0]["justification"] = "deliberate: fixture"
        path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["--strict-baseline", "src"]) == 2
        err = capsys.readouterr().err
        assert "1 baseline entry still unjustified" in err


class TestSarifOutput:
    def test_sarif_writes_a_parseable_log(self, tree, capsys):
        assert main(["--sarif", "out.sarif", "src"]) == 1
        doc = json.loads((tree / "out.sarif").read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert any(r["ruleId"] == "SIM001" for r in run["results"])

    def test_sarif_composes_with_json_stdout(self, tree, capsys):
        assert main(["--sarif", "out.sarif", "--json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "SIM001"
        assert (tree / "out.sarif").exists()


class TestEffectsSubcommand:
    def test_default_dump_lists_impure_functions(self, tree, capsys):
        assert main(["effects", "src"]) == 0
        out = capsys.readouterr().out
        assert "repro.dirty" in out
        assert "global_random" in out
        assert "pure" in out  # the summary line

    def test_json_dump_parses_and_is_versioned(self, tree, capsys):
        assert main(["effects", "--format", "json", "src"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"].startswith("effects")
        assert payload["total"] >= payload["pure"]
        impure = payload["functions"]
        assert any("repro.dirty" in qual for qual in impure)

    def test_who_touches_reports_witnessed_matches(self, tree, capsys):
        assert main(["effects", "--who-touches", "random", "src"]) == 0
        out = capsys.readouterr().out
        assert "repro.dirty" in out
        assert "via:" in out
        assert "random.random(...)" in out

    def test_who_touches_clock_on_a_clean_tree(self, tree, capsys):
        assert main(["effects", "--who-touches", "clock", "src"]) == 0
        out = capsys.readouterr().out
        assert "0 function(s)" in out

    def test_signature_query(self, tree, capsys):
        assert main(["effects", "--signature", "repro.dirty", "src"]) == 0
        out = capsys.readouterr().out
        assert "global_random" in out

    def test_unknown_signature_exits_two(self, tree, capsys):
        assert main(
            ["effects", "--signature", "repro.nope.f", "src"]
        ) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_out_writes_the_report_file(self, tree, capsys):
        assert main([
            "effects", "--format", "json", "--out",
            "effect-signatures.json", "src",
        ]) == 0
        payload = json.loads((tree / "effect-signatures.json").read_text())
        assert payload["version"].startswith("effects")

    def test_effects_reuses_the_shared_ast_cache(self, tree, capsys):
        assert main(["--ast-cache", ".ast-cache", "src"]) == 1
        capsys.readouterr()
        before = set((tree / ".ast-cache").iterdir())
        assert main(["effects", "--ast-cache", ".ast-cache", "src"]) == 0
        # parse entries are shared; the effects pass adds only its own
        # aux payloads, never re-parses
        after = set((tree / ".ast-cache").iterdir())
        assert before <= after
