"""Suppression-grammar edge cases: shared lines and multi-line calls."""

import textwrap

from repro.analysis import analyze_source, get_rule


def _analyze(rule_ids, source):
    return analyze_source(
        textwrap.dedent(source),
        path="src/repro/fake.py",
        rules=[get_rule(rule_id) for rule_id in rule_ids],
    )


class TestSharedLine:
    SOURCE = """\
    import time

    def snapshot(rows):
        return (time.time(), sorted(rows, key=id))
    """

    def test_single_rule_allow_leaves_the_other_reported(self):
        source = self.SOURCE.replace(
            "key=id))", "key=id))  # repro: allow[SIM002] wall time is part of the snapshot"
        )
        findings = _analyze(["SIM002", "SIM004"], source)
        by_rule = {finding.rule: finding for finding in findings}
        assert by_rule["SIM002"].suppressed
        assert by_rule["SIM004"].reported

    def test_both_rules_can_share_one_allow(self):
        source = self.SOURCE.replace(
            "key=id))", "key=id))  # repro: allow[SIM002,SIM004] debug snapshot"
        )
        findings = _analyze(["SIM002", "SIM004"], source)
        assert all(finding.suppressed for finding in findings)
        assert all(
            finding.justification == "debug snapshot" for finding in findings
        )


class TestMultiLineCalls:
    def test_standalone_allow_inside_a_call_covers_the_next_line(self):
        # The engines' idiom: the comment sits on its own line between the
        # call's open paren and the flagged argument line.
        (finding,) = _analyze(
            ["SIM003"],
            """\
            def pick(fire):
                the_peers = {1}
                return fire(
                    # repro: allow[SIM003] singleton set
                    next(iter(the_peers))
                )
            """,
        )
        assert finding.suppressed
        assert finding.justification == "singleton set"

    def test_standalone_allow_above_the_call_covers_its_first_line(self):
        (finding,) = _analyze(
            ["SIM003"],
            """\
            def pick():
                the_peers = {1}
                # repro: allow[SIM003] singleton set
                return list(
                    the_peers
                )
            """,
        )
        assert finding.suppressed

    def test_inline_allow_on_an_interior_line_misses_the_call_line(self):
        # Findings anchor at the call's first physical line; an inline
        # comment further down annotates the wrong line and must not hide
        # the finding.
        (finding,) = _analyze(
            ["SIM003"],
            """\
            def pick():
                the_peers = {1}
                return list(
                    the_peers  # repro: allow[SIM003] wrong line
                )
            """,
        )
        assert finding.reported
