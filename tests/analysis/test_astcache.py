"""The content-keyed AST cache shared by the lint and graph passes."""

import ast

import pytest

from repro.analysis.astcache import AstCache, cache_key


class TestKeys:
    def test_key_is_content_addressed(self):
        assert cache_key("x = 1\n") == cache_key("x = 1\n")
        assert cache_key("x = 1\n") != cache_key("x = 2\n")


class TestRoundTrip:
    def test_second_parse_is_a_hit_with_an_equal_tree(self, tmp_path):
        cache = AstCache(str(tmp_path / "cache"))
        source = "def f():\n    return 1\n"
        first = cache.parse(source, filename="a.py")
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.parse(source, filename="a.py")
        assert (cache.hits, cache.misses) == (1, 1)
        assert ast.dump(first) == ast.dump(second)

    def test_corrupt_entry_falls_back_to_parsing(self, tmp_path):
        cache = AstCache(str(tmp_path / "cache"))
        source = "x = 1\n"
        cache.parse(source, filename="a.py")
        (entry,) = (tmp_path / "cache").iterdir()
        entry.write_bytes(b"not a pickle")
        tree = cache.parse(source, filename="a.py")
        assert isinstance(tree, ast.Module)
        assert cache.misses == 2

    def test_syntax_errors_propagate_and_are_not_cached(self, tmp_path):
        cache = AstCache(str(tmp_path / "cache"))
        with pytest.raises(SyntaxError):
            cache.parse("def broken(:\n", filename="a.py")
        assert list((tmp_path / "cache").iterdir()) == []
