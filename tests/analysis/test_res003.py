"""RES003: unbounded buffers on serving paths."""

SERVING_PATH = "src/repro/serving/fake.py"


def test_unbounded_deque_in_serving_package_flagged(reported):
    findings = reported(
        "RES003",
        """
        from collections import deque

        class FrontDoor:
            def __init__(self):
                self.pending = deque()
        """,
        path=SERVING_PATH,
    )
    assert len(findings) == 1
    assert "maxlen" in findings[0].message


def test_bounded_deque_is_clean(reported):
    assert not reported(
        "RES003",
        """
        from collections import deque

        class FrontDoor:
            def __init__(self, depth):
                self.pending = deque(maxlen=depth)
                self.recent = deque([], depth)
        """,
        path=SERVING_PATH,
    )


def test_explicit_maxlen_none_counts_as_unbounded(reported):
    findings = reported(
        "RES003",
        """
        import collections

        class FrontDoor:
            def __init__(self):
                self.pending = collections.deque(maxlen=None)
        """,
        path=SERVING_PATH,
    )
    assert len(findings) == 1


def test_growth_of_plain_list_attribute_flagged(reported):
    findings = reported(
        "RES003",
        """
        class FrontDoor:
            def __init__(self):
                self.backlog = []

            def submit(self, request):
                self.backlog.append(request)

            def merge(self, more):
                self.backlog += more
        """,
        path=SERVING_PATH,
    )
    assert len(findings) == 2
    assert any("append" in finding.message for finding in findings)
    assert any("+=" in finding.message for finding in findings)


def test_list_attribute_without_growth_is_clean(reported):
    # Replaced wholesale each cycle, never grown in place: not a leak.
    assert not reported(
        "RES003",
        """
        class FrontDoor:
            def __init__(self):
                self.snapshot = []

            def refresh(self, rows):
                self.snapshot = sorted(rows)
        """,
        path=SERVING_PATH,
    )


def test_request_scoped_locals_exempt(reported):
    assert not reported(
        "RES003",
        """
        class FrontDoor:
            def status(self):
                lines = []
                for name in ("a", "b"):
                    lines.append(name)
                return lines
        """,
        path=SERVING_PATH,
    )


def test_importers_of_serving_are_in_scope(reported):
    findings = reported(
        "RES003",
        """
        from collections import deque

        from repro.serving import ServingFrontDoor

        class Facade:
            def __init__(self):
                self.feed = deque()
        """,
        path="src/repro/core/fake.py",
    )
    assert len(findings) == 1


def test_modules_outside_serving_scope_exempt(reported):
    assert not reported(
        "RES003",
        """
        from collections import deque

        class Journal:
            def __init__(self):
                self.entries = deque()

            def add(self, entry):
                self.entries.append(entry)
        """,
        path="src/repro/core/fake.py",
    )


def test_tests_category_exempt(reported):
    assert not reported(
        "RES003",
        """
        from collections import deque

        from repro.serving import ServingFrontDoor

        class Harness:
            def __init__(self):
                self.seen = deque()
        """,
        path="tests/serving/fake.py",
    )
