"""SIM004: id()/hash-order leaking into results."""


class TestPositive:
    def test_returned_id_fires(self, reported):
        findings = reported(
            "SIM004",
            """\
            def row_key(row):
                return id(row)
            """,
        )
        assert len(findings) == 1
        assert "memory address" in findings[0].message

    def test_id_as_sort_key_fires(self, reported):
        findings = reported(
            "SIM004",
            """\
            def stable(rows):
                return sorted(rows, key=id)
            """,
        )
        assert len(findings) == 1

    def test_hash_as_sort_key_fires(self, reported):
        findings = reported(
            "SIM004",
            """\
            def stable(rows):
                return sorted(rows, key=hash)
            """,
        )
        assert len(findings) == 1

    def test_hash_inside_key_lambda_fires(self, reported):
        findings = reported(
            "SIM004",
            """\
            def stable(rows):
                return sorted(rows, key=lambda row: hash(row[0]))
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_identity_map_key_is_clean(self, reported):
        # id() as a per-process identity-map key orders nothing and never
        # leaves the process; the analyzer itself relies on this idiom.
        assert not reported(
            "SIM004",
            """\
            def index(nodes):
                parents = {}
                for node in nodes:
                    parents[id(node)] = node
                    parents.get(id(node))
                    if id(node) in parents:
                        pass
                return len(parents)
            """,
        )

    def test_sorting_by_value_is_clean(self, reported):
        assert not reported(
            "SIM004",
            """\
            def stable(rows):
                return sorted(rows, key=lambda row: row[0])
            """,
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "SIM004",
            """\
            def debug_token(obj):
                return id(obj)  # repro: allow[SIM004] debug-only token
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
