"""The whole-program import/call graph the interprocedural rules share."""

from repro.analysis.projectgraph import (
    MODULE_SCOPE,
    module_name_for_path,
    unit_of,
)


class TestNaming:
    def test_paths_root_at_the_repro_package(self):
        assert (
            module_name_for_path("src/repro/core/peer.py")
            == "repro.core.peer"
        )

    def test_init_names_the_package(self):
        assert (
            module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"
        )

    def test_non_repro_fixture_paths_still_get_names(self):
        assert module_name_for_path("lib/widgets.py") == "lib.widgets"

    def test_unit_is_the_second_component(self):
        assert unit_of("repro.core.peer") == "core"
        assert unit_of("repro.errors") == "errors"
        assert unit_of("fixture") == "fixture"


class TestImportGraph:
    def test_internal_imports_become_edges(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": "from repro.b import helper\n",
                "src/repro/b.py": "def helper():\n    return 1\n",
            }
        )
        edges = {(e.src, e.dst) for e in graph.import_edges}
        assert ("repro.a", "repro.b") in edges

    def test_stdlib_imports_are_not_edges(self, graph_of):
        graph = graph_of({"src/repro/a.py": "import os\nimport json\n"})
        assert graph.import_edges == []

    def test_type_checking_guard_is_recorded(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.b import Thing\n"
                ),
                "src/repro/b.py": "class Thing:\n    pass\n",
            }
        )
        (edge,) = graph.import_edges
        assert edge.type_checking_only

    def test_relative_import_resolves_within_the_package(self, graph_of):
        graph = graph_of(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/a.py": "from .b import helper\n",
                "src/repro/pkg/b.py": "def helper():\n    return 1\n",
            }
        )
        edges = {(e.src, e.dst) for e in graph.import_edges}
        assert ("repro.pkg.a", "repro.pkg.b") in edges


class TestCallGraph:
    def test_bare_call_resolves_in_the_module(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "def helper():\n"
                    "    return 1\n"
                    "def outer():\n"
                    "    return helper()\n"
                )
            }
        )
        assert "repro.a:helper" in graph.edges["repro.a:outer"]

    def test_imported_call_resolves_across_modules(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "from repro.b import helper\n"
                    "def outer():\n"
                    "    return helper()\n"
                ),
                "src/repro/b.py": "def helper():\n    return 1\n",
            }
        )
        assert "repro.b:helper" in graph.edges["repro.a:outer"]

    def test_self_call_resolves_to_the_enclosing_class(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "class Worker:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                )
            }
        )
        assert "repro.a:Worker.step" in graph.edges["repro.a:Worker.run"]
        assert (
            "repro.a:Worker.step"
            in graph.precise_edges["repro.a:Worker.run"]
        )

    def test_nested_function_gets_a_dotted_qualname(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "def outer():\n"
                    "    def inner():\n"
                    "        return 1\n"
                    "    return inner()\n"
                )
            }
        )
        assert "repro.a:outer.inner" in graph.functions
        assert "repro.a:outer.inner" in graph.edges["repro.a:outer"]

    def test_function_reference_argument_becomes_an_edge(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "def work():\n"
                    "    return 1\n"
                    "def outer(runner):\n"
                    "    return runner('p1', work)\n"
                )
            }
        )
        assert "repro.a:work" in graph.edges["repro.a:outer"]
        (site,) = [s for s in graph.call_sites if s.callee_name == "runner"]
        assert site.func_ref_args == ("repro.a:work",)

    def test_scope_chain_walks_out_to_the_module(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "def outer():\n"
                    "    def inner():\n"
                    "        return 1\n"
                    "    return inner\n"
                )
            }
        )
        assert list(graph.scope_chain("repro.a:outer.inner")) == [
            "repro.a:outer.inner",
            "repro.a:outer",
            f"repro.a:{MODULE_SCOPE}",
        ]

    def test_attr_assigns_record_target_and_noneness(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "def grant(peer, cert):\n"
                    "    peer.certificate = cert\n"
                    "def clear(peer):\n"
                    "    peer.certificate = None\n"
                )
            }
        )
        by_caller = {a.caller: a for a in graph.attr_assigns}
        assert not by_caller["repro.a:grant"].value_is_none
        assert by_caller["repro.a:clear"].value_is_none


class TestEdgePrecision:
    AMBIGUOUS = {
        "src/repro/a.py": (
            "class One:\n"
            "    def run(self):\n"
            "        return 1\n"
            "class Two:\n"
            "    def run(self):\n"
            "        return 2\n"
            "def outer(thing):\n"
            "    return thing.run()\n"
        )
    }

    def test_unique_method_name_fallback_is_precise(self, graph_of):
        graph = graph_of(
            {
                "src/repro/a.py": (
                    "class Only:\n"
                    "    def solo(self):\n"
                    "        return 1\n"
                    "def outer(thing):\n"
                    "    return thing.solo()\n"
                )
            }
        )
        assert "repro.a:Only.solo" in graph.precise_edges["repro.a:outer"]

    def test_ambiguous_method_name_fallback_is_not_precise(self, graph_of):
        graph = graph_of(self.AMBIGUOUS)
        assert graph.edges["repro.a:outer"] == {
            "repro.a:One.run",
            "repro.a:Two.run",
        }
        assert "repro.a:outer" not in graph.precise_edges

    def test_precise_only_reachability_drops_ambiguous_paths(self, graph_of):
        graph = graph_of(self.AMBIGUOUS)
        reachable = graph.functions_reachable_from({"repro.a:outer"})
        assert "repro.a:One.run" in reachable
        precise = graph.functions_reachable_from(
            {"repro.a:outer"}, precise_only=True
        )
        assert precise == {"repro.a:outer"}


class TestReachability:
    CHAIN = {
        "src/repro/a.py": (
            "def sink(x):\n"
            "    return x.verify()\n"
            "def mid():\n"
            "    return sink(None)\n"
            "def top():\n"
            "    return mid()\n"
            "def unrelated():\n"
            "    return 0\n"
        )
    }

    def test_functions_reaching_walks_callers_transitively(self, graph_of):
        graph = graph_of(self.CHAIN)
        reaching = graph.functions_reaching({"verify"})
        assert {"repro.a:sink", "repro.a:mid", "repro.a:top"} <= reaching
        assert "repro.a:unrelated" not in reaching

    def test_forward_closure_includes_the_roots(self, graph_of):
        graph = graph_of(self.CHAIN)
        reachable = graph.functions_reachable_from({"repro.a:top"})
        assert {"repro.a:top", "repro.a:mid", "repro.a:sink"} <= reachable


class TestExports:
    FILES = {
        "src/repro/core/a.py": "from repro.sim.b import helper\n",
        "src/repro/sim/b.py": "def helper():\n    return 1\n",
    }

    def test_dot_clusters_by_unit_and_draws_edges(self, graph_of):
        dot = graph_of(self.FILES).to_dot()
        assert dot.startswith("digraph repro_imports {")
        assert '"cluster_core"' in dot
        assert '"cluster_sim"' in dot
        assert '"repro.core.a" -> "repro.sim.b";' in dot
        assert dot.count("{") == dot.count("}")

    def test_dot_dashes_type_checking_edges(self, graph_of):
        dot = graph_of(
            {
                "src/repro/a.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.b import Thing\n"
                ),
                "src/repro/b.py": "class Thing:\n    pass\n",
            }
        ).to_dot()
        assert '"repro.a" -> "repro.b" [style=dashed];' in dot

    def test_json_payload_is_sorted_and_versioned(self, graph_of):
        payload = graph_of(self.FILES).to_json_dict()
        assert payload["version"] == 1
        names = [module["name"] for module in payload["modules"]]
        assert names == sorted(names)
        assert {"src": "repro.core.a", "dst": "repro.sim.b",
                "type_checking_only": False} in payload["imports"]
        assert payload["functions"] == sorted(payload["functions"])
