"""PURE001: compiled evaluators / executor kernels must be pure."""


KERNEL = "proj/sqlengine/compile.py"
EXECUTOR = "proj/sqlengine/executor.py"


class TestFires:
    def test_wallclock_inside_a_lowered_kernel(self, project):
        findings = project("PURE001", {
            KERNEL: """
                import time

                def lower_filter(positions):
                    def run_filter(rows):
                        started = time.perf_counter()
                        return [r for r in rows if r[positions[0]]], started
                    return run_filter
            """,
        })
        assert len(findings) == 1
        finding = findings[0]
        assert "time.perf_counter(...)" in finding.message
        assert "wallclock" in finding.properties["offendingEffects"]
        assert finding.properties["effectSignature"]["wallclock"] is True

    def test_effect_three_calls_away_is_still_caught(self, project):
        findings = project("PURE001", {
            "proj/util.py": """
                import random

                def jitter():
                    return random.random()

                def scale(v):
                    return v * jitter()
            """,
            EXECUTOR: """
                from proj.util import scale

                def run_project(rows):
                    return [scale(r[0]) for r in rows]
            """,
        })
        assert len(findings) == 1
        # the witness walks from the kernel down to the intrinsic
        trace_text = " ".join(step[2] for step in findings[0].trace)
        assert "run_project" in trace_text
        assert "random.random(...)" in trace_text

    def test_mutation_of_foreign_state_is_impure(self, project):
        findings = project("PURE001", {
            "proj/sim/metrics.py": """
                class MetricSink:
                    def __init__(self):
                        self.samples = []
            """,
            KERNEL: """
                from proj.sim.metrics import MetricSink

                def run_probe(rows, sink: MetricSink):
                    sink.samples.append(len(rows))
                    return rows
            """,
        })
        assert len(findings) == 1
        assert "mutates(MetricSink)" in findings[0].properties[
            "offendingEffects"
        ]

    def test_deepest_function_reported_once_per_chain(self, project):
        findings = project("PURE001", {
            KERNEL: """
                import time

                def deep():
                    return time.perf_counter()

                def mid():
                    return deep()

                def top():
                    return mid()
            """,
        })
        assert len(findings) == 1
        assert "'deep'" in findings[0].message


class TestQuiet:
    def test_pure_kernels_pass(self, project):
        assert project("PURE001", {
            KERNEL: """
                def lower_filter(positions):
                    def run_filter(rows):
                        return [r for r in rows if r[positions[0]] is None]
                    return run_filter
            """,
        }) == []

    def test_engine_owned_mutation_is_allowed(self, project):
        # ExecStats-style counters owned by sqlengine are the executor's
        # business, not a side channel.
        assert project("PURE001", {
            EXECUTOR: """
                class ExecStats:
                    def __init__(self):
                        self.rows_seen = 0

                def run_scan(rows, stats: ExecStats):
                    stats.rows_seen += len(rows)
                    return list(rows)
            """,
        }) == []

    def test_raising_is_not_impure(self, project):
        assert project("PURE001", {
            KERNEL: """
                def lower_cast(position):
                    def run_cast(row):
                        if row[position] is None:
                            raise ValueError('null in cast')
                        return int(row[position])
                    return run_cast
            """,
        }) == []

    def test_modules_outside_the_engine_are_not_roots(self, project):
        assert project("PURE001", {
            "proj/serving/frontdoor.py": """
                import time

                def stamp():
                    return time.time()
            """,
        }) == []
