"""SIM005: wall-clock / global-random values must not reach the scheduler."""


class TestPositive:
    def test_wall_clock_into_push_fires(self, reported):
        findings = reported(
            "SIM005",
            """\
            import time

            def kickoff(queue):
                deadline = time.time() + 5.0
                queue.push(deadline, 'boot')
            """,
        )
        assert len(findings) == 1
        assert "event-queue timestamp" in findings[0].message

    def test_datetime_now_fires(self, reported):
        assert reported(
            "SIM005",
            """\
            import datetime

            def kickoff(queue):
                queue.push(datetime.datetime.now().timestamp(), 'boot')
            """,
        )

    def test_global_random_into_fault_plan_seed_fires(self, reported):
        findings = reported(
            "SIM005",
            """\
            import random

            def chaos():
                return FaultPlan(random.randint(0, 9))
            """,
        )
        assert len(findings) == 1
        assert "fault-plan seed" in findings[0].message

    def test_wall_clock_into_rng_seed_fires(self, reported):
        assert reported(
            "SIM005",
            """\
            import random
            import time

            def build():
                return random.Random(time.time())
            """,
        )

    def test_laundered_through_helper_still_fires(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def _jitter(base):
                return base + time.time() / 1000.0

            def schedule(queue, base):
                queue.push(_jitter(base), 'evt')
            """,
        )


class TestNegative:
    def test_sim_clock_is_clean(self, reported):
        assert not reported(
            "SIM005",
            """\
            def kickoff(queue, clock):
                queue.push(clock.now_s() + 5.0, 'boot')
            """,
        )

    def test_seeded_component_rng_is_clean(self, reported):
        # ``self._rng`` is a held, seeded Random — not the global module.
        assert not reported(
            "SIM005",
            """\
            class Chaos:
                def plan(self):
                    return FaultPlan(self._rng.randint(0, 9))
            """,
        )

    def test_literal_seed_is_clean(self, reported):
        assert not reported(
            "SIM005",
            """\
            def chaos():
                return FaultPlan(seed=7)
            """,
        )

    def test_tainted_payload_position_is_not_a_timestamp(self, reported):
        # Only the ``when``/seed positions are sinks; a wall-clock value
        # in the *payload* is SIM002's business, not a scheduling hazard.
        assert not reported(
            "SIM005",
            """\
            import time

            def log_tick(queue, clock):
                queue.push(clock.now_s(), time.time())
            """,
        )
