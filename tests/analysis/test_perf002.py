"""PERF002: per-row evaluator loop in a module declaring vector kernels."""


class TestPositive:
    def test_evaluate_per_row_next_to_kernels_fires(self, reported):
        findings = reported(
            "PERF002",
            """\
            def compile_vector_filter(expr, layout):
                def kernel(cols, sel):
                    return sel, []
                return kernel

            def slow_filter(expr, layout, rows):
                return [row for row in rows if expr.evaluate(row, layout)]
            """,
        )
        assert len(findings) == 1
        assert "vectorized kernels" in findings[0].message

    def test_evaluator_closure_call_fires(self, reported):
        findings = reported(
            "PERF002",
            """\
            class VectorizedExecutor:
                def project(self, evaluator, rows):
                    out = []
                    for row in rows:
                        out.append(evaluator(row))
                    return out
            """,
        )
        assert len(findings) == 1

    def test_method_evaluator_on_rows_iterable_fires(self, reported):
        # Target isn't row-like, but the iterable clearly is a row set.
        findings = reported(
            "PERF002",
            """\
            def vector_scan(table, expr, layout):
                for item in table.all_rows():
                    yield expr.evaluate(item, layout)
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_module_without_kernels_is_exempt(self, reported):
        # The reference executor is deliberately row-at-a-time; only
        # modules that claim a batch path are held to it.
        assert not reported(
            "PERF002",
            """\
            def slow_filter(expr, layout, rows):
                return [row for row in rows if expr.evaluate(row, layout)]
            """,
        )

    def test_batch_kernel_call_is_clean(self, reported):
        # The fix the rule asks for: one kernel call per batch, with the
        # loop running over selection indices rather than rows.
        assert not reported(
            "PERF002",
            """\
            def compile_vector_filter(expr, layout):
                def kernel(cols, sel):
                    return sel, []
                return kernel

            def fast_filter(expr, layout, cols, n):
                kernel = compile_vector_filter(expr, layout)
                kept = []
                for start in range(0, n, 1024):
                    passing, errs = kernel(cols, range(start, min(start + 1024, n)))
                    kept.extend(passing)
                return kept
            """,
        )

    def test_per_expression_loop_is_clean(self, reported):
        # Compiling an evaluator per SELECT item is per-query work, not
        # per-row work.
        assert not reported(
            "PERF002",
            """\
            def vector_project(items, layout):
                kernels = []
                for item in items:
                    kernels.append(compile_vector_evaluator(item.expr, layout))
                return kernels
            """,
        )

    def test_nested_function_breaks_the_loop_scope(self, reported):
        # A closure built inside the loop evaluates on its own schedule.
        assert not reported(
            "PERF002",
            """\
            def build_vector_thunks(rows, expr, layout):
                thunks = []
                for row in rows:
                    def thunk():
                        return expr.evaluate(row, layout)
                    thunks.append(thunk)
                return thunks
            """,
        )

    def test_tests_category_is_exempt(self, reported):
        # Equivalence tests compare against the per-row form on purpose.
        assert not reported(
            "PERF002",
            """\
            def check_vectorized(rows, expr, layout, got):
                for row in rows:
                    assert expr.evaluate(row, layout) in got
            """,
            path="tests/sqlengine/test_fake.py",
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "PERF002",
            """\
            def vector_fallback(expr, layout, rows):
                out = []
                for row in rows:
                    out.append(expr.evaluate(row, layout))  # repro: allow[PERF002] reference fallback, exact error order
                return out
            """,
        )
        assert len(findings) == 1
        assert not findings[0].reported
