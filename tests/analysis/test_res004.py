"""RES004: NetworkError-family escapes must be handled along the unwind."""


class TestPositive:
    def test_bare_helper_chain_to_transfer_fires(self, reported):
        findings = reported(
            "RES004",
            """\
            def fetch_block(net, src, dst):
                return net.transfer(src, dst, 4096)

            def pull(net, src, dst):
                return fetch_block(net, src, dst)
            """,
        )
        assert findings
        assert any("escape" in f.message for f in findings)

    def test_witness_trace_reaches_the_primitive(self, reported):
        findings = reported(
            "RES004",
            """\
            def fetch_block(net, src, dst):
                return net.transfer(src, dst, 4096)

            def pull(net, src, dst):
                return fetch_block(net, src, dst)
            """,
        )
        trace = findings[0].trace
        assert trace
        assert any("can raise" in note for _, _, note in trace)

    def test_covered_helper_called_bare_elsewhere_fires(self, reported):
        # The helper is wrapped at one site (covered there), but the bare
        # call site lets the family unwind to an entry point.
        findings = reported(
            "RES004",
            """\
            def fetch_block(net, src, dst):
                return net.transfer(src, dst, 4096)

            def careful(context, net, src, dst):
                def attempt():
                    return fetch_block(net, src, dst)

                return context.call_resilient('p', attempt)

            def careless(net, src, dst):
                return fetch_block(net, src, dst)
            """,
        )
        assert findings
        assert all(f.line >= 10 for f in findings)  # only the bare path


class TestNegative:
    def test_family_handler_on_the_path_is_quiet(self, reported):
        assert not reported(
            "RES004",
            """\
            from repro.errors import NetworkError

            def fetch_block(net, src, dst):
                return net.transfer(src, dst, 4096)

            def pull(net, src, dst):
                try:
                    return fetch_block(net, src, dst)
                except NetworkError:
                    return None
            """,
        )

    def test_wrapped_entry_is_quiet(self, reported):
        assert not reported(
            "RES004",
            """\
            def fetch_block(net, src, dst):
                return net.transfer(src, dst, 4096)

            def pull(context, net, src, dst):
                def attempt():
                    return fetch_block(net, src, dst)

                return context.call_resilient('p', attempt)
            """,
        )

    def test_direct_cross_peer_site_is_res001_territory(self, reported):
        # A *direct* unprotected transfer is RES001's finding; RES004 only
        # flags indirect propagation through helper layers.
        assert not reported(
            "RES004",
            """\
            def ship(net, src, dst):
                return net.transfer(src, dst, 64)
            """,
        )

    def test_sim_unit_is_exempt(self, reported):
        assert not reported(
            "RES004",
            """\
            def fetch(net, src, dst):
                return net.transfer(src, dst, 1)

            def pull(net, src, dst):
                return fetch(net, src, dst)
            """,
            path="src/repro/sim/network.py",
        )
