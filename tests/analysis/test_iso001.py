"""ISO001: cross-object private-state access."""


class TestPositive:
    def test_private_read_on_other_object_fires(self, reported):
        findings = reported(
            "ISO001",
            """\
            def steal(peer):
                return peer._rows
            """,
        )
        assert len(findings) == 1
        assert "peer._rows" in findings[0].message

    def test_private_write_on_other_object_fires(self, reported):
        findings = reported(
            "ISO001",
            """\
            def poison(peer, rows):
                peer._rows = rows
            """,
        )
        assert len(findings) == 1

    def test_private_method_call_fires(self, reported):
        findings = reported(
            "ISO001",
            """\
            class Coordinator:
                def nudge(self, peer):
                    peer._apply_delta(1)
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_self_access_is_clean(self, reported):
        assert not reported(
            "ISO001",
            """\
            class Peer:
                def rows(self):
                    return self._rows
            """,
        )

    def test_module_alias_helper_is_clean(self, reported):
        assert not reported(
            "ISO001",
            """\
            import repro.core.config as config_mod

            def default():
                return config_mod._fallback()
            """,
        )

    def test_dunder_is_clean(self, reported):
        assert not reported(
            "ISO001",
            """\
            def name_of(obj):
                return obj.__class__
            """,
        )

    def test_same_class_sibling_idiom_is_clean(self, reported):
        # A class touching the private attrs of another instance of itself
        # (copy constructors, plus/minus builders) is ordinary Python.
        assert not reported(
            "ISO001",
            """\
            class Role:
                def __init__(self):
                    self._rules = []

                def plus(self, rule):
                    derived = Role()
                    derived._rules = self._rules + [rule]
                    return derived
            """,
        )

    def test_not_applied_to_tests_category(self, reported):
        assert not reported(
            "ISO001",
            """\
            def peek(peer):
                return peer._rows
            """,
            path="tests/test_fake.py",
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "ISO001",
            """\
            def peek(peer):
                return peer._rows  # repro: allow[ISO001] in-module buffer
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].justification == "in-module buffer"
