"""ISO002: row movement bypassing SimNetwork byte accounting."""


class TestPositive:
    def test_fetch_without_transfer_fires(self, reported):
        findings = reported(
            "ISO002",
            """\
            def gather(owner, sql):
                return owner.execute_fetch(sql)
            """,
        )
        assert len(findings) == 1
        assert "execute_fetch" in findings[0].message

    def test_local_read_on_remote_peer_fires(self, reported):
        findings = reported(
            "ISO002",
            """\
            def tap(peer, sql):
                return peer.execute_local(sql)
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_fetch_with_transfer_in_same_function_is_clean(self, reported):
        assert not reported(
            "ISO002",
            """\
            def gather(network, owner, query_peer, sql):
                execution = owner.execute_fetch(sql)
                network.transfer(owner.host, query_peer.host, 128)
                return execution
            """,
        )

    def test_broadcast_also_counts_as_pricing(self, reported):
        assert not reported(
            "ISO002",
            """\
            def fan_out(network, owner, sql):
                rows = owner.execute_fetch(sql)
                network.broadcast(owner.host, 64)
                return rows
            """,
        )

    def test_self_call_is_clean(self, reported):
        assert not reported(
            "ISO002",
            """\
            class Peer:
                def run(self, sql):
                    return self.execute_local(sql)
            """,
        )

    def test_not_applied_to_tests_category(self, reported):
        assert not reported(
            "ISO002",
            """\
            def gather(owner, sql):
                return owner.execute_fetch(sql)
            """,
            path="tests/test_fake.py",
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "ISO002",
            """\
            def scan(owner, sql):
                return owner.execute_fetch(sql)  # repro: allow[ISO002] rows stay remote
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].justification == "rows stay remote"
