"""The repo must pass its own analyzer — the gate CI enforces."""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(*argv):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )


def test_repo_is_clean_under_all_rules():
    """``python -m repro.analysis src tests benchmarks`` exits 0."""
    proc = _run("src", "tests", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repo_is_clean_in_json_mode_with_no_stale_baseline():
    proc = _run("src", "tests", "benchmarks", "--json", "--strict-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["baseline"]["stale"] == []


def test_graph_export_covers_every_src_module():
    """The graph the rules reason over must see the whole package."""
    proc = _run("graph", "--format", "json", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    graphed = {module["path"] for module in payload["modules"]}
    expected = set()
    for dirpath, dirnames, filenames in os.walk(
        os.path.join(REPO_ROOT, "src", "repro")
    ):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if filename.endswith(".py"):
                relpath = os.path.relpath(
                    os.path.join(dirpath, filename), REPO_ROOT
                )
                expected.add(relpath.replace(os.sep, "/"))
    assert expected <= graphed


def test_dot_export_is_well_formed():
    proc = _run("graph", "--format", "dot", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    dot = proc.stdout
    assert dot.startswith("digraph repro_imports {")
    assert dot.rstrip().endswith("}")
    assert dot.count("{") == dot.count("}")
    # Every layering-contract unit shows up as a cluster.
    for unit in ("core", "sim", "sqlengine", "baton", "analysis"):
        assert f'"cluster_{unit}"' in dot
