"""The repo must pass its own analyzer — the gate CI enforces."""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(*argv):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )


def test_repo_is_clean_under_all_rules():
    """``python -m repro.analysis src tests benchmarks`` exits 0."""
    proc = _run("src", "tests", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repo_is_clean_in_json_mode_with_no_stale_baseline():
    proc = _run("src", "tests", "benchmarks", "--json", "--strict-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["baseline"]["stale"] == []
