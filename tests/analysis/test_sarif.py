"""SARIF 2.1.0 export: structure, code flows, suppressions."""

import json

import pytest

from repro.analysis import all_rules, get_rule
from repro.analysis.engine import Analyzer
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.sarif import to_sarif


@pytest.fixture
def sarif_run(tmp_path, monkeypatch):
    """Run the analyzer over a small dirty tree; returns the parsed run."""

    def build(source, rules=None, baseline=None):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True, exist_ok=True)
        (src / "mod.py").write_text(source)
        monkeypatch.chdir(tmp_path)
        selected = rules if rules is not None else all_rules()
        report = Analyzer(rules=selected, baseline=baseline).run(["src"])
        doc = json.loads(to_sarif(report, selected))
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"]) == 1
        return doc["runs"][0]

    return build


class TestStructure:
    def test_driver_lists_every_rule_with_level(self, sarif_run):
        run = sarif_run("x = 1\n")
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        for rule_id in ("SIM001", "SEC003", "SIM005", "RES004"):
            assert rule_id in ids
        by_id = {r["id"]: r for r in rules}
        assert by_id["SEC003"]["defaultConfiguration"]["level"] == "error"
        assert by_id["RES004"]["defaultConfiguration"]["level"] == "warning"
        assert by_id["SEC003"]["properties"]["family"] == "SEC"
        assert "fullDescription" in by_id["SEC003"]

    def test_result_location_is_one_based(self, sarif_run):
        run = sarif_run("import random\nx = random.random()\n",
                        rules=[get_rule("SIM001")])
        results = run["results"]
        assert len(results) == 1
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1
        assert results[0]["ruleId"] == "SIM001"
        assert results[0]["level"] == "error"

    def test_rule_index_points_into_driver_rules(self, sarif_run):
        run = sarif_run("import random\nx = random.random()\n")
        result = next(r for r in run["results"] if r["ruleId"] == "SIM001")
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "SIM001"


class TestCodeFlows:
    def test_dataflow_trace_becomes_a_thread_flow(self, sarif_run):
        run = sarif_run(
            "def relay(peer, net, dst):\n"
            "    rows = peer.execute_local('q')\n"
            "    net.transfer('here', dst, rows)\n",
            rules=[get_rule("SEC003")],
        )
        result = run["results"][0]
        steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(steps) >= 2
        assert steps[0]["location"]["message"]["text"].startswith("source:")
        lines = [
            s["location"]["physicalLocation"]["region"]["startLine"]
            for s in steps
        ]
        assert lines[0] == 2 and lines[-1] == 3


class TestSuppressions:
    def test_baselined_finding_is_marked_suppressed(self, sarif_run):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule="SIM001",
                    path="src/repro/mod.py",
                    match="x = random.random()",
                    justification="fixture noise",
                )
            ]
        )
        run = sarif_run(
            "import random\nx = random.random()\n",
            rules=[get_rule("SIM001")],
            baseline=baseline,
        )
        result = run["results"][0]
        assert result["suppressions"][0]["kind"] == "external"
        assert result["suppressions"][0]["justification"] == "fixture noise"

    def test_inline_allow_is_marked_in_source(self, sarif_run):
        run = sarif_run(
            "import random\n"
            "x = random.random()  # repro: allow[SIM001] fixture\n",
            rules=[get_rule("SIM001")],
        )
        result = run["results"][0]
        assert result["suppressions"][0]["kind"] == "inSource"


class TestEffectProperties:
    def test_effect_findings_embed_their_signature(self, tmp_path,
                                                   monkeypatch):
        # PURE001 is scoped to the engine modules, so build the tree at
        # the real kernel path instead of the shared mod.py fixture.
        kernel = tmp_path / "src" / "repro" / "sqlengine"
        kernel.mkdir(parents=True)
        (kernel / "compile.py").write_text(
            "import time\n"
            "\n"
            "def lower_probe():\n"
            "    def run_probe(rows):\n"
            "        return time.perf_counter(), rows\n"
            "    return run_probe\n"
        )
        monkeypatch.chdir(tmp_path)
        rules = [get_rule("PURE001")]
        report = Analyzer(rules=rules).run(["src"])
        run = json.loads(to_sarif(report, rules))["runs"][0]
        result = next(r for r in run["results"] if r["ruleId"] == "PURE001")
        props = result["properties"]
        assert props["effectSignature"]["wallclock"] is True
        assert "wallclock" in props["offendingEffects"]
        # the call-chain witness rides along as a code flow
        steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert any(
            "time.perf_counter" in s["location"]["message"]["text"]
            for s in steps
        )
