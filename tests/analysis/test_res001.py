"""RES001: cross-peer call sites must run under the resilience layer."""


class TestPositive:
    def test_bare_transfer_fires(self, project):
        findings = project(
            "RES001",
            {
                "src/repro/core/engine.py": """\
                def ship(network, src, dst):
                    return network.transfer(src, dst, 64)
                """
            },
        )
        assert len(findings) == 1
        assert "call_resilient" in findings[0].message

    def test_remote_fetch_outside_any_wrapper_fires(self, project):
        findings = project(
            "RES001",
            {
                "src/repro/core/engine.py": """\
                def gather(owner, sql, user):
                    return owner.execute_fetch('t', sql, user=user)
                """
            },
        )
        assert len(findings) == 1


class TestNegative:
    def test_closure_passed_to_call_resilient_is_covered(self, project):
        assert not project(
            "RES001",
            {
                "src/repro/core/engine.py": """\
                def run(context, network, owner, query_peer, sql):
                    def fetch_one():
                        rows = owner.execute_fetch('t', sql)
                        network.transfer(owner.host, query_peer.host, 64)
                        return rows

                    return context.call_resilient('p', fetch_one)
                """
            },
        )

    def test_resilience_context_call_receiver_also_covers(self, project):
        assert not project(
            "RES001",
            {
                "src/repro/core/agg.py": """\
                def run(network, owner, query_peer, sql):
                    def fetch_report():
                        return network.transfer(owner.host, query_peer.host, 8)

                    return network.resilience.call('p', fetch_report)
                """
            },
        )

    def test_coverage_extends_to_the_roots_callees(self, project):
        assert not project(
            "RES001",
            {
                "src/repro/core/engine.py": """\
                def ship(network, src, dst):
                    return network.transfer(src, dst, 64)

                def run(context, network, owner, query_peer):
                    def attempt():
                        return ship(network, owner.host, query_peer.host)

                    return context.call_resilient('p', attempt)
                """
            },
        )

    def test_sim_unit_is_exempt(self, project):
        # The substrate is the wire; it cannot wrap itself.
        assert not project(
            "RES001",
            {
                "src/repro/sim/relay.py": """\
                def relay(network, src, dst):
                    return network.transfer(src, dst, 64)
                """
            },
        )

    def test_mapreduce_unit_is_exempt(self, project):
        # MapReduce's fault model is job re-execution, not message retry.
        assert not project(
            "RES001",
            {
                "src/repro/mapreduce/shuffle.py": """\
                def shuffle(network, src, dst):
                    return network.transfer(src, dst, 64)
                """
            },
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, project):
        assert not project(
            "RES001",
            {
                "src/repro/core/engine.py": """\
                def ship(network, src, dst):
                    return network.transfer(src, dst, 64)  # repro: allow[RES001] bounded by the job deadline
                """
            },
        )
