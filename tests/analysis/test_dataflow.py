"""Corner cases of the Phase-A flow extractor, driven through SIM005.

Each scenario routes a wall-clock value toward ``queue.push`` so the
assertion is simply "does the taint survive this construct" — the rule is
the oscilloscope, the construct under test is the dataflow semantics.
"""

import random

from repro.analysis import analyze_project, get_rule
from repro.analysis.dataflow import receiver_tokens


class TestConstructs:
    def test_plain_assignment_flows(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue):
                t = time.time()
                queue.push(t, 'tick')
            """,
        )

    def test_reassignment_kills_taint(self, reported):
        assert not reported(
            "SIM005",
            """\
            import time

            def go(queue, clock):
                t = time.time()
                t = clock.now_s()
                queue.push(t, 'tick')
            """,
        )

    def test_aug_assign_is_a_weak_update(self, reported):
        # ``t += time.time()`` mixes taint into whatever t held.
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue):
                t = 1.0
                t += time.time()
                queue.push(t, 'tick')
            """,
        )

    def test_tuple_unpack_is_element_wise(self, reported):
        findings = reported(
            "SIM005",
            """\
            import time

            def go(queue):
                a, b = time.time(), 1.0
                queue.push(b, 'clean')
                queue.push(a, 'dirty')
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 6  # only the push of ``a``

    def test_comprehension_taints_the_container(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue):
                stamps = [time.time() for _ in range(3)]
                queue.push(stamps[0], 'tick')
            """,
        )

    def test_walrus_binds_and_flows(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue):
                queue.push((t := time.time()) + 1.0, 'tick')
            """,
        )

    def test_except_rebinding_on_every_path_kills_taint(self, reported):
        # Both the try body and the handler overwrite ``t`` with a clean
        # value, so the pre-try taint cannot reach the push.
        assert not reported(
            "SIM005",
            """\
            import time

            def go(queue, clock):
                t = time.time()
                try:
                    t = clock.now_s()
                except ValueError:
                    t = 0.0
                queue.push(t, 'tick')
            """,
        )

    def test_handler_sees_mid_body_taint(self, reported):
        # The handler runs with the body partially executed: the tainted
        # binding from before the raise point must merge in.
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue, risky):
                t = 0.0
                try:
                    t = time.time()
                    risky()
                except ValueError:
                    queue.push(t, 'tick')
            """,
        )

    def test_branch_merge_unions_both_arms(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue, flag, clock):
                if flag:
                    t = time.time()
                else:
                    t = clock.now_s()
                queue.push(t, 'tick')
            """,
        )

    def test_loop_carried_flow_is_seen(self, reported):
        # ``t`` is tainted only on the second trip around the loop.
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue, items):
                t = 0.0
                for _ in items:
                    queue.push(t, 'tick')
                    t = time.time()
            """,
        )

    def test_taint_through_self_attribute_across_methods(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            class Driver:
                def grab(self):
                    self.t0 = time.time()

                def go(self, queue):
                    queue.push(self.t0, 'tick')
            """,
        )

    def test_mutator_pushes_taint_into_container(self, reported):
        assert reported(
            "SIM005",
            """\
            import time

            def go(queue):
                acc = []
                acc.append(time.time())
                queue.push(acc[0], 'tick')
            """,
        )

    def test_helper_return_launders_nothing(self, reported):
        # Interprocedural: taint survives a helper's return value.
        assert reported(
            "SIM005",
            """\
            import time

            def stamp():
                return time.time() + 0.5

            def go(queue):
                queue.push(stamp(), 'tick')
            """,
        )


class TestDeterminism:
    FILES = {
        "src/repro/fake/clocks.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        "src/repro/fake/kernel.py": (
            "from repro.fake.clocks import stamp\n"
            "def go(queue):\n"
            "    queue.push(stamp(), 'tick')\n"
        ),
        "src/repro/fake/other.py": (
            "def noop():\n"
            "    return 1\n"
        ),
    }

    def test_shuffled_file_orders_render_identically(self):
        rule = [get_rule("SIM005")]
        rendered = []
        paths = list(self.FILES)
        rng = random.Random(7)
        for _ in range(4):
            rng.shuffle(paths)
            files = {path: self.FILES[path] for path in paths}
            findings = analyze_project(files, rules=rule)
            rendered.append([f.render() for f in findings])
        assert rendered[0]  # the flow is found at all
        assert all(r == rendered[0] for r in rendered[1:])


class TestReceiverTokens:
    def test_tokens_split_on_identifier_boundaries(self):
        assert receiver_tokens("self._backlog") == {"self", "_backlog"}
        assert "log" not in receiver_tokens("self._backlog")
        assert "wal" in receiver_tokens("node.wal")
        assert receiver_tokens(None) == frozenset()
