"""Shared fixtures: run rules over dedented in-memory snippets.

Fixtures live in strings (never on disk as ``.py`` files) so the repo-wide
self-check in ``test_self_check.py`` doesn't trip over its own test data.
"""

import textwrap

import pytest

from repro.analysis import analyze_source, get_rule


@pytest.fixture
def analyze():
    """Analyze a snippet with one rule; returns all findings (any state)."""

    def run(rule_id, source, path="src/repro/fake.py", category=None):
        return analyze_source(
            textwrap.dedent(source),
            path=path,
            category=category,
            rules=[get_rule(rule_id)],
        )

    return run


@pytest.fixture
def reported(analyze):
    """Like ``analyze`` but keeps only findings that would fail a run."""

    def run(rule_id, source, **kwargs):
        return [
            finding
            for finding in analyze(rule_id, source, **kwargs)
            if finding.reported
        ]

    return run
