"""Shared fixtures: run rules over dedented in-memory snippets.

Fixtures live in strings (never on disk as ``.py`` files) so the repo-wide
self-check in ``test_self_check.py`` doesn't trip over its own test data.
"""

import ast
import textwrap

import pytest

from repro.analysis import analyze_project, analyze_source, get_rule
from repro.analysis.engine import categorize
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import FileContext


@pytest.fixture
def analyze():
    """Analyze a snippet with one rule; returns all findings (any state)."""

    def run(rule_id, source, path="src/repro/fake.py", category=None):
        return analyze_source(
            textwrap.dedent(source),
            path=path,
            category=category,
            rules=[get_rule(rule_id)],
        )

    return run


@pytest.fixture
def project():
    """Run one rule over a {path: source} fixture; reported findings only."""

    def run(rule_id, files, **kwargs):
        findings = analyze_project(
            {path: textwrap.dedent(source) for path, source in files.items()},
            rules=[get_rule(rule_id)],
            **kwargs,
        )
        return [finding for finding in findings if finding.reported]

    return run


@pytest.fixture
def graph_of():
    """Build a ProjectGraph straight from a {path: source} fixture."""

    def run(files):
        contexts = [
            FileContext(
                path=path,
                category=categorize(path),
                source=textwrap.dedent(source),
                tree=ast.parse(textwrap.dedent(source)),
            )
            for path, source in files.items()
        ]
        return ProjectGraph.build(contexts)

    return run


@pytest.fixture
def reported(analyze):
    """Like ``analyze`` but keeps only findings that would fail a run."""

    def run(rule_id, source, **kwargs):
        return [
            finding
            for finding in analyze(rule_id, source, **kwargs)
            if finding.reported
        ]

    return run
