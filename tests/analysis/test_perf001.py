"""PERF001: RowLayout.resolve() re-resolved per row inside a loop."""


class TestPositive:
    def test_resolve_in_for_row_loop_fires(self, reported):
        findings = reported(
            "PERF001",
            """\
            def project(rows, layout, name):
                out = []
                for row in rows:
                    out.append(row[layout.resolve(name)])
                return out
            """,
        )
        assert len(findings) == 1
        assert "hoist" in findings[0].message

    def test_attribute_layout_receiver_fires(self, reported):
        findings = reported(
            "PERF001",
            """\
            def project(self, records, name):
                return [r[self.child_layout.resolve(name)] for r in records]
            """,
        )
        assert len(findings) == 1

    def test_rows_iterable_name_detects_loop(self, reported):
        # Target isn't row-like, but the iterable clearly is a row set.
        findings = reported(
            "PERF001",
            """\
            def scan(table, layout, name):
                for item in table.all_rows():
                    yield item[layout.resolve(name)]
            """,
        )
        assert len(findings) == 1

    def test_row_suffixed_targets_fire(self, reported):
        findings = reported(
            "PERF001",
            """\
            def merge(pairs, layout, name):
                for left_row, right_row in pairs:
                    yield left_row[layout.resolve(name)]
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_resolved_once_then_indexed_is_clean(self, reported):
        # The fix the rule asks for: hoist the lookup above the loop.
        assert not reported(
            "PERF001",
            """\
            def project(rows, layout, name):
                position = layout.resolve(name)
                return [row[position] for row in rows]
            """,
        )

    def test_loop_over_non_rows_is_clean(self, reported):
        # Per-query loops (expressions, stages) resolve a bounded number
        # of times; only per-row resolution is the hazard.
        assert not reported(
            "PERF001",
            """\
            def plan(group_exprs, layout):
                positions = []
                for expr in group_exprs:
                    positions.append(layout.resolve(expr.name))
                return positions
            """,
        )

    def test_nested_function_breaks_the_loop_scope(self, reported):
        # A closure built inside the loop runs on its own schedule; the
        # resolve is not syntactically per-iteration.
        assert not reported(
            "PERF001",
            """\
            def build(rows, layout, name):
                getters = []
                for row in rows:
                    def getter():
                        return layout.resolve(name)
                    getters.append(getter)
                return getters
            """,
        )

    def test_non_layout_resolve_is_clean(self, reported):
        # pathlib's Path.resolve() shares the method name, nothing else.
        assert not reported(
            "PERF001",
            """\
            def realpaths(rows):
                return [path.resolve() for path in rows]
            """,
        )

    def test_tests_category_is_exempt(self, reported):
        # Correctness tests may spell out the naive per-row form on purpose.
        assert not reported(
            "PERF001",
            """\
            def check(rows, layout, name):
                for row in rows:
                    assert row[layout.resolve(name)] is not None
            """,
            path="tests/sqlengine/test_fake.py",
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "PERF001",
            """\
            def project(rows, layout, name):
                out = []
                for row in rows:
                    out.append(row[layout.resolve(name)])  # repro: allow[PERF001] micro-table, bounded rows
                return out
            """,
        )
        assert len(findings) == 1
        assert not findings[0].reported
