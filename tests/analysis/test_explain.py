"""--explain: rationale plus worked examples, verified live."""

import pytest

from repro.analysis import all_rules
from repro.analysis.__main__ import main


class TestExplain:
    def test_explain_sec003_shows_rationale_and_examples(self, capsys):
        assert main(["--explain", "SEC003"]) == 0
        out = capsys.readouterr().out
        assert "SEC003" in out
        assert "Why this matters:" in out
        assert "Violation (fires):" in out
        assert "Clean (quiet):" in out
        # The violating example is actually run and actually fires.
        assert "DOES NOT FIRE" not in out
        assert "stale example" not in out

    @pytest.mark.parametrize(
        "rule_id", [rule.id for rule in all_rules()]
    )
    def test_every_rule_explains_cleanly(self, rule_id, capsys):
        # Exit 2 would mean a rule's recorded example no longer matches
        # its implementation -- the docs drifted from the analyzer.
        assert main(["--explain", rule_id]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_nonzero(self, capsys):
        assert main(["--explain", "NOPE999"]) == 2
        err = capsys.readouterr().err
        assert "NOPE999" in err

    def test_explain_ignores_path_arguments(self, tmp_path, capsys):
        # ``--explain`` is a lookup mode: it must not scan the tree.
        bad = tmp_path / "dirty.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["--explain", "SIM001", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dirty.py" not in out
