"""SEC002: peers admitted or credentialed without CA verification."""


class TestPositive:
    def test_register_without_verify_fires(self, project):
        findings = project(
            "SEC002",
            {
                "src/repro/core/net.py": """\
                def admit(bootstrap, peer):
                    return bootstrap.register_peer(peer)
                """
            },
        )
        assert len(findings) == 1
        assert "register_peer" in findings[0].message

    def test_certificate_handout_without_verify_fires(self, project):
        findings = project(
            "SEC002",
            {
                "src/repro/core/boot.py": """\
                def grant(ca, peer):
                    peer.certificate = ca.issue(peer.peer_id)
                """
            },
        )
        assert len(findings) == 1
        assert "certificate" in findings[0].message


class TestNegative:
    def test_verify_in_the_same_function_clears_admission(self, project):
        assert not project(
            "SEC002",
            {
                "src/repro/core/boot.py": """\
                def grant(ca, peer):
                    cert = ca.issue(peer.peer_id)
                    if not ca.verify(cert):
                        raise ValueError('bad certificate')
                    peer.certificate = cert
                """
            },
        )

    def test_verify_reached_through_a_precise_callee_clears_it(self, project):
        assert not project(
            "SEC002",
            {
                "src/repro/core/boot.py": """\
                class Bootstrap:
                    def register_peer(self, peer):
                        if not self.ca.verify(peer.certificate):
                            raise ValueError('bad certificate')
                """,
                "src/repro/core/net.py": """\
                def admit(bootstrap, peer):
                    return bootstrap.register_peer(peer)
                """,
            },
        )

    def test_storing_ones_own_certificate_is_exempt(self, project):
        # The receiving side of admission: the peer keeps what it was
        # granted; verification was the issuer's obligation.
        assert not project(
            "SEC002",
            {
                "src/repro/core/peer.py": """\
                class Peer:
                    def accept_grant(self, grant):
                        self.certificate = grant.certificate
                """
            },
        )

    def test_clearing_a_certificate_is_exempt(self, project):
        assert not project(
            "SEC002",
            {
                "src/repro/core/boot.py": """\
                def revoke(peer):
                    peer.certificate = None
                """
            },
        )

    def test_tests_category_is_not_emitted(self, project):
        assert not project(
            "SEC002",
            {
                "tests/core/test_boot.py": """\
                def admit(bootstrap, peer):
                    return bootstrap.register_peer(peer)
                """
            },
        )
