"""CFG001: inline config defaults drifting from repro.core.config."""


class TestPositive:
    def test_inline_string_default_fires(self, reported):
        findings = reported(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine", "basic")
            """,
        )
        assert len(findings) == 1
        assert "'engine'" in findings[0].message
        assert "repro/core/config.py" in findings[0].message

    def test_inline_numeric_default_fires(self, reported):
        findings = reported(
            "CFG001",
            """\
            def workers(cfg):
                return cfg.get("workers", 4)
            """,
        )
        assert len(findings) == 1

    def test_attribute_receiver_fires(self, reported):
        findings = reported(
            "CFG001",
            """\
            def engine_of(peer):
                return peer.options.get("engine", "basic")
            """,
        )
        assert len(findings) == 1

    def test_container_default_fires(self, reported):
        findings = reported(
            "CFG001",
            """\
            def hosts(settings):
                return settings.get("hosts", ["localhost"])
            """,
        )
        assert len(findings) == 1


class TestNegative:
    def test_named_constant_default_is_clean(self, reported):
        assert not reported(
            "CFG001",
            """\
            from repro.core.config import DEFAULT_ENGINE

            def engine_of(options):
                return options.get("engine", DEFAULT_ENGINE)
            """,
        )

    def test_single_arg_get_is_clean(self, reported):
        assert not reported(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine")
            """,
        )

    def test_none_default_is_clean(self, reported):
        assert not reported(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine", None)
            """,
        )

    def test_non_config_receiver_is_clean(self, reported):
        assert not reported(
            "CFG001",
            """\
            def lookup(cache):
                return cache.get("engine", "basic")
            """,
        )

    def test_config_home_module_is_exempt(self, reported):
        assert not reported(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine", "basic")
            """,
            path="src/repro/core/config.py",
        )

    def test_not_applied_to_tests_category(self, reported):
        assert not reported(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine", "basic")
            """,
            path="tests/test_fake.py",
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "CFG001",
            """\
            def engine_of(options):
                return options.get("engine", "basic")  # repro: allow[CFG001] demo
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].justification == "demo"
