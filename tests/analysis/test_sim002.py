"""SIM002: wall-clock reads instead of the sim clock."""


class TestPositive:
    def test_time_time_fires(self, reported):
        findings = reported(
            "SIM002",
            """\
            import time

            def stamp():
                return time.time()
            """,
        )
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_time_sleep_fires(self, reported):
        findings = reported(
            "SIM002",
            """\
            import time

            def backoff(seconds):
                time.sleep(seconds)
            """,
        )
        assert len(findings) == 1

    def test_from_import_fires(self, reported):
        findings = reported(
            "SIM002",
            """\
            from time import perf_counter

            def stamp():
                return perf_counter()
            """,
        )
        assert len(findings) == 1

    def test_datetime_now_fires(self, reported):
        findings = reported(
            "SIM002",
            """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert len(findings) == 1

    def test_from_datetime_import_now_fires(self, reported):
        findings = reported(
            "SIM002",
            """\
            from datetime import datetime

            def stamp():
                return datetime.utcnow()
            """,
        )
        assert len(findings) == 1

    def test_fires_in_tests_category_too(self, reported):
        findings = reported(
            "SIM002",
            """\
            import time

            def measure():
                return time.monotonic()
            """,
            path="tests/test_fake.py",
        )
        assert len(findings) == 1


class TestNegative:
    def test_sim_clock_is_clean(self, reported):
        assert not reported(
            "SIM002",
            """\
            from repro.sim.clock import SimClock

            def advance(clock: SimClock, seconds: float) -> float:
                return clock.advance(seconds)
            """,
        )

    def test_unrelated_time_attribute_is_clean(self, reported):
        assert not reported(
            "SIM002",
            """\
            import time

            def resolution():
                return time.get_clock_info("monotonic")
            """,
        )

    def test_method_named_sleep_on_other_object_is_clean(self, reported):
        assert not reported(
            "SIM002",
            """\
            def pause(simulator, seconds):
                simulator.sleep(seconds)
            """,
        )


class TestSuppression:
    def test_inline_allow_suppresses(self, analyze):
        findings = analyze(
            "SIM002",
            """\
            import time

            def driver_elapsed(started):
                return time.time() - started  # repro: allow[SIM002] driver wall-time
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].justification == "driver wall-time"

    def test_standalone_comment_suppresses_next_line(self, analyze):
        findings = analyze(
            "SIM002",
            """\
            import time

            def driver_elapsed():
                # repro: allow[SIM002] measures the driver process itself
                return time.time()
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_allow_for_other_rule_does_not_suppress(self, analyze):
        findings = analyze(
            "SIM002",
            """\
            import time

            def stamp():
                return time.time()  # repro: allow[SIM001]
            """,
        )
        assert len(findings) == 1
        assert not findings[0].suppressed
