"""RES002: bootstrap metadata may only be mutated inside the WAL reducer.

The rule's roots are the ``apply`` functions of ``repro.core.metalog``;
anything reachable from them over *precise* call edges is the reducer.
A write to a metadata attribute (``state.peers[...] = ...``,
``state.blacklist.append(...)``, ``del``/augmented forms) anywhere else in
``src`` means a promoted standby replaying the log would diverge.
"""

# A miniature metalog whose module path matches the rule's WAL_MODULE.
METALOG = """\
def apply(state, entry):
    _apply_admit(state, entry)


def _apply_admit(state, entry):
    state.peers[entry.peer_id] = entry.record
    state.serials[entry.serial] = entry.peer_id
"""


class TestPositive:
    def test_direct_subscript_assignment_fires(self, project):
        findings = project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/rogue.py": """\
                def sneak_in(state, peer_id, record):
                    state.peers[peer_id] = record
                """,
            },
        )
        assert len(findings) == 1
        assert "rogue.py" in findings[0].path
        assert "WAL" in findings[0].message

    def test_mutator_method_call_fires(self, project):
        findings = project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/rogue.py": """\
                def blacklist_directly(state, record):
                    state.blacklist.append(record)
                """,
            },
        )
        assert len(findings) == 1

    def test_delete_and_augmented_assign_fire(self, project):
        findings = project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/rogue.py": """\
                def evict(state, peer_id):
                    del state.peers[peer_id]


                def merge(state, extra):
                    state.serials += extra
                """,
            },
        )
        assert len(findings) == 2

    def test_self_state_receiver_fires(self, project):
        findings = project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/node.py": """\
                class Node:
                    def admit(self, peer_id, record):
                        self.state.peers[peer_id] = record
                """,
            },
        )
        assert len(findings) == 1


class TestNegative:
    def test_reducer_helpers_are_allowed(self, project):
        assert not project(
            "RES002",
            {"src/repro/core/metalog.py": METALOG},
        )

    def test_function_reachable_from_apply_is_allowed(self, project):
        assert not project(
            "RES002",
            {
                "src/repro/core/metalog.py": """\
                def apply(state, entry):
                    _dispatch(state, entry)


                def _dispatch(state, entry):
                    _fold(state, entry)


                def _fold(state, entry):
                    state.pending_failovers[entry.peer_id] = entry.old
                """,
            },
        )

    def test_non_state_receiver_not_flagged(self, project):
        assert not project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/other.py": """\
                def track(monitor, peer_id):
                    monitor.peers[peer_id] = 1
                """,
            },
        )

    def test_non_metadata_attribute_not_flagged(self, project):
        assert not project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "src/repro/core/other.py": """\
                def note(state, key, value):
                    state.scratch[key] = value
                """,
            },
        )

    def test_tests_category_not_flagged(self, project):
        assert not project(
            "RES002",
            {
                "src/repro/core/metalog.py": METALOG,
                "tests/core/test_meta.py": """\
                def test_fixture(state):
                    state.peers["a"] = object()
                """,
            },
        )
