"""SEC003: tenant-controlled values must not reach privileged sinks."""


class TestRowsFlow:
    def test_unrewritten_remote_rows_reach_transfer(self, reported):
        findings = reported(
            "SEC003",
            """\
            def relay(peer, net, dst):
                rows = peer.execute_local('select * from t')
                net.transfer('here', dst, rows)
            """,
        )
        assert len(findings) == 1
        assert "cross-peer transfer" in findings[0].message

    def test_finding_carries_source_to_sink_trace(self, reported):
        findings = reported(
            "SEC003",
            """\
            def fetch(peer):
                return peer.execute_local('select * from t')

            def relay(peer, net, dst):
                rows = fetch(peer)
                net.transfer('here', dst, rows)
            """,
        )
        assert len(findings) == 1
        trace = findings[0].trace
        assert len(trace) >= 2
        # Source first, sink last, every hop locatable.
        assert trace[0][2].startswith("source:")
        assert trace[0][1] == 2  # the execute_local call inside fetch()
        assert trace[-1][1] == 6  # the transfer argument
        assert all(path and line >= 1 for path, line, _ in trace)

    def test_trace_survives_into_json(self, reported):
        findings = reported(
            "SEC003",
            """\
            def relay(peer, net, dst):
                rows = peer.execute_local('q')
                net.transfer('here', dst, rows)
            """,
        )
        payload = findings[0].to_dict()
        assert payload["trace"][0]["note"].startswith("source:")
        assert {"path", "line", "note"} <= set(payload["trace"][0])

    def test_rewrite_rows_sanitizes(self, reported):
        assert not reported(
            "SEC003",
            """\
            def relay(peer, controller, net, dst):
                rows = controller.rewrite_rows(peer.execute_local('q'))
                net.transfer('here', dst, rows)
            """,
        )

    def test_must_executed_access_check_clears(self, reported):
        assert not reported(
            "SEC003",
            """\
            def relay(peer, controller, net, dst, user):
                controller.check_readable(user)
                rows = peer.execute_local('q')
                net.transfer('here', dst, rows)
            """,
        )

    def test_check_on_one_branch_only_does_not_clear(self, reported):
        assert reported(
            "SEC003",
            """\
            def relay(peer, controller, net, dst, user, audited):
                if audited:
                    controller.check_readable(user)
                rows = peer.execute_local('q')
                net.transfer('here', dst, rows)
            """,
        )

    def test_self_receiver_is_not_a_remote_source(self, reported):
        assert not reported(
            "SEC003",
            """\
            class Peer:
                def execute_local(self, sql):
                    return []

                def export(self, net, dst):
                    rows = self.execute_local('q')
                    net.transfer('here', dst, rows)
            """,
        )

    def test_chained_call_does_not_taint_the_callee_receiver(self, project):
        # Regression: in ``peer.execute_local('q').tally()`` both Call
        # nodes share one anchor position.  With a position-keyed call
        # table the chained call's receiver (the tainted result) was
        # spliced into ``execute_local``'s *self*, tainting its return for
        # every caller — including ``self.execute_local`` uses that are no
        # source at all.
        assert not project(
            "SEC003",
            {
                "src/repro/fake/peer.py": """\
                class Peer:
                    def __init__(self, net):
                        self.rows = []
                        self.net = net

                    def execute_local(self, sql):
                        return Result(self.rows)

                    def replicate(self, dst):
                        rows = self.execute_local('q')
                        self.net.transfer('here', dst, rows)

                class Result:
                    def __init__(self, rows):
                        self.rows = rows

                    def tally(self):
                        return len(self.rows)
                """,
                "src/repro/fake/probe.py": """\
                def probe(peer):
                    return peer.execute_local('q').tally()
                """,
            },
        )


class TestOriginScope:
    def test_source_in_test_code_does_not_taint_src_sinks(self, project):
        # A test calling execute_local directly exercises the local
        # executor; it is not a tenant-controlled product flow even when
        # the value reaches a src-side transfer.
        files = {
            "src/repro/fake/relay.py": """\
            def ship(net, dst, rows):
                net.transfer('here', dst, rows)
            """,
            "tests/fake/test_relay.py": """\
            from repro.fake.relay import ship

            def test_ship(peer, net):
                rows = peer.execute_local('q')
                ship(net, 'dst', rows)
            """,
        }
        assert not project("SEC003", files)
        # Sanity: the same flow entirely inside src does fire.
        src_only = {
            "src/repro/fake/relay.py": files["src/repro/fake/relay.py"],
            "src/repro/fake/driver.py": """\
            from repro.fake.relay import ship

            def drive(peer, net):
                rows = peer.execute_local('q')
                ship(net, 'dst', rows)
            """,
        }
        assert project("SEC003", src_only)


class TestRequestAndCredentialFlows:
    def test_request_payload_reaching_metalog_fires(self, reported):
        findings = reported(
            "SEC003",
            """\
            def record(request, meta_log):
                entry = request.payload
                meta_log.append(entry)
            """,
        )
        assert len(findings) == 1
        assert "metalog append" in findings[0].message

    def test_unverified_certificate_install_fires(self, reported):
        assert reported(
            "SEC003",
            """\
            def admit(peer, registry):
                cert = peer.certificate
                registry.install(cert)
            """,
        )

    def test_verify_before_install_clears(self, reported):
        assert not reported(
            "SEC003",
            """\
            def admit(peer, registry, ca):
                ca.verify_certificate(peer.certificate)
                cert = peer.certificate
                registry.install(cert)
            """,
        )
