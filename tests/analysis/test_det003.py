"""DET003: event handlers stay on the simulated clock."""


HANDLERS = "proj/sim/handlers.py"


class TestFires:
    def test_sleep_inside_a_sim_module_function(self, project):
        findings = project("DET003", {
            HANDLERS: """
                import time

                def on_transfer_done(now):
                    time.sleep(0.01)
                    return now + 1.0
            """,
        })
        assert len(findings) == 1
        assert "time.sleep(...)" in findings[0].message
        assert "wallclock" in findings[0].properties["offendingEffects"]

    def test_callback_pushed_onto_a_queue_is_a_handler(self, project):
        # ``retry`` lives outside repro.sim, but handing it to push()
        # makes it handler code all the same.
        findings = project("DET003", {
            "proj/serving/retry.py": """
                import random

                def retry(now):
                    return now + random.random()

                def schedule_retry(queue, now):
                    queue.push(now + 1.0, retry)
            """,
        })
        assert len(findings) == 1
        assert "'retry'" in findings[0].message
        assert "global_random" in findings[0].properties["offendingEffects"]

    def test_queue_drainer_runs_handler_code_inline(self, project):
        findings = project("DET003", {
            "proj/serving/loop.py": """
                import os

                def drain(completions, cutoff):
                    for when, payload in completions.pop_until(cutoff):
                        audit(when)

                def audit(when):
                    os.listdir('.')
            """,
        })
        assert len(findings) == 1
        assert "'drain'" in findings[0].message
        assert "real_io" in findings[0].properties["offendingEffects"]
        # the witness descends into the helper that actually does the I/O
        assert "audit" in " ".join(step[2] for step in findings[0].trace)

    def test_helper_module_reached_from_a_handler(self, project):
        findings = project("DET003", {
            "proj/util.py": """
                import time

                def backoff():
                    time.sleep(0.5)
            """,
            HANDLERS: """
                from proj.util import backoff

                def on_timeout(now):
                    backoff()
                    return now
            """,
        })
        assert len(findings) == 1
        # reported at the handler (the contract root); the trace walks
        # down into the helper module that really sleeps
        assert "'on_timeout'" in findings[0].message
        paths = [step[0] for step in findings[0].trace]
        assert paths[0] == "proj/sim/handlers.py"
        assert paths[-1] == "proj/util.py"


class TestQuiet:
    def test_rescheduling_on_the_simulated_timeline(self, project):
        assert project("DET003", {
            HANDLERS: """
                def on_transfer_done(now, queue):
                    queue.push(now + 1.0, retry)

                def retry(now):
                    return now
            """,
        }) == []

    def test_simulated_network_send_is_fine(self, project):
        # DET003 polices the real world, not the simulated one.
        assert project("DET003", {
            HANDLERS: """
                def on_replicate(now, network, payload):
                    network.transfer(0, 1, payload)
                    return now
            """,
        }) == []

    def test_seeded_rng_is_fine(self, project):
        assert project("DET003", {
            HANDLERS: """
                def on_jitter(now, rng):
                    return now + rng.random()
            """,
        }) == []

    def test_non_sim_code_without_queue_contact_is_not_a_root(self, project):
        assert project("DET003", {
            "proj/bench/timing.py": """
                import time

                def measure():
                    return time.perf_counter()
            """,
        }) == []

    def test_plain_list_pop_is_not_a_drain_site(self, project):
        assert project("DET003", {
            "proj/serving/stack.py": """
                import time

                def last_item(items):
                    note_wallclock()
                    return items.pop()

                def note_wallclock():
                    return time.time()
            """,
        }) == []
