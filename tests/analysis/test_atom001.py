"""ATOM001: metadata mutation + network send must route through the WAL."""


BOOTSTRAP = "proj/core/bootstrap.py"
METALOG = "proj/core/metalog.py"

STATE = """
    class BootstrapState:
        def __init__(self):
            self.peers = {}
            self.roles = {}
"""

WAL = """
    from proj.core.state import BootstrapState

    class MetadataLog:
        def __init__(self):
            self.entries = []

        def append(self, entry):
            self.entries.append(entry)

        def apply(self, state: BootstrapState, entry):
            state.peers[entry[1]] = entry[2]
"""


class TestFires:
    def test_hand_rolled_replication(self, project):
        findings = project("ATOM001", {
            "proj/core/state.py": STATE,
            BOOTSTRAP: """
                from proj.core.state import BootstrapState

                class Bootstrap:
                    def __init__(self, network):
                        self.state = BootstrapState()
                        self.network = network

                    def admit(self, peer_id, info):
                        self.state.peers[peer_id] = info
                        self.network.transfer(0, 1, ('admit', peer_id, info))
            """,
        })
        assert len(findings) == 1
        finding = findings[0]
        assert "'Bootstrap.admit'" in finding.message
        assert "metalog WAL reducer" in finding.message
        sig = finding.properties["effectSignature"]
        assert sig["network_send"] is True
        assert any("BootstrapState" in owner for owner in sig["mutates"])

    def test_pair_split_across_helpers_is_still_caught(self, project):
        # The mutation and the send live in different functions; only the
        # caller owns both effects — restructuring must not hide the pair.
        findings = project("ATOM001", {
            "proj/core/state.py": STATE,
            BOOTSTRAP: """
                from proj.core.state import BootstrapState

                class Bootstrap:
                    def __init__(self, network):
                        self.state = BootstrapState()
                        self.network = network

                    def _write(self, peer_id, info):
                        self.state.peers[peer_id] = info

                    def _replicate(self, entry):
                        self.network.transfer(0, 1, entry)

                    def admit(self, peer_id, info):
                        self._write(peer_id, info)
                        self._replicate(('admit', peer_id, info))
            """,
        })
        assert len(findings) == 1
        assert "'Bootstrap.admit'" in findings[0].message


class TestQuiet:
    def test_mutation_routed_through_the_reducer(self, project):
        # Both effects appear in admit's signature, but the only chain to
        # the mutation passes through metalog — the sanctioned path.
        assert project("ATOM001", {
            "proj/core/state.py": STATE,
            METALOG: WAL,
            BOOTSTRAP: """
                from proj.core.state import BootstrapState
                from proj.core.metalog import MetadataLog

                class Bootstrap:
                    def __init__(self, network):
                        self.state = BootstrapState()
                        self.log = MetadataLog()
                        self.network = network

                    def admit(self, peer_id, info):
                        entry = ('admit', peer_id, info)
                        self.log.append(entry)
                        self.log.apply(self.state, entry)
                        self.network.transfer(0, 1, entry)
            """,
        }) == []

    def test_mutation_without_a_send_is_fine(self, project):
        assert project("ATOM001", {
            "proj/core/state.py": STATE,
            BOOTSTRAP: """
                from proj.core.state import BootstrapState

                class Bootstrap:
                    def __init__(self):
                        self.state = BootstrapState()

                    def admit_local(self, peer_id, info):
                        self.state.peers[peer_id] = info
            """,
        }) == []

    def test_send_without_metadata_mutation_is_fine(self, project):
        assert project("ATOM001", {
            BOOTSTRAP: """
                class Bootstrap:
                    def __init__(self, network):
                        self.network = network
                        self.outbox = []

                    def gossip(self, payload):
                        self.outbox.append(payload)
                        self.network.broadcast(0, payload)
            """,
        }) == []

    def test_the_reducer_itself_is_exempt(self, project):
        # metalog replicating its own records is the sanctioned design.
        assert project("ATOM001", {
            "proj/core/state.py": STATE,
            METALOG: """
                from proj.core.state import BootstrapState

                class MetadataLog:
                    def __init__(self, network):
                        self.network = network

                    def append_and_ship(self, state: BootstrapState, entry):
                        state.peers[entry[1]] = entry[2]
                        self.network.transfer(0, 1, entry)
            """,
        }) == []
