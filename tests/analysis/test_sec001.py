"""SEC001: access-control taint from unmasked fetches to the wire."""


class TestPositive:
    def test_remote_execute_local_reaching_transfer_fires(self, project):
        findings = project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(network, owner, query_peer, sql):
                    execution = owner.execute_local(sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return execution
                """
            },
        )
        assert len(findings) == 1
        assert "execute_local" in findings[0].message

    def test_fetch_without_user_fires(self, project):
        findings = project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(network, owner, query_peer, sql):
                    rows = owner.execute_fetch('t', sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return rows
                """
            },
        )
        assert len(findings) == 1

    def test_fetch_with_literal_none_user_fires(self, project):
        findings = project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(network, owner, query_peer, sql):
                    rows = owner.execute_fetch('t', sql, user=None)
                    network.transfer(owner.host, query_peer.host, 64)
                    return rows
                """
            },
        )
        assert len(findings) == 1

    def test_wire_reached_through_a_callee_still_fires(self, project):
        findings = project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def ship(network, src, dst, nbytes):
                    return network.transfer(src, dst, nbytes)

                def run(network, owner, query_peer, sql):
                    execution = owner.execute_local(sql)
                    return ship(network, owner.host, query_peer.host, 64)
                """
            },
        )
        assert len(findings) == 1

    def test_check_reached_only_via_ambiguous_edge_still_fires(self, project):
        # ``thing.execute()`` resolves (by name) to every ``execute`` method;
        # one of them performs a role check, but that ambiguous edge must
        # not vouch for the taint path.
        findings = project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                class Checker:
                    def execute(self, role):
                        return role.rule_for('t.c')

                class Other:
                    def execute(self):
                        return 1

                def run(network, owner, query_peer, thing, sql):
                    thing.execute()
                    execution = owner.execute_local(sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return execution
                """
            },
        )
        assert len(findings) == 1


class TestNegative:
    def test_fetch_with_a_user_variable_is_trusted(self, project):
        assert not project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(network, owner, query_peer, sql, user):
                    rows = owner.execute_fetch('t', sql, user=user)
                    network.transfer(owner.host, query_peer.host, 64)
                    return rows
                """
            },
        )

    def test_peers_own_local_read_is_not_a_source(self, project):
        assert not project(
            "SEC001",
            {
                "src/repro/core/peer.py": """\
                class Peer:
                    def answer(self, network, dst, sql):
                        execution = self.execute_local(sql)
                        network.transfer(self.host, dst, 64)
                        return execution
                """
            },
        )

    def test_no_wire_reach_means_no_finding(self, project):
        assert not project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(owner, sql):
                    return owner.execute_local(sql)
                """
            },
        )

    def test_role_check_in_the_same_function_clears_it(self, project):
        assert not project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(network, owner, query_peer, role, sql):
                    if role.rule_for('t.c') is None:
                        raise ValueError('denied')
                    execution = owner.execute_local(sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return execution
                """
            },
        )

    def test_check_in_lexical_parent_covers_the_closure(self, project):
        # The engines' idiom: the enclosing function proves the pushdown
        # safe, the closure does the remote work.
        assert not project(
            "SEC001",
            {
                "src/repro/core/engine.py": """\
                def run(context, network, owner, query_peer, role, sql):
                    if role.rule_for('t.c') is None:
                        raise ValueError('denied')

                    def run_remote():
                        execution = owner.execute_local(sql)
                        network.transfer(owner.host, query_peer.host, 64)
                        return execution

                    return context.call_resilient('p', run_remote)
                """
            },
        )

    def test_check_reached_through_an_imported_helper_clears_it(self, project):
        assert not project(
            "SEC001",
            {
                "src/repro/core/gate.py": """\
                def require_unrestricted_read(role):
                    if role.rule_for('t.c') is None:
                        raise ValueError('denied')
                """,
                "src/repro/core/engine.py": """\
                from repro.core.gate import require_unrestricted_read

                def run(network, owner, query_peer, role, sql):
                    require_unrestricted_read(role)
                    execution = owner.execute_local(sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return execution
                """,
            },
        )

    def test_tests_category_is_not_emitted(self, project):
        assert not project(
            "SEC001",
            {
                "tests/core/test_engine.py": """\
                def run(network, owner, query_peer, sql):
                    execution = owner.execute_local(sql)
                    network.transfer(owner.host, query_peer.host, 64)
                    return execution
                """
            },
        )
