"""The framework itself: registry, suppressions, baseline, reports."""

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Severity,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    register_rule,
)
from repro.analysis.baseline import BASELINE_VERSION
from repro.analysis.engine import PARSE_RULE_ID, categorize
from repro.analysis.registry import AnalysisError, Rule
from repro.analysis.report import to_json, to_text


class TestRegistry:
    def test_all_seven_rules_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        for expected in (
            "CFG001",
            "ISO001",
            "ISO002",
            "SIM001",
            "SIM002",
            "SIM003",
            "SIM004",
        ):
            assert expected in ids

    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            get_rule("NOPE999")

    def test_duplicate_id_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate rule id"):

            @register_rule
            class Clash(Rule):
                id = "SIM001"
                description = "clashes with the real SIM001"

    def test_missing_id_rejected(self):
        with pytest.raises(AnalysisError, match="has no id"):

            @register_rule
            class Nameless(Rule):
                description = "forgot the id"

    def test_unknown_category_rejected(self):
        with pytest.raises(AnalysisError, match="unknown categories"):

            @register_rule
            class Lost(Rule):
                id = "ZZZ999"
                description = "bad category"
                categories = ("docs",)


class TestCategorize:
    def test_paths_map_to_categories(self):
        assert categorize("src/repro/core/peer.py") == "src"
        assert categorize("tests/test_peer.py") == "tests"
        assert categorize("benchmarks/run.py") == "benchmarks"
        assert categorize("scripts/tool.py") == "src"


class TestSuppressions:
    def test_one_comment_can_allow_multiple_rules(self):
        source = (
            "import random\n"
            "import time\n"
            "x = random.random() + time.time()"
            "  # repro: allow[SIM001,SIM002] demo\n"
        )
        findings = analyze_source(source, path="src/repro/fake.py")
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)
        assert {f.rule for f in findings} == {"SIM001", "SIM002"}

    def test_comment_inside_string_is_not_a_suppression(self):
        source = (
            "import random\n"
            'note = "# repro: allow[SIM001]"\n'
            "x = random.random()\n"
        )
        findings = analyze_source(source, path="src/repro/fake.py")
        assert len(findings) == 1
        assert not findings[0].suppressed


class TestParseErrors:
    def test_syntax_error_yields_parse_finding(self):
        findings = analyze_source("def broken(:\n", path="src/repro/bad.py")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert findings[0].severity is Severity.ERROR
        assert findings[0].reported


class TestBaseline:
    SOURCE = "import random\nx = random.random()\n"

    def _finding(self):
        (finding,) = analyze_source(self.SOURCE, path="src/repro/fake.py")
        return finding

    def test_matching_entry_baselines_finding(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule="SIM001",
                    path="src/repro/fake.py",
                    match="x = random.random()",
                    justification="grandfathered",
                )
            ]
        )
        finding = self._finding()
        assert baseline.apply(finding)
        assert finding.baselined
        assert not finding.reported
        assert finding.justification == "grandfathered"
        assert not baseline.stale_entries()

    def test_non_matching_entry_is_stale(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule="SIM001",
                    path="src/repro/fake.py",
                    match="this line no longer exists",
                    justification="obsolete",
                )
            ]
        )
        finding = self._finding()
        assert not baseline.apply(finding)
        assert finding.reported
        assert len(baseline.stale_entries()) == 1

    def test_roundtrip_through_json(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        original = Baseline(
            [
                BaselineEntry(
                    rule="SIM001",
                    path="src/repro/fake.py",
                    match="x = random.random()",
                    justification="grandfathered",
                )
            ]
        )
        original.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0] == original.entries[0]

    def test_load_rejects_missing_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": BASELINE_VERSION,
                    "entries": [
                        {
                            "rule": "SIM001",
                            "path": "src/repro/fake.py",
                            "match": "x = random.random()",
                            "justification": "   ",
                        }
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError, match="no justification"):
            Baseline.load(str(path))

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(str(path))

    def test_from_findings_skips_suppressed(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: allow[SIM001] demo\n"
            "y = random.random()\n"
        )
        findings = analyze_source(source, path="src/repro/fake.py")
        baseline = Baseline.from_findings(findings)
        assert len(baseline) == 1
        assert baseline.entries[0].match == "y = random.random()"


class TestReports:
    def _report(self, tmp_path, source):
        target = tmp_path / "src" / "repro"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(source)
        return analyze_paths([str(target / "mod.py")])

    def test_json_report_shape(self, tmp_path):
        report = self._report(
            tmp_path, "import random\nx = random.random()\n"
        )
        payload = json.loads(to_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["ok"] is False
        assert payload["counts"]["reported"] == 1
        assert payload["findings"][0]["rule"] == "SIM001"
        assert payload["findings"][0]["snippet"] == "x = random.random()"

    def test_json_accepted_section_under_verbose(self, tmp_path):
        report = self._report(
            tmp_path,
            "import random\nx = random.random()  # repro: allow[SIM001] ok\n",
        )
        payload = json.loads(to_json(report, include_clean=True))
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["accepted"][0]["justification"] == "ok"

    def test_text_report_mentions_location_and_summary(self, tmp_path):
        report = self._report(
            tmp_path, "import random\nx = random.random()\n"
        )
        text = to_text(report)
        assert "SIM001" in text
        assert ":2:" in text
        assert "1 finding(s)" in text
