"""ARCH001: the layering contract over the module import graph."""


class TestPositive:
    def test_sim_importing_core_fires(self, project):
        findings = project(
            "ARCH001",
            {
                "src/repro/sim/net.py": "from repro.core.peer import Peer\n",
                "src/repro/core/peer.py": "class Peer:\n    pass\n",
            },
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sim/net.py"
        assert "sim" in findings[0].message

    def test_sqlengine_importing_sim_fires(self, project):
        findings = project(
            "ARCH001",
            {
                "src/repro/sqlengine/exe.py": "import repro.sim.clock\n",
                "src/repro/sim/clock.py": "TICK = 1\n",
            },
        )
        assert len(findings) == 1

    def test_analysis_importing_any_repro_module_fires(self, project):
        findings = project(
            "ARCH001",
            {
                "src/repro/analysis/fake.py": (
                    "from repro.errors import ReproError\n"
                ),
                "src/repro/errors.py": "class ReproError(Exception):\n    pass\n",
            },
        )
        # analysis must stay stdlib-only: even ``errors`` is off limits.
        assert len(findings) == 1


class TestNegative:
    def test_sim_importing_errors_is_allowed(self, project):
        assert not project(
            "ARCH001",
            {
                "src/repro/sim/net.py": "from repro.errors import NetworkError\n",
                "src/repro/errors.py": "class NetworkError(Exception):\n    pass\n",
            },
        )

    def test_core_may_import_anything(self, project):
        assert not project(
            "ARCH001",
            {
                "src/repro/core/peer.py": (
                    "from repro.sim.clock import TICK\n"
                    "from repro.sqlengine.db import Database\n"
                ),
                "src/repro/sim/clock.py": "TICK = 1\n",
                "src/repro/sqlengine/db.py": "class Database:\n    pass\n",
            },
        )

    def test_type_checking_guarded_import_is_exempt(self, project):
        assert not project(
            "ARCH001",
            {
                "src/repro/sim/net.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.core.peer import Peer\n"
                ),
                "src/repro/core/peer.py": "class Peer:\n    pass\n",
            },
        )

    def test_intra_unit_imports_are_free(self, project):
        assert not project(
            "ARCH001",
            {
                "src/repro/sim/net.py": "from repro.sim.clock import TICK\n",
                "src/repro/sim/clock.py": "TICK = 1\n",
            },
        )

    def test_tests_category_is_not_emitted(self, project):
        # The path puts this copy of repro.sim.net in the tests category;
        # the violation is real but ARCH001 only emits for src files.
        assert not project(
            "ARCH001",
            {
                "tests/repro/sim/net.py": "from repro.core.peer import Peer\n",
                "src/repro/core/peer.py": "class Peer:\n    pass\n",
            },
        )
