"""Tier-4 effect inference: extraction, fixpoint, witnesses, determinism."""

import ast
import random
import textwrap

import pytest

from repro.analysis import analyze_project
from repro.analysis.astcache import AstCache
from repro.analysis.effects import (
    EFFECT_TAG,
    EffectInference,
    EffectSignature,
    class_name_tokens,
    compute_effect_bases,
    extract_module_effects,
    parse_dotted_qual,
    receiver_name_tokens,
)
from repro.analysis.registry import get_rule


def infer(graph_of, files):
    return EffectInference.for_graph(graph_of(files))


def sig(inference, dotted):
    qual = parse_dotted_qual(dotted, inference.bases)
    assert qual is not None, f"no such function: {dotted}"
    return inference.signature(qual)


class TestIntrinsics:
    def test_wallclock_random_io_network(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time
                import random
                import os

                def clock():
                    return time.perf_counter()

                def entropy():
                    return random.random()

                def disk(path):
                    return open(path).read()

                def wire(self_net, payload):
                    self_net.transfer(0, 1, payload)

                def listdir():
                    return os.listdir('.')
            """,
        })
        assert sig(inference, "proj.mod.clock").wallclock
        assert sig(inference, "proj.mod.entropy").global_random
        assert sig(inference, "proj.mod.disk").real_io
        assert sig(inference, "proj.mod.wire").network_send
        assert sig(inference, "proj.mod.listdir").real_io

    def test_from_imports_resolve_to_intrinsics(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                from time import perf_counter
                from random import shuffle as mix

                def t():
                    return perf_counter()

                def r(items):
                    mix(items)
            """,
        })
        assert sig(inference, "proj.mod.t").wallclock
        assert sig(inference, "proj.mod.r").global_random

    def test_seeded_rng_instance_is_not_global_random(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import random

                def draw(rng):
                    return rng.random()

                def make():
                    return random.Random(7)
            """,
        })
        assert not sig(inference, "proj.mod.draw").global_random
        assert not sig(inference, "proj.mod.make").global_random

    def test_self_mutation_owner_is_enclosing_class(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                class Ledger:
                    def record(self, entry):
                        self.entries.append(entry)

                    def reset(self):
                        self.entries = []
            """,
        })
        assert sig(inference, "proj.mod.Ledger.record").mutates == (
            "proj.mod:Ledger",
        )
        assert sig(inference, "proj.mod.Ledger.reset").mutates == (
            "proj.mod:Ledger",
        )

    def test_annotated_param_mutation_owner(self, graph_of):
        inference = infer(graph_of, {
            "proj/state.py": """
                class BootstrapState:
                    def __init__(self):
                        self.peers = {}
            """,
            "proj/apply.py": """
                from proj.state import BootstrapState

                def apply(state: BootstrapState, entry):
                    state.peers[entry[0]] = entry[1]
            """,
        })
        assert sig(inference, "proj.apply.apply").mutates == (
            "proj.state:BootstrapState",
        )

    def test_local_container_mutation_is_not_shared(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                def build(rows):
                    out = []
                    for row in rows:
                        out.append(row)
                    return out
            """,
        })
        assert sig(inference, "proj.mod.build").pure

    def test_global_statement_mutation(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                _COUNTER = 0

                def bump():
                    global _COUNTER
                    _COUNTER += 1
            """,
        })
        assert sig(inference, "proj.mod.bump").mutates == (
            "proj.mod:<globals>",
        )


class TestPropagation:
    def test_effects_flow_up_call_chains(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def leaf():
                    return time.monotonic()

                def middle():
                    return leaf()

                def top():
                    return middle()
            """,
        })
        assert sig(inference, "proj.mod.top").wallclock

    def test_mutual_recursion_converges(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def ping(n):
                    if n <= 0:
                        return time.monotonic()
                    return pong(n - 1)

                def pong(n):
                    return ping(n - 1)

                def spin(n):
                    return spin(n - 1) if n else 0
            """,
        })
        assert sig(inference, "proj.mod.ping").wallclock
        assert sig(inference, "proj.mod.pong").wallclock
        assert sig(inference, "proj.mod.spin").pure

    def test_unique_fallback_method_needs_receiver_match(self, graph_of):
        files = {
            "proj/wal.py": """
                class MetadataLog:
                    def append(self, entry):
                        self.entries.append(entry)
            """,
            "proj/use.py": """
                class Holder:
                    def good(self, entry):
                        # receiver names the class: effects propagate
                        self.metadata_log.append(entry)

                    def unrelated(self, pending, entry):
                        # a plain list named nothing like MetadataLog
                        pending.append(entry)
            """,
        }
        inference = infer(graph_of, files)
        assert "proj.wal:MetadataLog" in sig(
            inference, "proj.use.Holder.good"
        ).mutates
        assert all(
            "MetadataLog" not in owner
            for owner in sig(inference, "proj.use.Holder.unrelated").mutates
        )

    def test_decorator_cannot_launder_effects(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def stamp(tag):
                    started = time.monotonic()
                    def wrap(fn):
                        return fn
                    return wrap

                @stamp('x')
                def decorated(v):
                    return v

                def plain(v):
                    return v
            """,
        })
        # an effectful decorator taints the function it wraps
        assert sig(inference, "proj.mod.decorated").wallclock
        assert sig(inference, "proj.mod.plain").pure

    def test_function_reference_argument_is_assumed_invoked(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def nap(now):
                    time.sleep(0.1)

                def launder(runner):
                    runner(nap)
            """,
        })
        # higher-order laundering: passing ``nap`` taints the passer
        assert sig(inference, "proj.mod.launder").wallclock


class TestRaises:
    def test_raise_propagates_until_caught(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                def boom():
                    raise ValueError('x')

                def passthrough():
                    return boom()

                def guarded():
                    try:
                        return boom()
                    except ValueError:
                        return None
            """,
        })
        assert sig(inference, "proj.mod.passthrough").raises == ("ValueError",)
        assert sig(inference, "proj.mod.guarded").raises == ()

    def test_subclass_caught_through_project_hierarchy(self, graph_of):
        inference = infer(graph_of, {
            "proj/errors.py": """
                class AppError(Exception):
                    pass

                class TimeoutError_(AppError):
                    pass
            """,
            "proj/mod.py": """
                from proj.errors import TimeoutError_

                def boom():
                    raise TimeoutError_('late')

                def guarded():
                    try:
                        return boom()
                    except Exception:
                        return None

                def base_guarded():
                    try:
                        return boom()
                    except AppError:
                        return None
            """,
        })
        assert sig(inference, "proj.mod.boom").raises == ("TimeoutError_",)
        assert sig(inference, "proj.mod.guarded").raises == ()
        assert sig(inference, "proj.mod.base_guarded").raises == ()

    def test_local_raise_inside_try_never_escapes(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                def careful():
                    try:
                        raise KeyError('k')
                    except KeyError:
                        return None
            """,
        })
        assert sig(inference, "proj.mod.careful").raises == ()


class TestWitness:
    def test_witness_is_grounded_and_ordered(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def leaf():
                    return time.monotonic()

                def top():
                    return leaf()
            """,
        })
        qual = parse_dotted_qual("proj.mod.top", inference.bases)
        hops = inference.witness(qual, lambda a: a[0] == "wallclock")
        assert [h[0] for h in hops] == ["proj.mod:top", "proj.mod:leaf"]
        assert hops[-1][2] == "time.monotonic(...)"

    def test_witness_respects_exclusions(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                import time

                def via_a():
                    return time.monotonic()

                def top():
                    return via_a()
            """,
        })
        qual = parse_dotted_qual("proj.mod.top", inference.bases)
        blocked = inference.witness(
            qual,
            lambda a: a[0] == "wallclock",
            exclude=frozenset({"proj.mod:via_a"}),
        )
        assert blocked is None


class TestCaching:
    def test_bases_persist_under_effect_tag(self, graph_of, tmp_path):
        files = {
            "proj/mod.py": """
                import time

                def t():
                    return time.perf_counter()
            """,
        }
        graph = graph_of(files)
        cache = AstCache(str(tmp_path))
        graph.ast_cache = cache
        bases, _ = compute_effect_bases(graph)
        source = "\n".join(graph.modules["proj.mod"].lines)
        assert cache.load_aux(source, EFFECT_TAG) is not None

        # A second graph over the same source hits the cache.
        graph2 = graph_of(files)
        graph2.ast_cache = cache
        bases2, _ = compute_effect_bases(graph2)
        assert sorted(bases2) == sorted(bases)
        assert bases2["proj.mod:t"].intrinsics[0].atom == ("wallclock",)

    def test_inference_is_memoized_per_graph(self, graph_of):
        graph = graph_of({"proj/mod.py": "def f():\n    return 1\n"})
        first = EffectInference.for_graph(graph)
        assert EffectInference.for_graph(graph) is first


class TestDeterminism:
    FILES = {
        "proj/sim/handlers.py": (
            "import time\n"
            "from proj.sim.helpers import delay\n"
            "def on_done(now):\n"
            "    return delay(now)\n"
        ),
        "proj/sim/helpers.py": (
            "import time\n"
            "def delay(now):\n"
            "    time.sleep(0.01)\n"
            "    return now\n"
        ),
        "proj/sim/other.py": (
            "def noop():\n"
            "    return 1\n"
        ),
        "proj/plain.py": (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        ),
    }

    def test_shuffled_file_orders_render_identically(self):
        rule = [get_rule("DET003")]
        rendered = []
        paths = list(self.FILES)
        rng = random.Random(11)
        for _ in range(4):
            rng.shuffle(paths)
            files = {path: self.FILES[path] for path in paths}
            findings = analyze_project(files, rules=rule)
            rendered.append([f.render() for f in findings])
        assert rendered[0]  # the contract violation is found at all
        assert all(r == rendered[0] for r in rendered[1:])

    def test_shuffled_file_orders_infer_identical_signatures(self, graph_of):
        dumps = []
        paths = list(self.FILES)
        rng = random.Random(13)
        for _ in range(4):
            rng.shuffle(paths)
            inference = infer(
                graph_of, {path: self.FILES[path] for path in paths}
            )
            dumps.append(
                {
                    qual: signature.to_dict()
                    for qual, signature in inference.all_signatures().items()
                }
            )
        assert all(d == dumps[0] for d in dumps[1:])


class TestHelpers:
    def test_class_name_tokens(self):
        tokens = class_name_tokens("MetadataLog")
        assert {"metadata", "log", "metadatalog"} <= tokens

    def test_receiver_name_tokens_depluralize(self):
        tokens = receiver_name_tokens("self._events")
        assert "events" in tokens and "event" in tokens
        assert "self" not in tokens

    def test_parse_dotted_qual_forms(self, graph_of):
        inference = infer(graph_of, {
            "proj/mod.py": """
                class Queue:
                    def run(self):
                        return None

                def helper():
                    return 2
            """,
        })
        assert parse_dotted_qual("proj.mod.Queue.run", inference.bases) == (
            "proj.mod:Queue.run"
        )
        assert parse_dotted_qual("proj.mod.helper", inference.bases) == (
            "proj.mod:helper"
        )
        assert parse_dotted_qual("proj.mod", inference.bases) == (
            "proj.mod:<module>"
        )
        assert parse_dotted_qual("no.such.thing", inference.bases) is None

    def test_signature_render(self):
        assert EffectSignature().render() == "pure"
        rendered = EffectSignature(
            wallclock=True, mutates=("m:Owner",), raises=("KeyError",)
        ).render()
        assert "wallclock" in rendered
        assert "mutates(Owner)" in rendered
        assert "raises(KeyError)" in rendered
