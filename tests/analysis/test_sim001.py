"""SIM001: global/unseeded random use."""


class TestPositive:
    def test_module_level_random_call_fires(self, reported):
        findings = reported(
            "SIM001",
            """\
            import random

            def jitter():
                return random.random()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "SIM001"
        assert findings[0].line == 4

    def test_aliased_module_fires(self, reported):
        findings = reported(
            "SIM001",
            """\
            import random as rnd

            def pick(items):
                return rnd.choice(items)
            """,
        )
        assert len(findings) == 1

    def test_from_import_of_global_function_fires(self, reported):
        findings = reported(
            "SIM001",
            """\
            from random import shuffle

            def mix(items):
                shuffle(items)
            """,
        )
        assert len(findings) == 1
        assert "shuffle" in findings[0].message

    def test_system_random_fires(self, reported):
        findings = reported(
            "SIM001",
            """\
            import random

            def entropy():
                return random.SystemRandom().random()
            """,
        )
        assert findings
        assert "SystemRandom" in findings[0].message


class TestNegative:
    def test_seeded_instance_is_clean(self, reported):
        assert not reported(
            "SIM001",
            """\
            import random

            def sample(seed):
                rng = random.Random(seed)
                return rng.random() + rng.randint(0, 3)
            """,
        )

    def test_from_import_of_random_class_is_clean(self, reported):
        assert not reported(
            "SIM001",
            """\
            from random import Random

            def sample(seed):
                return Random(seed).random()
            """,
        )


class TestSuppression:
    def test_allow_comment_suppresses(self, analyze):
        findings = analyze(
            "SIM001",
            """\
            import random

            def jitter():
                return random.random()  # repro: allow[SIM001] demo only
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert not findings[0].reported
        assert findings[0].justification == "demo only"
