"""Admission gates: deadline feasibility, backpressure, queue bound."""

import pytest

from repro.core import LANE_BULK, LANE_INTERACTIVE, ServingConfig
from repro.errors import AdmissionRejectedError, ServingError
from repro.serving import (
    AdmissionController,
    REASON_BACKPRESSURE,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    ServingRequest,
)


def make_controller(**overrides):
    return AdmissionController(ServingConfig(**overrides))


class TestServingRequest:
    def test_defaults(self):
        request = ServingRequest(tenant="acme", sql="SELECT 1")
        assert request.lane == LANE_INTERACTIVE
        assert request.deadline_s is None

    def test_rejects_empty_tenant(self):
        with pytest.raises(ServingError):
            ServingRequest(tenant="", sql="SELECT 1")

    def test_rejects_unknown_lane(self):
        with pytest.raises(ServingError, match="lane"):
            ServingRequest(tenant="acme", sql="SELECT 1", lane="batch")

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ServingError):
            ServingRequest(tenant="acme", sql="SELECT 1", deadline_s=0.0)


class TestGates:
    def test_admits_when_all_gates_pass(self):
        controller = make_controller()
        ticket, queued = controller.offer(
            ServingRequest(tenant="acme", sql="SELECT 1"),
            now=0.0,
            estimated_delay_s=0.0,
            retry_after_s=0.5,
        )
        assert ticket.admitted
        assert ticket.queue_depth == 1
        assert queued is not None
        assert queued.deadline_at == pytest.approx(30.0)

    def test_deadline_gate_rejects_unmeetable_request(self):
        controller = make_controller()
        ticket, queued = controller.offer(
            ServingRequest(tenant="acme", sql="SELECT 1", deadline_s=5.0),
            now=100.0,
            estimated_delay_s=6.0,
            retry_after_s=6.0,
        )
        assert not ticket.admitted
        assert ticket.reason == REASON_DEADLINE
        assert ticket.retry_after_s == pytest.approx(6.0)
        assert queued is None

    def test_backpressure_sheds_bulk_not_interactive(self):
        controller = make_controller(bulk_backpressure_s=10.0)
        bulk, _ = controller.offer(
            ServingRequest(tenant="acme", sql="SELECT 1", lane=LANE_BULK),
            now=0.0,
            estimated_delay_s=11.0,
            retry_after_s=11.0,
        )
        interactive, _ = controller.offer(
            ServingRequest(tenant="acme", sql="SELECT 1"),
            now=0.0,
            estimated_delay_s=11.0,
            retry_after_s=11.0,
        )
        assert not bulk.admitted
        assert bulk.reason == REASON_BACKPRESSURE
        assert interactive.admitted

    def test_full_queue_sheds_with_hint(self):
        controller = make_controller(queue_depth=2)
        request = ServingRequest(tenant="acme", sql="SELECT 1")
        for _ in range(2):
            ticket, _ = controller.offer(request, 0.0, 0.0, 0.5)
            assert ticket.admitted
        ticket, _ = controller.offer(request, 0.0, 0.0, 0.5)
        assert not ticket.admitted
        assert ticket.reason == REASON_QUEUE_FULL
        assert ticket.retry_after_s == pytest.approx(0.5)

    def test_queues_are_per_tenant_and_lane(self):
        controller = make_controller(queue_depth=1)
        a = ServingRequest(tenant="a", sql="SELECT 1")
        assert controller.offer(a, 0.0, 0.0, 0.5)[0].admitted
        assert not controller.offer(a, 0.0, 0.0, 0.5)[0].admitted
        # A full queue for tenant a does not touch tenant b or a's bulk lane.
        b = ServingRequest(tenant="b", sql="SELECT 1")
        a_bulk = ServingRequest(tenant="a", sql="SELECT 1", lane=LANE_BULK)
        assert controller.offer(b, 0.0, 0.0, 0.5)[0].admitted
        assert controller.offer(a_bulk, 0.0, 0.0, 0.5)[0].admitted

    def test_pop_is_fifo(self):
        controller = make_controller()
        for sql in ("SELECT 1", "SELECT 2"):
            controller.offer(
                ServingRequest(tenant="acme", sql=sql), 0.0, 0.0, 0.5
            )
        assert controller.pop("acme", LANE_INTERACTIVE).request.sql == "SELECT 1"
        assert controller.pop("acme", LANE_INTERACTIVE).request.sql == "SELECT 2"
        assert controller.pop("acme", LANE_INTERACTIVE) is None

    def test_backlog_and_tenants_with_backlog(self):
        controller = make_controller()
        for tenant in ("zeta", "acme"):
            controller.offer(
                ServingRequest(tenant=tenant, sql="SELECT 1"), 0.0, 0.0, 0.5
            )
        assert controller.backlog() == 2
        assert controller.tenants_with_backlog(LANE_INTERACTIVE) == [
            "acme",
            "zeta",
        ]
        assert controller.tenants_with_backlog(LANE_BULK) == []


class TestTicket:
    def test_raise_if_shed_passes_through_admissions(self):
        controller = make_controller()
        ticket, _ = controller.offer(
            ServingRequest(tenant="acme", sql="SELECT 1"), 0.0, 0.0, 0.5
        )
        assert ticket.raise_if_shed() is ticket

    def test_raise_if_shed_carries_reason_and_hint(self):
        controller = make_controller(queue_depth=1)
        request = ServingRequest(tenant="acme", sql="SELECT 1")
        controller.offer(request, 0.0, 0.0, 0.5)
        ticket, _ = controller.offer(request, 0.0, 0.0, 2.5)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            ticket.raise_if_shed()
        assert excinfo.value.reason == REASON_QUEUE_FULL
        assert excinfo.value.retry_after_s == pytest.approx(2.5)
        assert excinfo.value.tenant == "acme"
