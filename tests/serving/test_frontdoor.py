"""The front door's event loop: dispatch, backpressure, SLO accounting."""

import pytest

from repro.core import (
    BestPeerNetwork,
    LANE_BULK,
    LANE_INTERACTIVE,
    MetricsRegistry,
    ServingConfig,
)
from repro.errors import QueryRejectedError, ServingError
from repro.serving import (
    REASON_BACKPRESSURE,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    ServingFrontDoor,
    ServingRequest,
)
from repro.sim import SimClock
from repro.sqlengine import Column, ColumnType, TableSchema


class StubExecution:
    def __init__(self, latency_s):
        self.latency_s = latency_s


def stub_executor(clock, latency_s=1.0):
    """An engine stand-in that burns ``latency_s`` simulated seconds."""

    def run(request):
        clock.advance(latency_s)
        return StubExecution(latency_s)

    return run


def make_front_door(clock=None, latency_s=1.0, executor=None, **overrides):
    clock = clock or SimClock()
    config = ServingConfig(**overrides)
    return ServingFrontDoor(
        clock,
        executor or stub_executor(clock, latency_s),
        config=config,
        metrics=MetricsRegistry(),
    )


def interactive(tenant="acme", sql="SELECT 1", **kwargs):
    return ServingRequest(tenant=tenant, sql=sql, **kwargs)


class TestDispatch:
    def test_single_request_completes_with_no_wait(self):
        door = make_front_door(workers=1, latency_s=2.0)
        ticket = door.submit(interactive(), now=0.0)
        assert ticket.admitted
        assert door.drain() == pytest.approx(2.0)
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.completed == 1
        assert stats.queue_wait.percentile(0.5) == pytest.approx(0.0)
        assert stats.e2e_latency.percentile(0.5) == pytest.approx(2.0)

    def test_queued_requests_wait_for_a_worker(self):
        door = make_front_door(workers=1, latency_s=2.0)
        for _ in range(3):
            door.submit(interactive(), now=0.0)
        assert door.drain() == pytest.approx(6.0)
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.completed == 3
        # Waits are 0, 2 and 4 simulated seconds on the logical timeline.
        assert stats.queue_wait.percentile(0.99) == pytest.approx(4.0)
        assert stats.e2e_latency.percentile(0.99) == pytest.approx(6.0)

    def test_workers_overlap_on_the_logical_timeline(self):
        door = make_front_door(workers=2, latency_s=2.0)
        for _ in range(2):
            door.submit(interactive(), now=0.0)
        # Two workers, two requests: both run at t=0 and finish at t=2.
        assert door.drain() == pytest.approx(2.0)

    def test_interactive_dispatches_before_bulk(self):
        clock = SimClock()
        order = []

        def recording(request):
            clock.advance(1.0)
            order.append(request.lane)
            return StubExecution(1.0)

        door = make_front_door(clock=clock, executor=recording, workers=1)
        # Fill while the only worker is busy, bulk submitted first.
        door.submit(interactive(lane=LANE_BULK, sql="SELECT 'warm'"), now=0.0)
        door.submit(interactive(lane=LANE_BULK), now=0.0)
        door.submit(interactive(), now=0.0)
        door.drain()
        assert order == [LANE_BULK, LANE_INTERACTIVE, LANE_BULK]

    def test_submissions_must_be_time_ordered(self):
        door = make_front_door()
        door.submit(interactive(), now=5.0)
        with pytest.raises(ServingError, match="time order"):
            door.submit(interactive(), now=4.0)

    def test_advance_to_cannot_go_backwards(self):
        door = make_front_door()
        door.advance_to(10.0)
        with pytest.raises(ServingError):
            door.advance_to(9.0)


class TestShedding:
    def test_queue_full_sheds_with_retry_after(self):
        door = make_front_door(workers=1, queue_depth=2, latency_s=10.0)
        tickets = [door.submit(interactive(), now=0.0) for _ in range(5)]
        # One on the worker, two queued, the rest shed.
        assert [t.admitted for t in tickets] == [
            True,
            True,
            True,
            False,
            False,
        ]
        shed = tickets[-1]
        assert shed.reason == REASON_QUEUE_FULL
        assert shed.retry_after_s >= door.config.retry_after_min_s
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.shed_queue_full == 2
        door.drain()
        assert stats.offered == stats.admitted + stats.shed

    def test_saturation_sheds_bulk_before_interactive(self):
        door = make_front_door(
            workers=1,
            latency_s=10.0,
            queue_depth=32,
            bulk_backpressure_s=15.0,
            initial_service_estimate_s=10.0,
            interactive_deadline_s=1000.0,
            bulk_deadline_s=1000.0,
        )
        # Build a backlog: estimated delay grows past the bulk threshold.
        for _ in range(4):
            assert door.submit(interactive(), now=0.0).admitted
        bulk = door.submit(interactive(lane=LANE_BULK), now=0.0)
        inter = door.submit(interactive(), now=0.0)
        assert not bulk.admitted
        assert bulk.reason == REASON_BACKPRESSURE
        assert inter.admitted

    def test_unmeetable_deadline_rejected_up_front(self):
        door = make_front_door(workers=1, latency_s=10.0, queue_depth=32)
        for _ in range(4):
            door.submit(interactive(), now=0.0)
        ticket = door.submit(interactive(deadline_s=5.0), now=0.0)
        assert not ticket.admitted
        assert ticket.reason == REASON_DEADLINE
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.deadline_missed == 1

    def test_expired_in_queue_dropped_at_dispatch(self):
        door = make_front_door(workers=1, latency_s=10.0)
        door.submit(interactive(), now=0.0)
        # Queues behind a 10s execution with a 3s deadline; the delay
        # estimate at submit time (1 ahead / 1 worker, fresh estimate
        # 1s) still looks feasible, so it is admitted — then expires.
        doomed = door.submit(interactive(deadline_s=3.0), now=0.0)
        assert doomed.admitted
        door.drain()
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        # The drop at dispatch time moves it from the admitted column to
        # deadline_missed, keeping offered == admitted + shed + missed.
        assert stats.deadline_missed == 1
        assert stats.completed == 1
        assert stats.admitted == 1
        assert stats.offered == 2

    def test_accounting_sums_to_offered_after_drain(self):
        door = make_front_door(workers=2, queue_depth=3, latency_s=4.0)
        for i in range(20):
            lane = LANE_BULK if i % 3 == 0 else LANE_INTERACTIVE
            door.submit(
                interactive(tenant="t%d" % (i % 2), lane=lane),
                now=0.25 * i,
            )
        door.drain()
        for stats in door.metrics.serving.values():
            assert stats.offered == (
                stats.admitted + stats.shed + stats.deadline_missed
            )
            assert stats.admitted == stats.completed + stats.failed


class TestFailures:
    def test_engine_failure_counted_and_surfaced(self):
        clock = SimClock()

        def failing(request):
            clock.advance(0.5)
            raise QueryRejectedError("snapshot rejected")

        door = make_front_door(clock=clock, executor=failing, workers=1)
        assert door.submit(interactive(), now=0.0).admitted
        door.drain()
        stats = door.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.failed == 1
        assert stats.completed == 0
        assert stats.admitted == 1
        assert len(door.errors) == 1
        assert "QueryRejectedError" in door.errors[0][2]

    def test_non_library_errors_propagate(self):
        def broken(request):
            raise RuntimeError("a genuine bug")

        door = make_front_door(executor=broken, workers=1)
        with pytest.raises(RuntimeError):
            door.submit(interactive(), now=0.0)


class TestBackpressureSignal:
    def test_estimate_zero_when_workers_idle(self):
        door = make_front_door(workers=4)
        assert door.estimated_queue_delay_s() == 0.0

    def test_estimate_tracks_service_ewma(self):
        door = make_front_door(
            workers=1, latency_s=4.0, service_ewma_alpha=1.0
        )
        door.submit(interactive(), now=0.0)
        door.drain()
        assert door.service_estimate_s == pytest.approx(4.0)

    def test_retry_after_has_a_floor(self):
        door = make_front_door(retry_after_min_s=0.75)
        assert door.retry_after_s(0.0) == pytest.approx(0.75)
        assert door.retry_after_s(3.0) == pytest.approx(3.0)


class TestStatus:
    def test_status_snapshot(self):
        door = make_front_door(workers=1, latency_s=5.0)
        door.register_tenant("acme", 2.0)
        door.submit(interactive(), now=0.0)
        door.submit(interactive(), now=0.0)
        text = door.status()
        assert "workers: 1 busy / 1 total" in text
        assert "acme/interactive: queued=1/16 weight=2" in text
        door.drain()
        assert "0 busy" in door.status()


class TestNetworkIntegration:
    def make_network(self):
        schemas = {
            "item": TableSchema(
                "item",
                [
                    Column("id", ColumnType.INTEGER),
                    Column("label", ColumnType.TEXT),
                ],
                primary_key="id",
            )
        }
        net = BestPeerNetwork(schemas)
        net.add_peer("acme")
        net.load_peer("acme", {"item": [(1, "anvil"), (2, "rope")]})
        return net

    def test_attach_serving_executes_real_queries(self):
        net = self.make_network()
        door = net.attach_serving()
        assert net.serving is door
        ticket = door.submit(
            ServingRequest(tenant="acme", sql="SELECT COUNT(*) FROM item")
        )
        assert ticket.admitted
        door.drain()
        stats = net.metrics.serving[("acme", LANE_INTERACTIVE)]
        assert stats.completed == 1
        assert stats.e2e_latency.count == 1
        assert stats.e2e_latency.percentile(0.5) > 0.0

    def test_serving_shares_the_network_metrics_registry(self):
        net = self.make_network()
        door = net.attach_serving(ServingConfig(workers=2))
        door.submit(ServingRequest(tenant="acme", sql="SELECT id FROM item"))
        door.drain()
        assert ("acme", LANE_INTERACTIVE) in net.metrics.serving
