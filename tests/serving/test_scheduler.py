"""Stride scheduler: weighted shares, determinism, no banked credit."""

import pytest

from repro.core.config import LANE_BULK, LANE_INTERACTIVE
from repro.errors import ServingError
from repro.serving import WeightedFairScheduler


def dispatch_counts(scheduler, candidates, rounds, lane=LANE_INTERACTIVE):
    counts = {tenant: 0 for tenant in candidates}
    for _ in range(rounds):
        tenant = scheduler.next_tenant(lane, candidates)
        scheduler.charge(tenant, lane)
        counts[tenant] += 1
    return counts


class TestWeights:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ServingError):
            WeightedFairScheduler().set_weight("acme", 0.0)

    def test_unregistered_tenant_defaults_to_one(self):
        assert WeightedFairScheduler().weight("ghost") == 1.0


class TestFairness:
    def test_equal_weights_round_robin(self):
        scheduler = WeightedFairScheduler()
        counts = dispatch_counts(scheduler, ["a", "b"], 10)
        assert counts == {"a": 5, "b": 5}

    def test_shares_proportional_to_weights(self):
        scheduler = WeightedFairScheduler()
        scheduler.set_weight("heavy", 3.0)
        scheduler.set_weight("light", 1.0)
        counts = dispatch_counts(scheduler, ["heavy", "light"], 40)
        assert counts["heavy"] == 30
        assert counts["light"] == 10

    def test_ties_break_on_name(self):
        scheduler = WeightedFairScheduler()
        assert scheduler.next_tenant(LANE_INTERACTIVE, ["zeta", "acme"]) == (
            "acme"
        )

    def test_lanes_account_independently(self):
        scheduler = WeightedFairScheduler()
        for _ in range(3):
            scheduler.charge("acme", LANE_INTERACTIVE)
        # All interactive dispatches went to acme; bulk is untouched.
        assert scheduler.next_tenant(LANE_BULK, ["acme", "zeta"]) == "acme"
        assert scheduler.next_tenant(LANE_INTERACTIVE, ["acme", "zeta"]) == (
            "zeta"
        )

    def test_idle_tenant_does_not_bank_credit(self):
        scheduler = WeightedFairScheduler()
        # Tenant a alone keeps the lane busy for a long stretch.
        for _ in range(100):
            scheduler.charge("a", LANE_INTERACTIVE)
        # When b shows up it re-enters at the lane floor: near-alternation,
        # not a 100-dispatch monopoly to "catch up".
        counts = dispatch_counts(scheduler, ["a", "b"], 10)
        assert counts["b"] <= 6

    def test_deterministic_across_instances(self):
        def run():
            scheduler = WeightedFairScheduler()
            scheduler.set_weight("a", 2.0)
            scheduler.set_weight("b", 1.0)
            scheduler.set_weight("c", 5.0)
            order = []
            for _ in range(24):
                tenant = scheduler.next_tenant(
                    LANE_INTERACTIVE, ["a", "b", "c"]
                )
                scheduler.charge(tenant, LANE_INTERACTIVE)
                order.append(tenant)
            return order

        assert run() == run()
