"""Fault-tolerant execution primitives: retry, breakers, deadlines.

The paper's operational claim (§3.2, Algorithm 1) is that BestPeer++ keeps
answering queries correctly while "machine failures in cloud environment
are not uncommon".  This module supplies the building blocks the query path
uses to make that claim hold under *message-level* faults, not just whole
instance crashes:

* :class:`RetryPolicy` — exponential backoff with seeded jitter, capped by
  an attempt count and a total-wait budget, all in simulated seconds,
* :class:`CircuitBreaker` — per-peer failure isolation: after a run of
  consecutive transient failures the breaker opens and the caller waits out
  a cooldown before probing again (half-open),
* :class:`Deadline` — a query-wide time budget propagated into every retry
  loop, and
* :class:`ResilienceContext` — the per-deployment object the engines call
  through: it retries transient faults at *sub-query* granularity (one
  peer's partition, not the whole query) and escalates genuine crashes to
  the bootstrap's fail-over instead of spinning on a dead host.

Everything is deterministic: backoff jitter comes from a seeded RNG and
waits advance the shared :class:`~repro.sim.clock.SimClock`, so a chaos run
with a fixed seed replays bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import (
    BestPeerError,
    NetworkError,
    PeerUnavailableError,
    RpcTimeoutError,
    TransientNetworkError,
)
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failed operation.

    ``max_attempts`` counts total tries (first call included); backoff
    before retry *n* (1-based) is ``base_backoff_s * multiplier**(n-1)``
    capped at ``max_backoff_s``, with ``±jitter_fraction`` of seeded noise.
    ``budget_s`` caps the cumulative backoff spent on one operation.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 5.0
    jitter_fraction: float = 0.1
    budget_s: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise BestPeerError(
                f"need at least one attempt: {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise BestPeerError("backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise BestPeerError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise BestPeerError(
                f"jitter fraction must be in [0, 1): {self.jitter_fraction}"
            )
        if self.budget_s < 0:
            raise BestPeerError(f"budget must be non-negative: {self.budget_s}")

    def backoff_s(
        self,
        retry_number: int,
        rng: Optional[random.Random] = None,
        retry_after_s: Optional[float] = None,
    ) -> float:
        """Backoff before retry ``retry_number`` (1-based), jittered.

        ``retry_after_s`` is a server-supplied hint (an overloaded front
        door's shed response): the wait is clamped to
        ``max(backoff, retry_after)`` so rejected clients never probe
        earlier than the server asked — even past ``max_backoff_s``, which
        caps only the *client-chosen* exponential term.  When the hint
        binds, jitter is applied upward only: retrying early would defeat
        the hint, but spreading retries out past it avoids every shed
        client reconverging on the same instant.
        """
        if retry_number < 1:
            raise BestPeerError(f"retry numbers start at 1: {retry_number}")
        if retry_after_s is not None and retry_after_s < 0:
            raise BestPeerError(
                f"retry-after hint must be non-negative: {retry_after_s}"
            )
        backoff = min(
            self.max_backoff_s,
            self.base_backoff_s
            * self.backoff_multiplier ** (retry_number - 1),
        )
        if rng is not None and self.jitter_fraction > 0 and backoff > 0:
            backoff *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        if retry_after_s is not None and backoff < retry_after_s:
            backoff = retry_after_s
            if rng is not None and self.jitter_fraction > 0 and backoff > 0:
                backoff *= 1.0 + self.jitter_fraction * rng.random()
        return backoff


@dataclass
class Deadline:
    """An absolute point in simulated time after which work must stop."""

    expires_at: float

    def remaining(self, now: float) -> float:
        return self.expires_at - now

    def exceeded(self, now: float) -> bool:
        return now >= self.expires_at


class CircuitBreaker:
    """Per-peer failure isolation (closed -> open -> half-open).

    ``failure_threshold`` consecutive transient failures open the breaker;
    while open, callers must wait out ``reset_timeout_s`` before the next
    probe (half-open).  A success in any state closes it again.
    """

    def __init__(
        self, failure_threshold: int = 5, reset_timeout_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise BestPeerError(
                f"failure threshold must be >= 1: {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise BestPeerError(
                f"reset timeout must be non-negative: {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.open_count = 0

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def cooldown_remaining(self, now: float) -> float:
        """Seconds a caller must still wait before probing; 0 when closed."""
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.reset_timeout_s - now)

    def record_failure(self, now: float) -> bool:
        """Count one transient failure; returns True if this opened the breaker."""
        self.consecutive_failures += 1
        if (
            self.opened_at is None
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at = now
            self.open_count += 1
            return True
        if self.opened_at is not None:
            # A failed half-open probe re-arms the cooldown.
            self.opened_at = now
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None


@dataclass
class ResilienceSession:
    """Per-query accounting of what fault tolerance cost."""

    deadline: Optional[Deadline] = None
    retries: int = 0
    failovers: int = 0
    waited_s: float = 0.0            # backoff + breaker cooldown waits
    blocked_failover_s: float = 0.0  # time blocked on Algorithm-1 fail-over
    advanced_s: float = 0.0          # sim-clock time already advanced here


class ResilienceContext:
    """The engines' gateway to retry/breaker/fail-over behaviour.

    One instance lives per deployment; :meth:`begin_query` resets the
    per-query session.  ``is_crashed`` and ``failover`` are callables the
    facade provides: the first distinguishes a genuinely crashed peer from
    a transient fault, the second blocks on the bootstrap daemon until the
    peer is failed over and returns the simulated seconds spent.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        clock: SimClock,
        jitter_seed: int = 0,
        metrics=None,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout_s: float = 30.0,
        is_crashed: Optional[Callable[[str], bool]] = None,
        failover: Optional[Callable[[str], float]] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.rng = random.Random(jitter_seed)
        self.metrics = metrics
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout_s = breaker_reset_timeout_s
        self.is_crashed = is_crashed
        self.failover = failover
        self.deadline_s = deadline_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.session = ResilienceSession()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def begin_query(self) -> ResilienceSession:
        """Start accounting for a new query (deadline starts now)."""
        deadline = (
            Deadline(self.clock.now + self.deadline_s)
            if self.deadline_s is not None
            else None
        )
        self.session = ResilienceSession(deadline=deadline)
        return self.session

    def breaker(self, peer_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_failure_threshold, self.breaker_reset_timeout_s
            )
            self._breakers[peer_id] = breaker
        return breaker

    # ------------------------------------------------------------------
    # The wrapper
    # ------------------------------------------------------------------
    def call(self, peer_id: str, fn: Callable[[], object]) -> object:
        """Run ``fn`` against ``peer_id`` with full fault handling.

        Transient faults (drops, outages, timeouts) are retried with
        backoff under the peer's circuit breaker; a genuinely crashed peer
        triggers the bootstrap fail-over and one re-fetch of *this peer's
        partition only* — the caller's already-fetched partitions survive.
        """
        session = self.session
        retries = 0
        waited = 0.0
        failovers = 0
        while True:
            breaker = self.breaker(peer_id)
            cooldown = breaker.cooldown_remaining(self.clock.now)
            if cooldown > 0:
                # Open breaker: wait out the cooldown (charged to the
                # query) instead of hammering a failing peer.
                self._check_deadline(extra=cooldown)
                self._wait(cooldown)
                waited += cooldown
            try:
                value = fn()
            except TransientNetworkError:
                retries += 1
                opened = breaker.record_failure(self.clock.now)
                if opened and self.metrics is not None:
                    self.metrics.faults.circuit_opens += 1
                if retries >= self.policy.max_attempts:
                    raise
                if waited >= self.policy.budget_s:
                    raise
                backoff = self.policy.backoff_s(retries, self.rng)
                self._check_deadline(extra=backoff)
                self._wait(backoff)
                waited += backoff
                session.retries += 1
                if self.metrics is not None:
                    self.metrics.faults.retries += 1
                continue
            except (PeerUnavailableError, NetworkError):
                # Hard failure: only meaningful if the peer really is down;
                # otherwise (unknown host, config error) re-raise.
                if (
                    self.failover is None
                    or self.is_crashed is None
                    or not self.is_crashed(peer_id)
                    or failovers >= self.policy.max_attempts
                ):
                    raise
                blocked = self.failover(peer_id)
                failovers += 1
                session.failovers += 1
                session.blocked_failover_s += blocked
                continue
            breaker.record_success()
            return value

    # ------------------------------------------------------------------
    # Crash handling outside the per-fetch path
    # ------------------------------------------------------------------
    def ensure_available(self, peer_id: str) -> bool:
        """Fail a crashed peer over before the query fans out to it.

        Returns True once the peer is available again, False when this
        context cannot recover it (no fail-over callback installed).
        """
        if self.failover is None or self.is_crashed is None:
            return False
        if not self.is_crashed(peer_id):
            return True
        blocked = self.failover(peer_id)
        self.session.failovers += 1
        self.session.blocked_failover_s += blocked
        return not self.is_crashed(peer_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wait(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self.clock.advance(seconds)
        self.session.waited_s += seconds
        self.session.advanced_s += seconds

    def _check_deadline(self, extra: float = 0.0) -> None:
        deadline = self.session.deadline
        if deadline is not None and deadline.exceeded(self.clock.now + extra):
            raise RpcTimeoutError(
                f"query deadline exceeded at t={self.clock.now:.3f}s "
                f"(expires {deadline.expires_at:.3f}s)"
            )
