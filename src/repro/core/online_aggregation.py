"""Distributed online aggregation ([25], cited in §2 and §7).

During BestPeer's evolution "distributed online aggregation [25] techniques
[were introduced] to provide efficient query processing": instead of waiting
for every peer's partial aggregate, the query peer publishes a *running
estimate with a confidence interval* that tightens as partial results stream
in, letting the user stop early once the estimate is good enough.

The estimator treats the peers' partial aggregates as a uniform random
sample of all peers' contributions (peers are contacted in random order):

* running SUM estimate = (observed sum) · (total peers / observed peers),
* the confidence interval follows from the sample variance of per-peer
  contributions (normal approximation, as in classic online aggregation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.accesscheck import require_unrestricted_read
from repro.errors import BestPeerError

# Two-sided z-values for the confidence levels users typically request.
_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass
class OnlineEstimate:
    """A running estimate after some peers have reported."""

    peers_observed: int
    peers_total: int
    estimate: float
    half_width: float  # confidence-interval half width
    confidence: float

    @property
    def is_final(self) -> bool:
        return self.peers_observed == self.peers_total

    @property
    def low(self) -> float:
        return self.estimate - self.half_width

    @property
    def high(self) -> float:
        return self.estimate + self.half_width

    @property
    def relative_error(self) -> float:
        if self.estimate == 0:
            return math.inf if self.half_width else 0.0
        return abs(self.half_width / self.estimate)


class OnlineSumAggregator:
    """Progressively estimates a network-wide SUM from per-peer partials."""

    def __init__(self, peers_total: int, confidence: float = 0.95) -> None:
        if peers_total < 1:
            raise BestPeerError(f"need at least one peer: {peers_total}")
        if confidence not in _Z_VALUES:
            raise BestPeerError(
                f"supported confidence levels: {sorted(_Z_VALUES)}"
            )
        self.peers_total = peers_total
        self.confidence = confidence
        self._observed: List[float] = []

    def observe(self, partial_sum: Optional[float]) -> OnlineEstimate:
        """Fold in one peer's partial aggregate (None counts as zero)."""
        if len(self._observed) >= self.peers_total:
            raise BestPeerError("every peer has already reported")
        self._observed.append(0.0 if partial_sum is None else float(partial_sum))
        return self.current()

    def current(self) -> OnlineEstimate:
        n = len(self._observed)
        if n == 0:
            raise BestPeerError("no peer has reported yet")
        total = sum(self._observed)
        scale = self.peers_total / n
        estimate = total * scale
        if n == self.peers_total or n < 2:
            half_width = 0.0 if n == self.peers_total else math.inf
        else:
            mean = total / n
            variance = sum((v - mean) ** 2 for v in self._observed) / (n - 1)
            # Finite-population correction: sampling without replacement.
            fpc = (self.peers_total - n) / self.peers_total
            stderr = math.sqrt(max(variance, 0.0) * fpc / n)
            half_width = _Z_VALUES[self.confidence] * stderr * self.peers_total
        return OnlineEstimate(
            peers_observed=n,
            peers_total=self.peers_total,
            estimate=estimate,
            half_width=half_width,
            confidence=self.confidence,
        )


def online_aggregate(
    network,
    sql: str,
    user: Optional[str] = None,
    confidence: float = 0.95,
    target_relative_error: Optional[float] = None,
    seed: int = 0,
    peer_id: Optional[str] = None,
) -> Iterator[OnlineEstimate]:
    """Run a scalar-SUM query progressively over a BestPeerNetwork.

    Contacts the data-owner peers one at a time in random order, yielding an
    :class:`OnlineEstimate` after each report.  Stops early when
    ``target_relative_error`` is reached (the final yielded estimate
    satisfies it); otherwise runs to completion, where the estimate is exact.

    ``peer_id`` names the query peer collecting the reports (default: the
    same first-sorted peer ``BestPeerNetwork.execute`` submits from); each
    partial aggregate is priced as a transfer from its owner to that peer,
    so progressive queries show up in the byte accounting like any other.

    Only single-table scalar SUM queries qualify (the online-aggregation
    sweet spot); anything else raises.
    """
    from repro.hadoopdb.sms import SmsPlanner, partial_aggregate_plan
    from repro.mapreduce.engine import records_byte_size
    from repro.sqlengine.parser import parse

    plan = SmsPlanner(network.global_schemas).compile(parse(sql))
    if plan.joins or plan.aggregate is None or plan.aggregate.group_exprs:
        raise BestPeerError(
            "online aggregation supports single-table scalar aggregates"
        )
    if plan.aggregate.partials is None or len(plan.aggregate.aggregates) != 1:
        raise BestPeerError("online aggregation needs one decomposable SUM")
    call = plan.aggregate.aggregates[0]
    if call.name.lower() != "sum":
        raise BestPeerError("online aggregation currently estimates SUM only")

    local_plan = partial_aggregate_plan(plan)
    owners = sorted(
        peer_id
        for peer_id in network.peers
        if network.peers[peer_id].database.has_table(plan.base.table)
        and len(network.peers[peer_id].database.table(plan.base.table)) > 0
    )
    if not owners:
        raise BestPeerError(f"no peer hosts {plan.base.table!r}")
    random.Random(seed).shuffle(owners)

    if peer_id is None:
        peer_id = sorted(network.peers)[0]
    query_peer = network.peers.get(peer_id)
    if query_peer is None:
        raise BestPeerError(f"unknown peer: {peer_id!r}")

    # Partial sums are derived values no role rule can rewrite, so the
    # unmasked fetch below is only legal when masking could not have
    # changed the answer anywhere (§4.4) — the same gate as the engines'
    # partial-aggregate pushdowns.
    require_unrestricted_read(network.peers, [plan.base], owners, user)

    aggregator = OnlineSumAggregator(len(owners), confidence)
    for owner_id in owners:

        def fetch_report(owner_id: str = owner_id):
            # Resolve the owner inside the attempt: a fail-over rebinds the
            # peer to a fresh instance between retries.
            owner = network.peers[owner_id]
            execution = owner.execute_fetch(
                plan.base.table, local_plan.sql, user=None
            )
            # Each report is one small cross-peer message; charge its bytes
            # to the simulated network so the cost model sees progressive
            # queries.
            network.network.transfer(
                owner.host,
                query_peer.host,
                records_byte_size(execution.result.rows),
            )
            return execution

        execution = network.resilience.call(owner_id, fetch_report)
        partial = execution.result.rows[0][0] if execution.result.rows else None
        estimate = aggregator.observe(partial)
        yield estimate
        if (
            target_relative_error is not None
            and estimate.relative_error <= target_relative_error
        ):
            return
