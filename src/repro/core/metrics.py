"""Network-wide query metrics.

Production data platforms expose operational metrics; BestPeer++'s
statistics module already collects per-query measurements for the cost
model's feedback loop (§5.5), so this module gives them a queryable surface:
per-engine counters, latency summaries, byte/price totals and a fixed-bucket
latency histogram.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import BestPeerError

# Latency histogram bucket upper bounds (seconds); the last is open-ended.
DEFAULT_BUCKETS = (0.01, 0.1, 1.0, 10.0, 60.0, 600.0)

# How many operational events (fail-overs, promotions) the registry keeps.
EVENT_CAPACITY = 64


@dataclass
class EngineMetrics:
    """Aggregated measurements for one engine."""

    queries: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    total_bytes: int = 0
    total_dollars: float = 0.0
    rows_returned: int = 0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.queries if self.queries else 0.0


@dataclass
class FaultCounters:
    """Fault-tolerance counters (retry/fail-over observability).

    ``retries``/``circuit_opens``/``failovers`` are incremented by the
    resilience layer; ``dropped_messages``/``timeouts`` mirror the
    simulated network's injected-fault counters;
    ``blacklist_release_skips`` counts blacklisted instances the
    maintenance daemon could not release because the cloud no longer
    knew them.
    """

    retries: int = 0
    circuit_opens: int = 0
    failovers: int = 0
    dropped_messages: int = 0
    timeouts: int = 0
    blacklist_release_skips: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "circuit_opens": self.circuit_opens,
            "failovers": self.failovers,
            "dropped_messages": self.dropped_messages,
            "timeouts": self.timeouts,
            "blacklist_release_skips": self.blacklist_release_skips,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


#: Default cap on per-(tenant, lane) latency samples kept for percentiles.
#: Mirrored by ServingConfig.latency_sample_cap; the registry needs its own
#: default because lane stats can be created before any front door exists.
SAMPLE_CAPACITY = 512


class BoundedSamples:
    """A sliding window of measurements with exact percentiles.

    Keeps the most recent ``capacity`` values (older ones roll off), so
    memory stays bounded no matter how many requests the front door serves
    — the same discipline RES003 enforces on the serving queues themselves.
    """

    def __init__(self, capacity: int = SAMPLE_CAPACITY) -> None:
        if capacity < 1:
            raise BestPeerError(f"sample capacity must be positive: {capacity}")
        self.capacity = capacity
        self._window: Deque[float] = deque(maxlen=capacity)
        self.count = 0  # all-time observations, not just the window

    def record(self, value: float) -> None:
        self._window.append(value)
        self.count += 1

    def __len__(self) -> int:
        return len(self._window)

    @property
    def mean(self) -> float:
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def percentile(self, fraction: float) -> float:
        """Exact percentile over the retained window (0 when empty)."""
        if not 0 < fraction <= 1:
            raise BestPeerError(f"fraction must be in (0, 1]: {fraction}")
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[rank]


@dataclass
class LaneServingStats:
    """Per-(tenant, lane) SLO accounting for the serving front door.

    Every offered request lands in exactly one of ``admitted``,
    ``shed_queue_full``, ``shed_backpressure`` or ``deadline_missed``
    (deadline-missed covers both admission-time-unmeetable rejections and
    requests whose deadline expired while queued); every admitted request
    ends as ``completed`` or ``failed`` — nothing is silently lost.
    """

    offered: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed_queue_full: int = 0
    shed_backpressure: int = 0
    deadline_missed: int = 0
    queue_wait: BoundedSamples = field(default_factory=BoundedSamples)
    e2e_latency: BoundedSamples = field(default_factory=BoundedSamples)

    @property
    def shed(self) -> int:
        """Requests rejected at admission for load reasons."""
        return self.shed_queue_full + self.shed_backpressure

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_backpressure": self.shed_backpressure,
            "deadline_missed": self.deadline_missed,
            "queue_wait_p50_s": self.queue_wait.percentile(0.50),
            "queue_wait_p99_s": self.queue_wait.percentile(0.99),
            "latency_p50_s": self.e2e_latency.percentile(0.50),
            "latency_p99_s": self.e2e_latency.percentile(0.99),
        }


@dataclass
class OverlayLoadStats:
    """BATON overlay load-balancing observability.

    Written by :meth:`~repro.core.network.BestPeerNetwork.rebalance_overlay`
    (and anything else driving a :class:`repro.baton.loadbalance.LoadBalancer`),
    read by the console's ``baton status``.
    """

    rebalance_rounds: int = 0
    migrations: int = 0
    entries_migrated: int = 0
    census_checks: int = 0
    fanout_reads: int = 0
    failover_reads: int = 0
    #: Max/mean load-score ratio observed at the last rebalance round
    #: (1.0 = perfectly even load, higher = skew).
    last_max_mean_ratio: float = 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "rebalance_rounds": self.rebalance_rounds,
            "migrations": self.migrations,
            "entries_migrated": self.entries_migrated,
            "census_checks": self.census_checks,
            "fanout_reads": self.fanout_reads,
            "failover_reads": self.failover_reads,
            "last_max_mean_ratio": self.last_max_mean_ratio,
        }


class MetricsRegistry:
    """Collects per-query measurements, grouped by engine/strategy."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise BestPeerError("histogram buckets must be strictly increasing")
        self.buckets = tuple(buckets)
        self._engines: Dict[str, EngineMetrics] = {}
        self._histogram: List[int] = [0] * (len(self.buckets) + 1)
        self.faults = FaultCounters()
        # Parse+plan cache effectiveness, summed over every peer's local
        # database by the network facade after each query.
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Bounded operational event feed: (simulated time, description),
        # oldest first.  Fed by the facade (fail-overs) and the bootstrap
        # cluster (promotions); read by the console's ``bootstrap status``.
        self.events: List[Tuple[float, str]] = []
        # Serving front-door SLO accounting, keyed (tenant, lane); written
        # by repro.serving, read by the console's ``serving status``.
        self.serving: Dict[Tuple[str, str], LaneServingStats] = {}
        # BATON overlay load-balancing counters; written by the network
        # facade's rebalance hook, read by the console's ``baton status``.
        self.overlay_load = OverlayLoadStats()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, execution) -> None:
        """Fold in one :class:`~repro.core.execution.QueryExecution`."""
        metrics = self._engines.setdefault(execution.strategy, EngineMetrics())
        metrics.queries += 1
        metrics.total_latency_s += execution.latency_s
        metrics.max_latency_s = max(metrics.max_latency_s, execution.latency_s)
        metrics.total_bytes += execution.bytes_transferred
        metrics.total_dollars += execution.dollar_cost
        metrics.rows_returned += len(execution.records)
        self._histogram[self._bucket_of(execution.latency_s)] += 1

    def record_event(self, now: float, description: str) -> None:
        """Append one operational event, dropping the oldest at capacity."""
        self.events.append((now, description))
        if len(self.events) > EVENT_CAPACITY:
            del self.events[: len(self.events) - EVENT_CAPACITY]

    def recent_events(self, limit: int = 5) -> List[Tuple[float, str]]:
        """The newest ``limit`` events, oldest of them first."""
        if limit <= 0:
            raise BestPeerError(f"event limit must be positive: {limit}")
        return self.events[-limit:]

    def serving_lane(
        self, tenant: str, lane: str, sample_capacity: int = SAMPLE_CAPACITY
    ) -> LaneServingStats:
        """The (auto-created) SLO counters for one tenant's lane."""
        key = (tenant, lane)
        stats = self.serving.get(key)
        if stats is None:
            stats = LaneServingStats(
                queue_wait=BoundedSamples(sample_capacity),
                e2e_latency=BoundedSamples(sample_capacity),
            )
            self.serving[key] = stats
        return stats

    def serving_tenants(self) -> List[str]:
        """Tenants with serving stats, in stable order."""
        return sorted({tenant for tenant, _ in self.serving})

    def _bucket_of(self, latency_s: float) -> int:
        for index, bound in enumerate(self.buckets):
            if latency_s <= bound:
                return index
        return len(self.buckets)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_queries(self) -> int:
        return sum(metrics.queries for metrics in self._engines.values())

    def engine(self, strategy: str) -> EngineMetrics:
        return self._engines.get(strategy, EngineMetrics())

    def strategies(self) -> List[str]:
        return sorted(self._engines)

    def latency_histogram(self) -> Dict[str, int]:
        """Bucket label -> count, e.g. ``"<=0.1s"`` and ``">600s"``."""
        labelled: Dict[str, int] = {}
        for index, bound in enumerate(self.buckets):
            labelled[f"<={bound:g}s"] = self._histogram[index]
        labelled[f">{self.buckets[-1]:g}s"] = self._histogram[-1]
        return labelled

    def percentile_latency(self, fraction: float) -> float:
        """Upper bound of the bucket containing the given percentile."""
        if not 0 < fraction <= 1:
            raise BestPeerError(f"fraction must be in (0, 1]: {fraction}")
        total = self.total_queries
        if total == 0:
            return 0.0
        threshold = math.ceil(total * fraction)
        seen = 0
        for index, count in enumerate(self._histogram):
            seen += count
            if seen >= threshold:
                if index < len(self.buckets):
                    return self.buckets[index]
                return math.inf
        return math.inf  # pragma: no cover

    def summary(self) -> str:
        """A human-readable multi-line report."""
        lines = [f"queries: {self.total_queries}"]
        for strategy in self.strategies():
            metrics = self._engines[strategy]
            lines.append(
                f"  {strategy}: n={metrics.queries} "
                f"mean={metrics.mean_latency_s:.3f}s "
                f"max={metrics.max_latency_s:.3f}s "
                f"bytes={metrics.total_bytes:,} "
                f"cost=${metrics.total_dollars:.6f}"
            )
        if self.faults.total:
            counters = self.faults.as_dict()
            lines.append(
                "  faults: "
                + " ".join(f"{name}={counters[name]}" for name in counters)
            )
        if self.plan_cache_hits or self.plan_cache_misses:
            lines.append(
                f"  plan cache: hits={self.plan_cache_hits} "
                f"misses={self.plan_cache_misses}"
            )
        for tenant, lane in sorted(self.serving):
            stats = self.serving[(tenant, lane)]
            lines.append(
                f"  serving {tenant}/{lane}: offered={stats.offered} "
                f"admitted={stats.admitted} shed={stats.shed} "
                f"deadline_missed={stats.deadline_missed} "
                f"p99={stats.e2e_latency.percentile(0.99):.3f}s"
            )
        load = self.overlay_load
        if load.rebalance_rounds or load.fanout_reads or load.failover_reads:
            lines.append(
                f"  overlay load: rounds={load.rebalance_rounds} "
                f"migrations={load.migrations} "
                f"entries_moved={load.entries_migrated} "
                f"fanout_reads={load.fanout_reads} "
                f"failover_reads={load.failover_reads} "
                f"max/mean={load.last_max_mean_ratio:.2f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._engines.clear()
        self._histogram = [0] * (len(self.buckets) + 1)
        self.faults = FaultCounters()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.events = []
        self.serving = {}
        self.overlay_load = OverlayLoadStats()
