"""The basic query processing engine: fetch and process (§5.2).

The query submitted at peer P is evaluated in two steps:

1. **fetching** — the query is decomposed into single-table subqueries
   (selections/projections pushed down) which are sent to the data-owner
   peers found through the BATON indexes; intermediate results are shuffled
   back to P,
2. **processing** — P stages the fetched tuples in MemTables, bulk-inserts
   them into its local database, and evaluates the original query locally.

Optimizations, as in the paper:

* cached index entries avoid BATON traversals on repeat lookups,
* **bloom join** reduces the bytes shipped for equi-joins: the base side's
  join keys build a Bloom filter that is sent to the other side's owners,
  which ship only (probably-)matching tuples,
* the **single-peer optimization** (§6.2.3): when one normal peer hosts all
  required data, the entire SQL goes to that peer and the processing phase
  is skipped.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.accesscheck import require_unrestricted_read, unrestricted_read
from repro.core.bloom import build_filter
from repro.core.execution import EngineContext, QueryExecution, makespan
from repro.core.indexer import PeerLookup
from repro.core.predicates import range_constraint
from repro.errors import PeerUnavailableError, SqlCatalogError
from repro.hadoopdb.driver import finalize_records, merge_partial_aggregates
from repro.hadoopdb.sms import (
    DistributedPlan,
    SmsPlanner,
    TableLocalPlan,
    partial_aggregate_plan,
)
from repro.sqlengine.executor import compute_aggregates
from repro.sqlengine.expr import RowLayout
from repro.mapreduce.engine import records_byte_size
from repro.sqlengine.database import Database
from repro.sqlengine.expr import Between, BinaryOp, ColumnRef, Literal
from repro.sqlengine.parser import SelectStmt, parse
from repro.sqlengine.planner import _normalize_comparison, _split_conjuncts
from repro.sqlengine.schema import Column, TableSchema
from repro.sqlengine.table import MemTable


class BasicEngine:
    """Fetch-and-process execution from one query-submitting peer."""

    def __init__(self, context: EngineContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        user: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> QueryExecution:
        stmt = parse(sql)
        plan = SmsPlanner(self.context.schemas).compile(stmt)

        # Locate data owners for every table, using the best index available.
        lookups = self._locate_tables(stmt, plan)
        index_hops = sum(lookup.hops for lookup in lookups.values())

        all_peers: Set[str] = set()
        for lookup in lookups.values():
            all_peers.update(lookup.peers)
        self._require_online(all_peers)

        # The single-peer optimization ships the *original* SQL, so no
        # per-row access rewriting can happen; it only applies when the
        # user's role could not have masked anything (§4.4), otherwise the
        # query falls through to the fetch paths that mask at the owners.
        local_plans = [plan.base] + [stage.right for stage in plan.joins]
        if len(all_peers) == 1 and unrestricted_read(
            self.context.peers, local_plans, all_peers, user
        ):
            return self._single_peer(
                # repro: allow[SIM003] singleton set, the one element is the same in every run
                sql, plan, next(iter(all_peers)), index_hops, user, timestamp
            )
        if not plan.joins:
            return self._single_table(plan, lookups, index_hops, user, timestamp)
        return self._fetch_and_process(
            sql, plan, lookups, index_hops, user, timestamp
        )

    # ------------------------------------------------------------------
    # Single-table queries: push the whole subquery to every owner
    # ------------------------------------------------------------------
    def _single_table(
        self,
        plan: DistributedPlan,
        lookups: Dict[str, PeerLookup],
        index_hops: int,
        user: Optional[str],
        timestamp: Optional[float],
    ) -> QueryExecution:
        """Q1/Q2-style evaluation (§6.1.6-§6.1.7).

        Selections/projections (and, for decomposable aggregates, *partial
        aggregation*) run at the data-owner peers; the query-submitting peer
        only merges partial results — no MemTable staging, no local re-scan.
        """
        context = self.context
        lookup = lookups[plan.base.binding]
        aggregate = plan.aggregate

        # Partial-aggregate rows cannot be access-rewritten (they are
        # derived values, not table columns), so the pushdown only applies
        # when the user's role grants unrestricted reads on every referenced
        # column at every owner; otherwise raw rows are fetched (and masked
        # at the source) and aggregated at the query peer.
        pushdown_ok = (
            aggregate is not None
            and aggregate.partials is not None
            and self._pushdown_allowed(plan, lookup, user)
        )
        if pushdown_ok:
            local_plan = partial_aggregate_plan(plan)
            group_count = len(aggregate.group_exprs)
            rows, durations, nbytes = self._fetch_table(
                local_plan, lookup, user=None, timestamp=timestamp
            )
            groups: Dict[tuple, List[tuple]] = {}
            order: List[tuple] = []
            for row in rows:
                key = tuple(row[:group_count])
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                    order.append(key)
                bucket.append(tuple(row[group_count:]))
            if not groups and group_count == 0:
                # Scalar aggregate over zero owners' rows still yields a row.
                empty = tuple(
                    None for p in aggregate.partials for _ in p.partial_sqls
                )
                groups[()] = [empty]
                order.append(())
            records = [
                key + merge_partial_aggregates(aggregate.partials, groups[key])
                for key in order
            ]
            columns = aggregate.group_names + [
                call.to_sql().lower() for call in aggregate.aggregates
            ]
        elif aggregate is not None:
            # Non-decomposable aggregates (COUNT DISTINCT) or restricted
            # users: fetch raw rows (access-rewritten at the owners) and
            # aggregate at the query peer.
            rows, durations, nbytes = self._fetch_table(
                plan.base, lookup, user, timestamp
            )
            layout = RowLayout(plan.base.columns)
            groups = {}
            order = []
            for row in rows:
                key = tuple(
                    expr.evaluate(row, layout) for expr in aggregate.group_exprs
                )
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                    order.append(key)
                bucket.append(row)
            if not groups and not aggregate.group_exprs:
                groups[()] = []
                order.append(())
            records = [
                key
                + compute_aggregates(aggregate.aggregates, groups[key], layout)
                for key in order
            ]
            columns = aggregate.group_names + [
                call.to_sql().lower() for call in aggregate.aggregates
            ]
        else:
            # Pure selection (Q1): merge the owners' partial results.
            rows, durations, nbytes = self._fetch_table(
                plan.base, lookup, user, timestamp
            )
            records = rows
            columns = list(plan.base.columns)

        merge_seconds = context.compute_model.rows_seconds(
            len(records), context.query_peer.compute_units
        )
        records, out_columns = finalize_records(plan, records, columns)
        fetch_seconds = makespan(durations, context.config.fetch_threads)
        latency = context.hop_cost_s(index_hops) + fetch_seconds + merge_seconds
        return QueryExecution(
            columns=out_columns,
            records=records,
            latency_s=latency,
            strategy="fetch-and-process",
            bytes_transferred=nbytes,
            peers_contacted=len(lookup.peers),
            index_hops=index_hops,
            dollar_cost=context.config.pricing.basic_cost(nbytes, latency),
            engine_details={
                "fetch_s": fetch_seconds,
                "merge_s": merge_seconds,
            },
        )

    # ------------------------------------------------------------------
    # Single-peer optimization
    # ------------------------------------------------------------------
    def _single_peer(
        self,
        sql: str,
        plan: DistributedPlan,
        peer_id: str,
        index_hops: int,
        user: Optional[str],
        timestamp: Optional[float],
    ) -> QueryExecution:
        context = self.context
        # execute() already proved the pushdown safe; re-prove it here so
        # the bypass and its access check cannot drift apart.
        require_unrestricted_read(
            context.peers,
            [plan.base] + [stage.right for stage in plan.joins],
            [peer_id],
            user,
        )

        def run_remote():
            owner = context.peer(peer_id)
            execution = owner.execute_local(sql, query_timestamp=timestamp)
            result_bytes = execution.result.byte_size
            transfer = context.network.transfer(
                owner.host, context.query_peer.host, result_bytes
            )
            return execution, result_bytes, transfer

        execution, result_bytes, transfer = context.call_resilient(
            peer_id, run_remote
        )
        latency = (
            context.hop_cost_s(index_hops) + execution.seconds + transfer
        )
        return QueryExecution(
            columns=execution.result.columns,
            records=list(execution.result.rows),
            latency_s=latency,
            strategy="single-peer",
            bytes_transferred=result_bytes,
            peers_contacted=1,
            index_hops=index_hops,
            dollar_cost=context.config.pricing.basic_cost(result_bytes, latency),
        )

    # ------------------------------------------------------------------
    # Fetch and process
    # ------------------------------------------------------------------
    def _fetch_and_process(
        self,
        sql: str,
        plan: DistributedPlan,
        lookups: Dict[str, PeerLookup],
        index_hops: int,
        user: Optional[str],
        timestamp: Optional[float],
    ) -> QueryExecution:
        context = self.context

        # Optional bloom join on the first equi-join: the base side is
        # fetched first, its keys build the filter for the joined side.
        bloom_filter = None
        bloom_target_binding = None
        bloom_joins = 0
        local_plans = [plan.base] + [stage.right for stage in plan.joins]
        fetched: Dict[str, List[tuple]] = {}
        fetch_durations: List[float] = []
        bytes_transferred = 0
        peers_contacted: Set[str] = set()

        if context.config.bloom_join_enabled and plan.joins:
            first_stage = plan.joins[0]
            base_rows, base_durations, base_bytes = self._fetch_table(
                plan.base, lookups[plan.base.binding], user, timestamp
            )
            fetched[plan.base.binding] = base_rows
            fetch_durations.extend(base_durations)
            bytes_transferred += base_bytes
            peers_contacted.update(lookups[plan.base.binding].peers)

            key_position = plan.base.columns.index(first_stage.left_key)
            keys = {
                row[key_position] for row in base_rows if row[key_position] is not None
            }
            if keys:
                bloom_filter = build_filter(
                    keys,
                    bits_per_key=context.config.bloom_filter_bits_per_key,
                    num_hashes=context.config.bloom_filter_hashes,
                )
                bloom_target_binding = first_stage.right.binding
                bloom_joins = 1

        for local_plan in local_plans:
            if local_plan.binding in fetched:
                continue
            if local_plan.binding == bloom_target_binding:
                stage = plan.joins[0]
                key_position = local_plan.columns.index(stage.right_key)
                # Shipping the filter to every owner costs its size once per
                # owner peer.
                for peer_id in lookups[local_plan.binding].peers:

                    def ship_filter(peer_id: str = peer_id):
                        return context.network.transfer(
                            context.query_peer.host,
                            context.peer(peer_id).host,
                            bloom_filter.size_bytes,
                        )

                    bytes_transferred += bloom_filter.size_bytes
                    fetch_durations.append(
                        context.call_resilient(peer_id, ship_filter)
                    )
                rows, durations, nbytes = self._fetch_table(
                    local_plan,
                    lookups[local_plan.binding],
                    user,
                    timestamp,
                    row_filter=lambda row: row[key_position] in bloom_filter,
                )
            else:
                rows, durations, nbytes = self._fetch_table(
                    local_plan, lookups[local_plan.binding], user, timestamp
                )
            fetched[local_plan.binding] = rows
            fetch_durations.extend(durations)
            bytes_transferred += nbytes
            peers_contacted.update(lookups[local_plan.binding].peers)

        fetch_seconds = makespan(fetch_durations, context.config.fetch_threads)

        # Processing phase: stage into MemTables, bulk insert, run locally.
        staging_db, spills, staging_rows = self._stage(plan, local_plans, fetched)
        staging_seconds = context.compute_model.rows_seconds(
            staging_rows, context.query_peer.compute_units
        )
        # Re-evaluate over the staged partitions with only the residual
        # (multi-table) predicates — the single-table ones were already
        # applied at the data owners, whose pruned projections may not even
        # carry the filtered columns.
        processing_stmt = dataclasses.replace(
            plan.statement, where=plan.residual_where
        )
        final = staging_db.execute_select(processing_stmt)
        processing_seconds = context.compute_model.seconds(
            final.stats, context.query_peer.compute_units
        )

        latency = (
            context.hop_cost_s(index_hops)
            + fetch_seconds
            + staging_seconds
            + processing_seconds
        )
        return QueryExecution(
            columns=final.columns,
            records=list(final.rows),
            latency_s=latency,
            strategy="fetch-and-process",
            bytes_transferred=bytes_transferred,
            peers_contacted=len(peers_contacted),
            index_hops=index_hops,
            bloom_joins=bloom_joins,
            memtable_spills=spills,
            dollar_cost=context.config.pricing.basic_cost(
                bytes_transferred, latency
            ),
            engine_details={
                "fetch_s": fetch_seconds,
                "staging_s": staging_seconds,
                "processing_s": processing_seconds,
            },
        )

    def _pushdown_allowed(
        self,
        plan: DistributedPlan,
        lookup: PeerLookup,
        user: Optional[str],
    ) -> bool:
        """Whole-query pushdown is safe only if no masking can apply."""
        return unrestricted_read(
            self.context.peers, [plan.base], lookup.peers, user
        )

    # ------------------------------------------------------------------
    # Fetch helpers
    # ------------------------------------------------------------------
    def _fetch_table(
        self,
        local_plan: TableLocalPlan,
        lookup: PeerLookup,
        user: Optional[str],
        timestamp: Optional[float],
        row_filter=None,
    ) -> Tuple[List[tuple], List[float], int]:
        """Run a subquery at every owner peer; returns (rows, durations, bytes).

        Each duration is one peer's (local execution + transfer) time; the
        caller folds them through the fetch-thread pool.
        """
        context = self.context
        rows: List[tuple] = []
        durations: List[float] = []
        total_bytes = 0
        # The same subquery goes to every owner: prepare (parse+plan) it at
        # the first owner that hosts the table and ship the plan to the rest
        # — all peers share the global schema by construction (§4.1).
        prepared_holder: List[object] = []
        for peer_id in lookup.peers:

            def fetch_one(peer_id: str = peer_id):
                # Resolve the owner inside the attempt: a fail-over rebinds
                # the peer to a fresh instance between retries.
                owner = context.peer(peer_id)
                if not prepared_holder:
                    # May raise SqlCatalogError exactly like executing the
                    # SQL would, preserving broadcast skip semantics.
                    prepared_holder.append(owner.prepare_fetch(local_plan.sql))
                execution = owner.execute_fetch(
                    local_plan.table, local_plan.sql, user=user,
                    query_timestamp=timestamp,
                    prepared=prepared_holder[0],
                )
                shipped = execution.result.rows
                if row_filter is not None:
                    shipped = [row for row in shipped if row_filter(row)]
                nbytes = records_byte_size(shipped)
                transfer = context.network.transfer(
                    owner.host, context.query_peer.host, nbytes
                )
                return shipped, nbytes, execution.seconds + transfer

            try:
                shipped, nbytes, duration = context.call_resilient(
                    peer_id, fetch_one
                )
            except SqlCatalogError:
                if lookup.index_used != "broadcast":
                    raise
                # A broadcast probe may reach peers that never hosted the
                # table; an empty answer is the correct outcome for them.
                continue
            durations.append(duration)
            total_bytes += nbytes
            rows.extend(shipped)
        return rows, durations, total_bytes

    def _stage(
        self,
        plan: DistributedPlan,
        local_plans: Sequence[TableLocalPlan],
        fetched: Dict[str, List[tuple]],
    ) -> Tuple[Database, int, int]:
        """Build the staging database holding the fetched partitions.

        Tables carry only the pruned column set; the original SQL references
        exactly those columns by construction of the pushdown planner.
        """
        context = self.context
        staging = Database(f"{context.query_peer.peer_id}-staging")
        spills = 0
        total_rows = 0
        created: Set[str] = set()
        for local_plan in local_plans:
            if local_plan.table in created:
                continue
            created.add(local_plan.table)
            global_schema = context.schemas[local_plan.table]
            columns = [
                global_schema.column(name.rsplit(".", 1)[-1])
                for name in local_plan.columns
            ]
            staging.create_table(TableSchema(local_plan.table, columns))
            memtable = MemTable(
                staging.table(local_plan.table),
                capacity_bytes=context.config.memtable_capacity_bytes,
            )
            rows = fetched[local_plan.binding]
            memtable.extend(rows)
            memtable.flush()
            spills += memtable.spill_count
            total_rows += len(rows)
        return staging, spills, total_rows

    # ------------------------------------------------------------------
    # Index lookups
    # ------------------------------------------------------------------
    def _locate_tables(
        self, stmt: SelectStmt, plan: DistributedPlan
    ) -> Dict[str, PeerLookup]:
        """One indexer lookup per table binding, range-constrained if possible."""
        conjuncts = _split_conjuncts(stmt.where)
        lookups: Dict[str, PeerLookup] = {}
        # Under a partial indexing policy, unindexed tables degrade to a
        # broadcast over the whole membership (just-in-time retrieval).
        policy = getattr(self.context.indexer, "policy", None)
        fallback = (
            sorted(self.context.peers)
            if policy is not None and policy.is_partial
            else None
        )
        for local_plan in [plan.base] + [stage.right for stage in plan.joins]:
            constraint = self._range_constraint(local_plan, conjuncts)
            if constraint is None:
                lookups[local_plan.binding] = self.context.indexer.locate(
                    local_plan.table, fallback_peers=fallback
                )
            else:
                column, low, high = constraint
                lookups[local_plan.binding] = self.context.indexer.locate(
                    local_plan.table, column, low, high,
                    fallback_peers=fallback,
                )
        return lookups

    def _range_constraint(
        self, local_plan: TableLocalPlan, conjuncts
    ) -> Optional[Tuple[str, object, object]]:
        """The first ``col <op> literal`` constraint over this table."""
        return range_constraint(self.context.schemas[local_plan.table], conjuncts)

    # ------------------------------------------------------------------
    # Availability (strong consistency, §3.2)
    # ------------------------------------------------------------------
    def _require_online(self, peer_ids: Set[str]) -> None:
        """Recover crashed data owners before fanning the query out.

        With a resilience context installed the recovery happens here, at
        sub-query granularity; without one the historical behaviour stands:
        raise and let the facade block on fail-over, then retry the query.
        """
        for peer_id in sorted(peer_ids):
            peer = self.context.peers.get(peer_id)
            if peer is None or not peer.online:
                if not self.context.ensure_peer_available(peer_id):
                    raise PeerUnavailableError(peer_id)
