"""The normal peer (§4).

A normal peer is one business's BestPeer++ instance: a cloud virtual server
running the local database plus the five §4 components — schema mapping,
data loader, data indexer, access control and the query executor.  The
executor lives in the engine modules; everything else is here.

Two data flows (Fig. 2):

* **offline**: production system -> data loader (via schema mapping) ->
  local database, with periodic snapshot-differential refreshes,
* **online**: remote peers fetch qualified tuples via
  :meth:`NormalPeer.execute_fetch` (access-control rewritten), and the
  query-submitting peer assembles results locally.

Query semantics (Definition 2): every query carries a submission timestamp;
a peer whose database was refreshed *after* that timestamp rejects the query
so the result reflects one consistent snapshot across peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.access_control import AccessController, Role
from repro.core.config import BestPeerConfig
from repro.core.loader import DataLoader, SnapshotDelta
from repro.core.schema_mapping import SchemaMapping
from repro.errors import (
    BestPeerError,
    PeerUnavailableError,
    QueryRejectedError,
    SqlExecutionError,
)
from repro.sim.cloud import CloudProvider, Instance, InstanceState
from repro.sim.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.sqlengine.database import Database, PreparedSelect, QueryResult
from repro.sqlengine.schema import TableSchema


@dataclass
class LocalExecution:
    """A statement's result plus its simulated local processing time."""

    result: QueryResult
    seconds: float


@dataclass
class BackupPayload:
    """What an EBS snapshot of a peer's database contains.

    Includes the loader's snapshot store: it lives "in the normal peer
    instance but in a separate database" (§4.2), so it is backed up and
    restored with everything else — otherwise the first differential
    refresh after a fail-over would diff against a stale snapshot.
    """

    schemas: List[TableSchema]
    secondary_indices: Dict[str, List[str]]
    tables: Dict[str, List[tuple]]
    last_refresh_at: float
    loader_snapshots: Dict[str, List[tuple]] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.tables.values())


class NormalPeer:
    """One business's BestPeer++ instance."""

    def __init__(
        self,
        peer_id: str,
        instance: Instance,
        config: Optional[BestPeerConfig] = None,
        compute_model: Optional[ComputeModel] = None,
    ) -> None:
        self.peer_id = peer_id
        self.instance = instance
        self.config = config or BestPeerConfig()
        self.compute_model = compute_model or DEFAULT_COMPUTE_MODEL
        self.database = Database(peer_id)
        self.access = AccessController()
        self.certificate = None  # set on join by the bootstrap peer
        self.last_refresh_at = 0.0
        self._loader: Optional[DataLoader] = None
        self._secondary_indices: Dict[str, List[str]] = {}
        # Busy time accumulated since the last maintenance epoch; the
        # bootstrap daemon turns it into the CloudWatch CPU gauge.
        self._busy_s_since_epoch = 0.0

    # ------------------------------------------------------------------
    # Identity / state
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The peer's network address (its instance id)."""
        return self.instance.instance_id

    @property
    def online(self) -> bool:
        return self.instance.state is InstanceState.RUNNING

    @property
    def compute_units(self) -> float:
        return self.instance.instance_type.compute_units

    # ------------------------------------------------------------------
    # Schema + offline data flow
    # ------------------------------------------------------------------
    def create_table(
        self, schema: TableSchema, secondary_indices: Sequence[str] = ()
    ) -> None:
        self.database.create_table(schema)
        for column in secondary_indices:
            self.database.table(schema.name).create_index(
                f"idx_{schema.name}_{column}", column
            )
        if secondary_indices:
            self._secondary_indices[schema.name] = list(secondary_indices)

    def set_schema_mapping(self, mapping: SchemaMapping) -> None:
        self._loader = DataLoader(self.database, mapping)

    @property
    def loader(self) -> DataLoader:
        if self._loader is None:
            raise BestPeerError(
                f"peer {self.peer_id!r} has no schema mapping configured"
            )
        return self._loader

    def load_initial(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
        now: float = 0.0,
    ) -> SnapshotDelta:
        delta = self.loader.initial_load(local_table, local_columns, rows)
        self.last_refresh_at = now
        self._update_storage_metric()
        return delta

    def refresh(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
        now: float,
    ) -> SnapshotDelta:
        delta = self.loader.refresh(local_table, local_columns, rows)
        self.last_refresh_at = now
        self._update_storage_metric()
        return delta

    # ------------------------------------------------------------------
    # Online data flow
    # ------------------------------------------------------------------
    def execute_local(
        self,
        sql: str,
        query_timestamp: Optional[float] = None,
        prepared: Optional[PreparedSelect] = None,
    ) -> LocalExecution:
        """Run a statement on the local database (no access rewriting).

        Enforces the Definition-2 snapshot check when ``query_timestamp`` is
        given.  When ``prepared`` is given (a plan built once by the
        query-submitting peer), the local parse+plan passes are skipped —
        all peers share the global schema by construction (§4.1).
        """
        self._require_online()
        self._check_snapshot(query_timestamp)
        if prepared is not None:
            result = self.database.execute_prepared(prepared)
        else:
            result = self.database.execute(sql)
        seconds = self.compute_model.seconds(result.stats, self.compute_units)
        self._busy_s_since_epoch += seconds
        return LocalExecution(result=result, seconds=seconds)

    def execute_fetch(
        self,
        table: str,
        sql: str,
        user: Optional[str] = None,
        query_timestamp: Optional[float] = None,
        prepared: Optional[PreparedSelect] = None,
    ) -> LocalExecution:
        """Serve a remote peer's single-table fetch request.

        When ``user`` is given, the rows are rewritten under the user's
        access role *before* leaving the peer ("The data that cannot be
        accessed by u will not be returned", §4.4).
        """
        execution = self.execute_local(sql, query_timestamp, prepared=prepared)
        if user is not None:
            rewritten = self.access.rewrite_rows(
                user, table, execution.result.columns, execution.result.rows
            )
            execution.result.rows[:] = rewritten
            execution.result.invalidate_byte_size()
        return execution

    def prepare_fetch(self, sql: str) -> Optional[PreparedSelect]:
        """Plan a broadcast subquery once, for reuse at every data owner.

        Returns ``None`` for statements that cannot be shared (e.g. ones
        containing subqueries), in which case callers fall back to sending
        plain SQL.  A missing table raises :class:`SqlCatalogError` exactly
        like executing the SQL would, preserving broadcast skip semantics.
        """
        try:
            return self.database.prepare(sql)
        except SqlExecutionError:
            return None

    def _check_snapshot(self, query_timestamp: Optional[float]) -> None:
        if query_timestamp is not None and self.last_refresh_at > query_timestamp:
            raise QueryRejectedError(
                f"peer {self.peer_id!r} refreshed at {self.last_refresh_at} "
                f"after the query's timestamp {query_timestamp}; resubmit"
            )

    def _require_online(self) -> None:
        if not self.online:
            raise PeerUnavailableError(f"peer {self.peer_id!r} is offline")

    # ------------------------------------------------------------------
    # Index publication (§4.3: "each normal peer invokes the data indexer
    # to publish index entries to the BestPeer++ network")
    # ------------------------------------------------------------------
    def publish_indices(
        self,
        indexer,
        range_columns: Optional[Dict[str, Sequence[str]]] = None,
    ) -> int:
        """Publish table + column (+ optional range) entries for all tables.

        ``range_columns`` maps table -> columns to build range indexes on.
        Returns total routing hops spent.
        """
        hops = 0
        range_columns = range_columns or {}
        policy = getattr(indexer, "policy", None)
        for table_name in self.database.table_names():
            table = self.database.table(table_name)
            if len(table) == 0:
                continue
            if policy is not None and not policy.admits_table(len(table)):
                continue  # partial indexing: small tables stay unindexed
            hops += indexer.publish_table(table_name, self.peer_id)
            stats = self.database.table_stats(table_name)
            for column in table.schema.column_names:
                if policy is not None and not policy.admits_column(column):
                    continue
                hops += indexer.publish_column(
                    column, self.peer_id, [table_name]
                )
            for column in range_columns.get(table_name, []):
                column_stats = stats.columns[column.lower()]
                hops += indexer.publish_range(
                    table_name,
                    column,
                    column_stats.minimum,
                    column_stats.maximum,
                    self.peer_id,
                )
        return hops

    # ------------------------------------------------------------------
    # Backup / restore (EBS snapshots, §2.1/§3.2)
    # ------------------------------------------------------------------
    def make_backup_payload(self) -> BackupPayload:
        return BackupPayload(
            schemas=[
                self.database.table(name).schema
                for name in self.database.table_names()
            ],
            secondary_indices=dict(self._secondary_indices),
            tables={
                name: list(self.database.table(name).rows())
                for name in self.database.table_names()
            },
            last_refresh_at=self.last_refresh_at,
            loader_snapshots=(
                self._loader.export_snapshots()
                if self._loader is not None
                else {}
            ),
        )

    def backup_to(self, cloud: CloudProvider):
        """Asynchronously snapshot the database to EBS."""
        payload = self.make_backup_payload()
        return cloud.create_snapshot(
            self.host, self.database.total_bytes, payload
        )

    def restore_from_payload(self, payload: BackupPayload) -> None:
        """Rebuild the database from a snapshot (fail-over recovery)."""
        self.database = Database(self.peer_id)
        for schema in payload.schemas:
            self.create_table(
                schema, payload.secondary_indices.get(schema.name, ())
            )
        for table, rows in payload.tables.items():
            self.database.table(table).insert_many(rows)
        self.last_refresh_at = payload.last_refresh_at
        # Rebind the loader to the rebuilt database and reinstall its
        # backed-up snapshot store, so future differential refreshes diff
        # against what the restored database actually contains.
        if self._loader is not None:
            mapping = self._loader.mapping
            self._loader = DataLoader(self.database, mapping)
            self._loader.restore_snapshots(payload.loader_snapshots)
        self._update_storage_metric()

    def rebind_instance(self, instance: Instance) -> None:
        """Move the peer onto a freshly launched instance (fail-over)."""
        self.instance = instance
        self._update_storage_metric()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def record_busy(self, seconds: float) -> None:
        """Charge extra busy time (e.g. coordinator-side processing)."""
        if seconds > 0:
            self._busy_s_since_epoch += seconds

    def update_cpu_metric(self, epoch_s: float) -> float:
        """Fold accumulated busy time into the CloudWatch CPU gauge.

        Called by the bootstrap daemon once per maintenance epoch; returns
        the utilization and resets the accumulator.
        """
        if epoch_s <= 0:
            raise BestPeerError(f"epoch must be positive: {epoch_s}")
        utilization = min(1.0, self._busy_s_since_epoch / epoch_s)
        if self._busy_s_since_epoch > 0:
            # Only overwrite the gauge when this peer actually worked; an
            # externally set gauge (e.g. load generated outside the query
            # path) stays authoritative for an idle epoch.
            self._busy_s_since_epoch = 0.0
            if self.instance.state is InstanceState.RUNNING:
                self.instance.cpu_utilization = utilization
        return utilization

    def _update_storage_metric(self) -> None:
        if self.instance.state is InstanceState.RUNNING:
            self.instance.storage_used_gb = self.database.total_bytes / 1e9
