"""Processing graphs (Definition 3, §5.3).

A query with ``x`` joins and ``y`` GROUP BY attributes compiles into a graph
with levels ``L = x + f(y)`` (``f(y) = 1`` if ``y >= 1`` else 0) above the
storage level:

* nodes at level L read from BestPeer++'s storage (the local databases),
* each join operator gets one level, the GROUP BY operator one level,
* the root (level 0) is the query-submitting peer, which evaluates every
  operator not assigned to a non-root node and collects the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import BestPeerError
from repro.hadoopdb.sms import DistributedPlan


@dataclass(frozen=True)
class GraphLevel:
    """One level of the processing graph."""

    level: int  # f(v): 0 = root, L = leaves
    operator: str  # "root" | "join" | "groupby" | "scan"
    # For joins: the table joined in at this level; for scans: the table read.
    table: Optional[str] = None
    # How many nodes work in parallel at this level (t(T_i) for joins).
    node_count: int = 1


@dataclass
class ProcessingGraph:
    """Levels 0..L of a query's processing graph."""

    levels: List[GraphLevel]

    @property
    def depth(self) -> int:
        """L: the maximal level id (excluding the root)."""
        return max(level.level for level in self.levels)

    @property
    def join_levels(self) -> List[GraphLevel]:
        return [level for level in self.levels if level.operator == "join"]

    @property
    def has_groupby(self) -> bool:
        return any(level.operator == "groupby" for level in self.levels)

    def level(self, level_id: int) -> GraphLevel:
        for level in self.levels:
            if level.level == level_id:
                return level
        raise BestPeerError(f"processing graph has no level {level_id}")

    @classmethod
    def from_plan(
        cls,
        plan: DistributedPlan,
        partitions_per_table: Optional[dict] = None,
    ) -> "ProcessingGraph":
        """Build the graph for a compiled distributed plan.

        ``partitions_per_table`` maps table name -> t(T_i), the number of
        peers hosting a partition of that table (defaults to 1).
        """
        partitions = partitions_per_table or {}
        x = len(plan.joins)
        y = 1 if plan.aggregate is not None else 0
        total = x + y  # L = x + f(y)

        levels: List[GraphLevel] = [GraphLevel(0, "root")]
        # Joins occupy levels L..(y+1), innermost join deepest: the base
        # table joins the first JOIN stage at level L.
        for join_index, stage in enumerate(plan.joins):
            level_id = total - join_index
            levels.append(
                GraphLevel(
                    level=level_id,
                    operator="join",
                    table=stage.right.table,
                    node_count=max(1, partitions.get(stage.right.table, 1)),
                )
            )
        if y:
            levels.append(GraphLevel(1, "groupby"))
        # The storage level feeding the deepest operator.
        levels.append(
            GraphLevel(
                level=total + 1,
                operator="scan",
                table=plan.base.table,
                node_count=max(1, partitions.get(plan.base.table, 1)),
            )
        )
        levels.sort(key=lambda level: level.level)
        return cls(levels)
