"""The bootstrap peer (§3).

Run by the BestPeer++ service provider, the bootstrap peer is the network's
entry point and administrator: it manages peer join/departure (§3.1), acts
as the CA and the central metadata repository (global schema, peer list,
role definitions, user registry, §2.2), and runs the maintenance daemon of
Algorithm 1 — monitoring every normal peer through CloudWatch and scheduling
auto fail-over and auto-scaling events (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.access_control import Role
from repro.core.certificates import Certificate, CertificateAuthority
from repro.core.config import DaemonConfig
from repro.core.metrics import MetricsRegistry
from repro.core.peer import NormalPeer
from repro.errors import InstanceNotFound, MembershipError
from repro.sim.cloud import (
    CloudProvider,
    INSTANCE_LAUNCH_TIME_S,
    InstanceState,
)
from repro.sqlengine.schema import TableSchema


@dataclass
class PeerRecord:
    """Bookkeeping for one admitted peer."""

    peer_id: str
    certificate: Certificate
    instance_id: str


@dataclass
class JoinGrant:
    """What a newly admitted peer receives (§3.1)."""

    certificate: Certificate
    participants: List[str]
    global_schemas: Dict[str, TableSchema]
    roles: Dict[str, Role]


@dataclass
class FailoverEvent:
    peer_id: str
    old_instance_id: str
    new_instance_id: str
    duration_s: float
    restored_rows: int


@dataclass
class ScalingEvent:
    peer_id: str
    action: str  # "upgrade" | "add-storage"
    detail: str


@dataclass
class MaintenanceReport:
    """Outcome of one daemon epoch (one pass of Algorithm 1)."""

    failovers: List[FailoverEvent] = field(default_factory=list)
    scalings: List[ScalingEvent] = field(default_factory=list)
    released_instances: List[str] = field(default_factory=list)
    notified_peers: int = 0
    # Blacklisted instances the cloud no longer knows about (already
    # reclaimed out of band); skipped rather than released.
    release_skips: int = 0
    # Peers that missed a heartbeat this epoch but have not yet crossed
    # the suspicion threshold (miss-count failure detection).
    suspected_peers: List[str] = field(default_factory=list)


class BootstrapPeer:
    """The single provider-run coordinator instance."""

    def __init__(
        self,
        cloud: CloudProvider,
        global_schemas: Dict[str, TableSchema],
        daemon_config: Optional[DaemonConfig] = None,
        ca_secret: str = "bestpeer-ca",
        admission_policy: Optional[Callable[[str], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cloud = cloud
        self.metrics = metrics
        self.instance = cloud.launch_instance(
            instance_type="m1.large", instance_id="bootstrap"
        )
        self.ca = CertificateAuthority(ca_secret)
        self.daemon_config = daemon_config or DaemonConfig()
        self.global_schemas = dict(global_schemas)
        self.roles: Dict[str, Role] = {}
        # user -> peer that created the account ("The information of the
        # users created at one peer is forwarded to the bootstrap peer and
        # then broadcasted to other normal peers", §4.4).
        self.user_registry: Dict[str, str] = {}
        # §3.1: "If the join request is permitted by the service provider".
        self.admission_policy = admission_policy
        self._peers: Dict[str, PeerRecord] = {}
        self._blacklist: List[PeerRecord] = []
        # Miss-count failure detector: consecutive missed heartbeats per
        # peer; a fail-over triggers only at the suspicion threshold.
        self._missed_heartbeats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Roles (the provider "defines a standard set of roles", §4.4)
    # ------------------------------------------------------------------
    def define_role(self, role: Role) -> None:
        self.roles[role.name] = role

    # ------------------------------------------------------------------
    # Membership (§3.1)
    # ------------------------------------------------------------------
    def register_peer(self, peer: NormalPeer, now: float = 0.0) -> JoinGrant:
        """Admit a normal peer into the corporate network."""
        if peer.peer_id in self._peers:
            raise MembershipError(f"peer already joined: {peer.peer_id!r}")
        if any(record.peer_id == peer.peer_id for record in self._blacklist):
            raise MembershipError(f"peer is blacklisted: {peer.peer_id!r}")
        if self.admission_policy is not None and not self.admission_policy(
            peer.peer_id
        ):
            raise MembershipError(
                f"the service provider rejected the join request of "
                f"{peer.peer_id!r}"
            )
        certificate = self.ca.issue(peer.peer_id, now)
        # §3.1: credentials are checked against the CA before the peer is
        # admitted or handed anything — a revoked or cross-signed
        # certificate must never enter the membership records.
        if not self.ca.verify(certificate):
            raise MembershipError(
                f"certificate for {peer.peer_id!r} failed CA verification"
            )
        peer.certificate = certificate
        self._peers[peer.peer_id] = PeerRecord(
            peer_id=peer.peer_id,
            certificate=certificate,
            instance_id=peer.host,
        )
        return JoinGrant(
            certificate=certificate,
            participants=self.peer_list(),
            global_schemas=dict(self.global_schemas),
            roles=dict(self.roles),
        )

    def handle_departure(self, peer_id: str) -> None:
        """Process a voluntary departure: blacklist, revoke, reclaim."""
        record = self._peers.pop(peer_id, None)
        if record is None:
            raise MembershipError(f"unknown peer: {peer_id!r}")
        self.ca.revoke(record.certificate)
        self._missed_heartbeats.pop(peer_id, None)
        self._blacklist.append(record)

    def peer_list(self) -> List[str]:
        return sorted(self._peers)

    def is_member(self, peer_id: str) -> bool:
        return peer_id in self._peers

    def verify_certificate(self, certificate: Certificate) -> bool:
        return self.ca.verify(certificate)

    # ------------------------------------------------------------------
    # User registry (§4.4)
    # ------------------------------------------------------------------
    def register_user(self, user: str, origin_peer_id: str) -> None:
        if origin_peer_id not in self._peers:
            raise MembershipError(
                f"users must originate at a member peer: {origin_peer_id!r}"
            )
        self.user_registry[user] = origin_peer_id

    # ------------------------------------------------------------------
    # Algorithm 1: the maintenance daemon
    # ------------------------------------------------------------------
    def run_maintenance_epoch(
        self, peers: Dict[str, NormalPeer]
    ) -> MaintenanceReport:
        """One pass of the daemon: monitor, fail-over, auto-scale, release.

        ``peers`` maps peer id -> the live peer object (the in-process stand
        -in for "asking the instance to recover"); the *decision* inputs come
        exclusively from CloudWatch, as in the paper.
        """
        report = MaintenanceReport()
        config = self.daemon_config
        for peer_id in self.peer_list():
            peer = peers.get(peer_id)
            if peer is None:
                continue
            record = self._peers[peer_id]
            if not self.cloud.cloudwatch.is_responsive(record.instance_id):
                # Miss-count failure detection: declare the peer failed only
                # after ``suspicion_threshold`` consecutive missed
                # heartbeats, so transient unreachability (message loss,
                # short outages) does not trigger a spurious fail-over.
                missed = self._missed_heartbeats.get(peer_id, 0) + 1
                if missed >= config.suspicion_threshold:
                    self._missed_heartbeats[peer_id] = 0
                    report.failovers.append(self._failover(record, peer))
                else:
                    self._missed_heartbeats[peer_id] = missed
                    report.suspected_peers.append(peer_id)
                continue
            self._missed_heartbeats[peer_id] = 0
            # Fold the peer's busy time since the last epoch into the
            # CloudWatch CPU gauge the decisions below read.
            peer.update_cpu_metric(config.epoch_s)
            metrics = self.cloud.cloudwatch.metrics(record.instance_id)
            if metrics["cpu_utilization"] > config.cpu_overload_threshold:
                upgraded = self._upgrade(record, peer)
                if upgraded is not None:
                    report.scalings.append(upgraded)
            if metrics["free_storage_gb"] < config.free_storage_threshold_gb:
                self.cloud.add_storage(
                    record.instance_id, config.storage_increment_gb
                )
                report.scalings.append(
                    ScalingEvent(
                        peer_id,
                        "add-storage",
                        f"+{config.storage_increment_gb} GB",
                    )
                )
        # "At the end of each maintenance epoch, the bootstrap releases the
        # resources in the blacklist and notifies the changes."
        for record in self._blacklist:
            try:
                instance = self.cloud.describe_instance(record.instance_id)
            except InstanceNotFound:
                # The instance was already reclaimed out of band; count the
                # skip so silent leaks of blacklist entries stay visible.
                report.release_skips += 1
                if self.metrics is not None:
                    self.metrics.faults.blacklist_release_skips += 1
                continue
            if instance.state is not InstanceState.TERMINATED:
                if instance.state is InstanceState.CRASHED:
                    instance.state = InstanceState.RUNNING  # reclaimable
                self.cloud.terminate_instance(record.instance_id)
                report.released_instances.append(record.instance_id)
        self._blacklist.clear()
        report.notified_peers = len(self._peers)
        return report

    def _failover(self, record: PeerRecord, peer: NormalPeer) -> FailoverEvent:
        """Fail-over one crashed peer (lines 6-10 of Algorithm 1)."""
        old_instance_id = record.instance_id
        snapshot = self.cloud.latest_snapshot(old_instance_id)
        new_instance = self.cloud.launch_instance(
            instance_type=peer.instance.instance_type.name,
            storage_gb=peer.instance.storage_gb,
            security_group=peer.instance.security_group,
        )
        duration = (
            self.daemon_config.detection_delay_s + INSTANCE_LAUNCH_TIME_S
        )
        restored_rows = 0
        if snapshot is not None:
            duration += self.cloud.restore_duration_s(snapshot)
        # Blacklist the failed instance; it is released at epoch end.
        self._blacklist.append(
            PeerRecord(record.peer_id, record.certificate, old_instance_id)
        )
        record.instance_id = new_instance.instance_id
        peer.rebind_instance(new_instance)
        if snapshot is not None:
            peer.restore_from_payload(snapshot.payload)
            restored_rows = snapshot.payload.total_rows
        return FailoverEvent(
            peer_id=record.peer_id,
            old_instance_id=old_instance_id,
            new_instance_id=new_instance.instance_id,
            duration_s=duration,
            restored_rows=restored_rows,
        )

    def _upgrade(
        self, record: PeerRecord, peer: NormalPeer
    ) -> Optional[ScalingEvent]:
        current = peer.instance.instance_type.name
        bigger = self.cloud.scale_up_type(current)
        if bigger is None:
            return None
        self.cloud.resize_instance(record.instance_id, bigger)
        return ScalingEvent(record.peer_id, "upgrade", f"{current} -> {bigger}")
