"""The bootstrap peer (§3), made survivable.

Run by the BestPeer++ service provider, the bootstrap peer is the network's
entry point and administrator: it manages peer join/departure (§3.1), acts
as the CA and the central metadata repository (global schema, peer list,
role definitions, user registry, §2.2), and runs the maintenance daemon of
Algorithm 1 — monitoring every normal peer through CloudWatch and scheduling
auto fail-over and auto-scaling events (§3.2).

Since the bootstrap administers everybody else's fail-over, it must itself
survive failures.  Two layers provide that:

* :class:`BootstrapPeer` no longer mutates metadata in place.  Every
  mutation is a typed record committed to a
  :class:`~repro.core.metalog.MetadataLog` and folded into
  :class:`~repro.core.metalog.BootstrapState` by the single
  :func:`~repro.core.metalog.apply` reducer (rule RES002 enforces this).
  Each commit runs under the lease/epoch protocol of
  :mod:`repro.core.leadership`; the epoch fences stale leaders out of the
  log and strides the certificate serial space.

* :class:`BootstrapCluster` runs a primary/standby pair.  The leader ships
  every committed entry to the standby over the priced
  :class:`~repro.sim.network.SimNetwork`; when the leader dies (or is
  partitioned away) :meth:`BootstrapCluster.recover` waits out the lease
  and promotes the standby, which replays its copy of the log and resumes
  Algorithm 1 — finishing any fail-over that was in flight when the
  primary died (the ``pending_failovers`` it inherited through the log).

Constructing a bare ``BootstrapPeer(cloud, schemas)`` still works and
behaves exactly as before (single node, epoch 0, no replication), so the
pre-HA call sites and tests are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import metalog
from repro.core.access_control import Role
from repro.core.certificates import Certificate, CertificateAuthority
from repro.core.config import DaemonConfig, LeaseConfig
from repro.core.leadership import LeadershipHandle, LeaseService
from repro.core.metalog import MetadataLog, PeerRecord
from repro.core.metrics import MetricsRegistry
from repro.core.peer import NormalPeer
from repro.errors import (
    BestPeerError,
    BootstrapUnavailableError,
    InstanceNotFound,
    MembershipError,
    NetworkError,
)
from repro.sim.cloud import (
    CloudProvider,
    INSTANCE_LAUNCH_TIME_S,
    InstanceState,
)
from repro.sqlengine.schema import TableSchema

#: Host id of the (simulated) lock service the lease protocol talks to.
LEASE_SERVICE_HOST = "lease-service"
#: Instance/host id of the standby bootstrap node.
BOOTSTRAP_STANDBY_ID = "bootstrap-standby"


@dataclass
class JoinGrant:
    """What a newly admitted peer receives (§3.1)."""

    certificate: Certificate
    participants: List[str]
    global_schemas: Dict[str, TableSchema]
    roles: Dict[str, Role]


@dataclass
class FailoverEvent:
    peer_id: str
    old_instance_id: str
    new_instance_id: str
    duration_s: float
    restored_rows: int


@dataclass
class ScalingEvent:
    peer_id: str
    action: str  # "upgrade" | "add-storage"
    detail: str


@dataclass
class MaintenanceReport:
    """Outcome of one daemon epoch (one pass of Algorithm 1)."""

    failovers: List[FailoverEvent] = field(default_factory=list)
    scalings: List[ScalingEvent] = field(default_factory=list)
    released_instances: List[str] = field(default_factory=list)
    notified_peers: int = 0
    # Blacklisted instances the cloud no longer knows about (already
    # reclaimed out of band); skipped rather than released.
    release_skips: int = 0
    # Peers that missed a heartbeat this epoch but have not yet crossed
    # the suspicion threshold (miss-count failure detection).
    suspected_peers: List[str] = field(default_factory=list)


class BootstrapPeer:
    """One provider-run coordinator node (primary, standby, or standalone).

    All metadata lives in ``self.state``, which only the WAL reducer may
    touch; the mutators below build records and push them through
    :meth:`_commit`.  ``leadership`` and ``replicate`` are ``None`` in
    standalone mode — commits then carry epoch 0 and stay local.
    """

    def __init__(
        self,
        cloud: CloudProvider,
        global_schemas: Dict[str, TableSchema],
        daemon_config: Optional[DaemonConfig] = None,
        ca_secret: str = "bestpeer-ca",
        admission_policy: Optional[Callable[[str], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        node_id: str = "bootstrap",
        leadership: Optional[LeadershipHandle] = None,
        replicate: Optional[Callable[[metalog.LogEntry], None]] = None,
        seed_schemas: bool = True,
    ) -> None:
        self.cloud = cloud
        self.metrics = metrics
        self.node_id = node_id
        self.instance = cloud.launch_instance(
            instance_type="m1.large", instance_id=node_id
        )
        self._ca_secret = ca_secret
        self.ca = CertificateAuthority(ca_secret)
        self.daemon_config = daemon_config or DaemonConfig()
        # §3.1: "If the join request is permitted by the service provider".
        self.admission_policy = admission_policy
        self.leadership = leadership
        self.replicate = replicate
        self.log = MetadataLog()
        self.state = metalog.BootstrapState()
        # Miss-count failure detector: consecutive missed heartbeats per
        # peer; a fail-over triggers only at the suspicion threshold.
        # Ephemeral (not WAL'd): a promoted standby restarts detection.
        self._missed_heartbeats: Dict[str, int] = {}
        if seed_schemas:
            for name in sorted(global_schemas):
                self._commit(
                    metalog.SchemaRegistered(name, global_schemas[name])
                )

    # ------------------------------------------------------------------
    # WAL plumbing
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.instance.instance_id

    @property
    def online(self) -> bool:
        return self.instance.state is InstanceState.RUNNING

    @property
    def epoch(self) -> int:
        """Epoch this node last led under (0 when it never led)."""
        return self.leadership.epoch if self.leadership is not None else 0

    # Read-only views kept for the pre-WAL API surface.
    @property
    def global_schemas(self) -> Dict[str, TableSchema]:
        return self.state.schemas

    @property
    def roles(self) -> Dict[str, Role]:
        return self.state.roles

    @property
    def user_registry(self) -> Dict[str, str]:
        return self.state.user_registry

    @property
    def _peers(self) -> Dict[str, PeerRecord]:
        return self.state.peers

    @property
    def _blacklist(self) -> List[PeerRecord]:
        return self.state.blacklist

    def _require_online(self) -> None:
        if not self.online:
            raise BootstrapUnavailableError(
                f"bootstrap node {self.node_id!r} is down"
            )

    def _commit(self, record: metalog.MetaRecord) -> metalog.LogEntry:
        """Append one record under the current epoch, apply it, ship it.

        The post-replication ``online`` check refuses to acknowledge a
        commit during which this node itself crashed (the crash fired on
        one of the commit's own transfers): the entry stays in this dead
        node's log, which will never be authoritative again, and the
        caller retries against the promoted standby.
        """
        self._require_online()
        epoch = 0
        if self.leadership is not None:
            epoch = self.leadership.ensure_leader().epoch
        entry = self.log.append(record, epoch)
        self.apply_entry(entry)
        if self.replicate is not None:
            self.replicate(entry)
        self._require_online()
        return entry

    def apply_entry(self, entry: metalog.LogEntry) -> None:
        """Fold an entry into local state, mirroring CA side effects.

        Used by the committing leader and by followers tailing the log: a
        replicated admission installs the leader-issued certificate into
        this node's CA (same shared secret), a departure revokes it, so a
        promoted standby can keep verifying every outstanding credential.
        """
        record = entry.record
        if isinstance(record, metalog.PeerAdmitted):
            self.ca.install(record.certificate)
        elif isinstance(record, metalog.PeerDeparted):
            member = self.state.peers.get(record.peer_id)
            if member is not None:
                self.ca.revoke(member.certificate)
        metalog.apply(self.state, entry)

    def receive_entry(self, entry: metalog.LogEntry) -> None:
        """Adopt one entry shipped by the leader (standby tail path)."""
        self.log.receive(entry)
        self.apply_entry(entry)

    def rebuild(self, entries: Sequence[metalog.LogEntry]) -> None:
        """Re-materialize everything from a full log copy (resync)."""
        self.log = MetadataLog()
        self.state = metalog.BootstrapState()
        self.ca = CertificateAuthority(self._ca_secret)
        for entry in entries:
            self.receive_entry(entry)

    # ------------------------------------------------------------------
    # Roles (the provider "defines a standard set of roles", §4.4)
    # ------------------------------------------------------------------
    def define_role(self, role: Role) -> None:
        self._commit(metalog.RoleDefined(role))

    # ------------------------------------------------------------------
    # Membership (§3.1)
    # ------------------------------------------------------------------
    def register_peer(self, peer: NormalPeer, now: float = 0.0) -> JoinGrant:
        """Admit a normal peer into the corporate network."""
        self._require_online()
        if peer.peer_id in self.state.peers:
            raise MembershipError(f"peer already joined: {peer.peer_id!r}")
        if any(
            record.peer_id == peer.peer_id
            for record in self.state.blacklist
        ):
            raise MembershipError(f"peer is blacklisted: {peer.peer_id!r}")
        if self.admission_policy is not None and not self.admission_policy(
            peer.peer_id
        ):
            raise MembershipError(
                f"the service provider rejected the join request of "
                f"{peer.peer_id!r}"
            )
        # The serial is strided by the leader's epoch and derived from the
        # WAL-materialized state, so a stale leader and its successor can
        # never hand out the same serial (split-brain safety), while a
        # standalone bootstrap (epoch 0) keeps the historical 1, 2, 3...
        epoch = (
            self.leadership.ensure_leader().epoch
            if self.leadership is not None
            else 0
        )
        serial = metalog.next_serial(self.state, epoch)
        certificate = self.ca.issue(peer.peer_id, now, serial=serial)
        # §3.1: credentials are checked against the CA before the peer is
        # admitted or handed anything — a revoked or cross-signed
        # certificate must never enter the membership records.
        if not self.ca.verify(certificate):
            raise MembershipError(
                f"certificate for {peer.peer_id!r} failed CA verification"
            )
        self._commit(
            metalog.PeerAdmitted(peer.peer_id, certificate, peer.host)
        )
        peer.certificate = certificate
        return JoinGrant(
            certificate=certificate,
            participants=self.peer_list(),
            global_schemas=dict(self.state.schemas),
            roles=dict(self.state.roles),
        )

    def resume_join(self, peer: NormalPeer) -> Optional[JoinGrant]:
        """Resume a join whose commit was durable but whose ack was lost.

        A leader can crash on one of its own commit's transfers *after*
        the admission replicated to the standby: the caller sees an
        unavailability error even though the entry survives on the node
        about to be promoted.  Retrying :meth:`register_peer` there would
        hit the double-join guard.  If this exact instance is already a
        member, return the grant the lost acknowledgement would have
        carried; otherwise ``None`` and the caller registers normally.
        A *different* instance claiming an admitted peer id is not a
        resume — it falls through to the double-join rejection.
        """
        self._require_online()
        record = self.state.peers.get(peer.peer_id)
        if record is None or record.instance_id != peer.host:
            return None
        # The stored credential must still verify before it is re-handed
        # out — a revocation between the attempts voids the resume.
        if not self.ca.verify(record.certificate):
            raise MembershipError(
                f"cannot resume join for {peer.peer_id!r}: stored "
                f"certificate failed CA verification"
            )
        peer.certificate = record.certificate
        return JoinGrant(
            certificate=record.certificate,
            participants=self.peer_list(),
            global_schemas=dict(self.state.schemas),
            roles=dict(self.state.roles),
        )

    def handle_departure(self, peer_id: str) -> None:
        """Process a voluntary departure: blacklist, revoke, reclaim."""
        if peer_id not in self.state.peers:
            raise MembershipError(f"unknown peer: {peer_id!r}")
        self._missed_heartbeats.pop(peer_id, None)
        # apply_entry revokes the certificate before the reducer moves the
        # record onto the blacklist.
        self._commit(metalog.PeerDeparted(peer_id))

    def resume_departure(self, peer_id: str) -> bool:
        """True when a departure that lost its ack is already durable here.

        Mirror image of :meth:`resume_join`: the departure record may have
        replicated before the committing leader crashed, so a retry on the
        promoted standby finds the peer already blacklisted and must treat
        that as success rather than "unknown peer".
        """
        self._require_online()
        return peer_id not in self.state.peers and any(
            record.peer_id == peer_id for record in self.state.blacklist
        )

    def peer_list(self) -> List[str]:
        return sorted(self.state.peers)

    def is_member(self, peer_id: str) -> bool:
        return peer_id in self.state.peers

    def verify_certificate(self, certificate: Certificate) -> bool:
        return self.ca.verify(certificate)

    # ------------------------------------------------------------------
    # User registry (§4.4)
    # ------------------------------------------------------------------
    def register_user(self, user: str, origin_peer_id: str) -> None:
        if origin_peer_id not in self.state.peers:
            raise MembershipError(
                f"users must originate at a member peer: {origin_peer_id!r}"
            )
        self._commit(metalog.UserRegistered(user, origin_peer_id))

    # ------------------------------------------------------------------
    # Algorithm 1: the maintenance daemon
    # ------------------------------------------------------------------
    def run_maintenance_epoch(
        self, peers: Dict[str, NormalPeer]
    ) -> MaintenanceReport:
        """One pass of the daemon: monitor, fail-over, auto-scale, release.

        ``peers`` maps peer id -> the live peer object (the in-process stand
        -in for "asking the instance to recover"); the *decision* inputs come
        exclusively from CloudWatch, as in the paper.

        A freshly promoted standby first finishes fail-overs the old
        primary had started but not completed (``pending_failovers``
        inherited through the log), then runs the normal monitor loop.
        """
        self._require_online()
        report = MaintenanceReport()
        config = self.daemon_config
        for peer_id in sorted(self.state.pending_failovers):
            peer = peers.get(peer_id)
            if peer is None:
                continue
            report.failovers.append(
                self._complete_failover(self.state.peers[peer_id], peer)
            )
        for peer_id in self.peer_list():
            peer = peers.get(peer_id)
            if peer is None:
                continue
            record = self.state.peers[peer_id]
            if not self.cloud.cloudwatch.is_responsive(record.instance_id):
                # Miss-count failure detection: declare the peer failed only
                # after ``suspicion_threshold`` consecutive missed
                # heartbeats, so transient unreachability (message loss,
                # short outages) does not trigger a spurious fail-over.
                missed = self._missed_heartbeats.get(peer_id, 0) + 1
                if missed >= config.suspicion_threshold:
                    self._missed_heartbeats[peer_id] = 0
                    report.failovers.append(self._failover(record, peer))
                else:
                    self._missed_heartbeats[peer_id] = missed
                    report.suspected_peers.append(peer_id)
                continue
            self._missed_heartbeats[peer_id] = 0
            # Fold the peer's busy time since the last epoch into the
            # CloudWatch CPU gauge the decisions below read.
            peer.update_cpu_metric(config.epoch_s)
            metrics = self.cloud.cloudwatch.metrics(record.instance_id)
            if metrics["cpu_utilization"] > config.cpu_overload_threshold:
                upgraded = self._upgrade(record, peer)
                if upgraded is not None:
                    report.scalings.append(upgraded)
            if metrics["free_storage_gb"] < config.free_storage_threshold_gb:
                self.cloud.add_storage(
                    record.instance_id, config.storage_increment_gb
                )
                report.scalings.append(
                    ScalingEvent(
                        peer_id,
                        "add-storage",
                        f"+{config.storage_increment_gb} GB",
                    )
                )
        # "At the end of each maintenance epoch, the bootstrap releases the
        # resources in the blacklist and notifies the changes."
        for record in self.state.blacklist:
            try:
                instance = self.cloud.describe_instance(record.instance_id)
            except InstanceNotFound:
                # The instance was already reclaimed out of band; count the
                # skip so silent leaks of blacklist entries stay visible.
                report.release_skips += 1
                if self.metrics is not None:
                    self.metrics.faults.blacklist_release_skips += 1
                continue
            if instance.state is not InstanceState.TERMINATED:
                if instance.state is InstanceState.CRASHED:
                    instance.state = InstanceState.RUNNING  # reclaimable
                self.cloud.terminate_instance(record.instance_id)
                report.released_instances.append(record.instance_id)
        if self.state.blacklist:
            self._commit(
                metalog.BlacklistReleased(
                    tuple(held.instance_id for held in self.state.blacklist)
                )
            )
        report.notified_peers = len(self.state.peers)
        return report

    def _failover(self, record: PeerRecord, peer: NormalPeer) -> FailoverEvent:
        """Fail-over one crashed peer (lines 6-10 of Algorithm 1).

        Committed in two records — ``FailoverStarted`` before any resource
        is touched, ``FailoverCompleted`` once the replacement is up — so a
        bootstrap that dies in between leaves a durable marker the
        promoted standby picks up and finishes.
        """
        self._commit(
            metalog.FailoverStarted(record.peer_id, record.instance_id)
        )
        return self._complete_failover(record, peer)

    def _complete_failover(
        self, record: PeerRecord, peer: NormalPeer
    ) -> FailoverEvent:
        self._require_online()
        old_instance_id = self.state.pending_failovers[record.peer_id]
        snapshot = self.cloud.latest_snapshot(old_instance_id)
        new_instance = self.cloud.launch_instance(
            instance_type=peer.instance.instance_type.name,
            storage_gb=peer.instance.storage_gb,
            security_group=peer.instance.security_group,
        )
        duration = (
            self.daemon_config.detection_delay_s + INSTANCE_LAUNCH_TIME_S
        )
        restored_rows = 0
        if snapshot is not None:
            duration += self.cloud.restore_duration_s(snapshot)
        # The reducer blacklists the failed instance (released at epoch
        # end) and rebinds the membership record to the replacement.
        self._commit(
            metalog.FailoverCompleted(
                record.peer_id, old_instance_id, new_instance.instance_id
            )
        )
        peer.rebind_instance(new_instance)
        if snapshot is not None:
            peer.restore_from_payload(snapshot.payload)
            restored_rows = snapshot.payload.total_rows
        return FailoverEvent(
            peer_id=record.peer_id,
            old_instance_id=old_instance_id,
            new_instance_id=new_instance.instance_id,
            duration_s=duration,
            restored_rows=restored_rows,
        )

    def _upgrade(
        self, record: PeerRecord, peer: NormalPeer
    ) -> Optional[ScalingEvent]:
        current = peer.instance.instance_type.name
        bigger = self.cloud.scale_up_type(current)
        if bigger is None:
            return None
        self.cloud.resize_instance(record.instance_id, bigger)
        return ScalingEvent(record.peer_id, "upgrade", f"{current} -> {bigger}")


class BootstrapCluster:
    """A primary/standby bootstrap pair behind lease-based leadership.

    The primary leads from epoch 1 and ships every committed log entry to
    the standby over the priced network.  :meth:`recover` implements
    promotion: wait out the old leader's lease (nobody else may lead
    before it expires — that is what makes split-brain impossible), have
    the standby acquire the lease (bumping the epoch), and let the next
    maintenance epoch finish whatever the old primary left in flight.

    Replication is synchronous towards a *healthy* standby: if shipping
    an entry fails while CloudWatch still sees the standby as responsive,
    the leader itself is presumed cut off and the commit is refused
    (:class:`~repro.errors.BootstrapUnavailableError`), so an
    acknowledged mutation can never be lost by a subsequent promotion.
    Entries for a standby that is genuinely down are backlogged and
    re-shipped once it returns.
    """

    def __init__(
        self,
        cloud: CloudProvider,
        global_schemas: Dict[str, TableSchema],
        daemon_config: Optional[DaemonConfig] = None,
        ca_secret: str = "bestpeer-ca",
        admission_policy: Optional[Callable[[str], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
        lease_config: Optional[LeaseConfig] = None,
        resilience=None,
        standby_node_id: str = BOOTSTRAP_STANDBY_ID,
    ) -> None:
        self.cloud = cloud
        self.network = cloud.network
        self.clock = cloud.clock
        self.metrics = metrics
        self.resilience = resilience
        self.lease_config = lease_config or LeaseConfig()
        self.service = LeaseService(self.lease_config)
        if not self.network.has_host(LEASE_SERVICE_HOST):
            self.network.add_host(LEASE_SERVICE_HOST)
        self.nodes: Dict[str, BootstrapPeer] = {}
        self.promotions = 0
        self._backlog: Dict[str, List[metalog.LogEntry]] = {}
        # Fields read by _send (the cluster's single transfer site).
        self._send_src = ""
        self._send_dst = ""
        self._send_bytes = 0
        # Set before constructing the primary: its schema seeding already
        # commits (and hence calls _replicate_entry, a no-op while the
        # node table below is still empty).
        self.leader_id = "bootstrap"
        primary = BootstrapPeer(
            cloud, global_schemas, daemon_config, ca_secret,
            admission_policy, metrics,
            node_id="bootstrap",
            leadership=self._handle_for("bootstrap"),
            replicate=self._replicate_entry,
            seed_schemas=True,
        )
        self.nodes[primary.node_id] = primary
        standby = BootstrapPeer(
            cloud, global_schemas, daemon_config, ca_secret,
            admission_policy, metrics,
            node_id=standby_node_id,
            leadership=self._handle_for(standby_node_id),
            replicate=self._replicate_entry,
            seed_schemas=False,
        )
        self.nodes[standby.node_id] = standby
        # Initial sync: ship the primary's existing log (schema seeding)
        # to the fresh standby in one priced batch.
        self._resync(primary, standby)

    def _handle_for(self, node_id: str) -> LeadershipHandle:
        def send() -> float:
            return self._priced_send(
                node_id, LEASE_SERVICE_HOST, self.lease_config.rpc_bytes
            )

        return LeadershipHandle(node_id, self.service, self.clock, send=send)

    # ------------------------------------------------------------------
    # Leader access
    # ------------------------------------------------------------------
    @property
    def leader(self) -> BootstrapPeer:
        return self.nodes[self.leader_id]

    @property
    def epoch(self) -> int:
        return self.leader.epoch

    def node_for(self, target: str) -> Optional[BootstrapPeer]:
        """The cluster node whose id/host is ``target``, if any."""
        return self.nodes.get(target)

    def leader_available(self) -> bool:
        return self.cloud.cloudwatch.is_responsive(self.leader.host)

    def require_leader(self) -> BootstrapPeer:
        if not self.leader_available():
            raise BootstrapUnavailableError(
                f"bootstrap leader {self.leader_id!r} is unreachable"
            )
        return self.leader

    def crash_node(self, node_id: str) -> None:
        """Crash one bootstrap node's instance (chaos entry point)."""
        node = self.nodes[node_id]
        if node.online and not self.network.is_partitioned(node.host):
            self.cloud.crash_instance(node.host)

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def recover(self) -> float:
        """Promote a standby after the leader failed; returns blocked time.

        No-op (0.0) when the current leader is actually reachable.  The
        wall the caller pays is the remainder of the old leader's lease:
        only after it lapses may the standby's ``acquire`` succeed and
        bump the epoch.
        """
        if self.leader_available():
            return 0.0
        blocked = 0.0
        lease = self.service.lease
        if (
            lease is not None
            and lease.holder == self.leader_id
            and lease.valid(self.clock.now)
        ):
            blocked = lease.expires_at - self.clock.now
            self.clock.advance(blocked)
        candidates = [
            node_id
            for node_id in sorted(self.nodes)
            if node_id != self.leader_id
            and self.cloud.cloudwatch.is_responsive(self.nodes[node_id].host)
        ]
        if not candidates:
            raise BootstrapUnavailableError(
                "bootstrap leader is down and no standby is reachable"
            )
        standby = self.nodes[candidates[0]]
        lease = standby.leadership.acquire()
        deposed = self.leader_id
        self.leader_id = standby.node_id
        self.promotions += 1
        if self.metrics is not None:
            self.metrics.record_event(
                self.clock.now,
                f"promotion: {deposed} -> {standby.node_id} "
                f"(epoch {lease.epoch})",
            )
        return blocked

    # ------------------------------------------------------------------
    # Log shipping
    # ------------------------------------------------------------------
    def replication_lag(self) -> Dict[str, int]:
        """Entries each non-leader node is behind the leader's log."""
        leader_len = len(self.leader.log)
        return {
            node_id: leader_len - len(self.nodes[node_id].log)
            for node_id in sorted(self.nodes)
            if node_id != self.leader_id
        }

    def _replicate_entry(self, entry: metalog.LogEntry) -> None:
        for node_id in sorted(self.nodes):
            if node_id == self.leader_id:
                continue
            leader = self.nodes[self.leader_id]
            follower = self.nodes[node_id]
            self._backlog.setdefault(node_id, []).append(entry)
            self._flush(leader, follower)
            if self._backlog[node_id] and self.cloud.cloudwatch.is_responsive(
                follower.host
            ):
                # The follower looks healthy to everyone else, yet this
                # node cannot reach it: the leader is the isolated one.
                # Refuse the commit rather than acknowledge a mutation a
                # promotion could lose.
                raise BootstrapUnavailableError(
                    f"leader {self.leader_id!r} cannot replicate to live "
                    f"standby {node_id!r}"
                )

    def _flush(self, leader: BootstrapPeer, follower: BootstrapPeer) -> None:
        pending = self._backlog.get(follower.node_id, [])
        while pending:
            entry = pending[0]
            try:
                self._priced_send(
                    leader.host,
                    follower.host,
                    entry.nbytes(self.lease_config.entry_base_bytes),
                )
            except NetworkError:
                return  # follower unreachable; keep the backlog
            try:
                follower.receive_entry(entry)
            except BestPeerError:
                # Index gap (the follower missed earlier entries and its
                # backlog was cleared by a resync race): full resync.
                self._resync(leader, follower)
                return
            pending.pop(0)

    def _resync(self, leader: BootstrapPeer, follower: BootstrapPeer) -> None:
        entries = leader.log.entries_since(0)
        base = self.lease_config.entry_base_bytes
        nbytes = sum(entry.nbytes(base) for entry in entries)
        try:
            self._priced_send(leader.host, follower.host, max(1, nbytes))
        except NetworkError:
            # Follower unreachable mid-resync: leave its log and the
            # backlog untouched.  The next flush hits the index gap again
            # and retries the resync; _replicate_entry still refuses the
            # commit if the follower looks live to everyone else.
            return
        follower.rebuild(entries)
        self._backlog[follower.node_id] = []

    # ------------------------------------------------------------------
    # The single priced transfer site (RES001: routed via resilience)
    # ------------------------------------------------------------------
    def _priced_send(self, src: str, dst: str, nbytes: int) -> float:
        self._send_src = src
        self._send_dst = dst
        self._send_bytes = nbytes
        if self.resilience is not None:
            return self.resilience.call(dst, self._send)
        return self._send()

    def _send(self) -> float:
        return self.network.transfer(
            self._send_src, self._send_dst, self._send_bytes
        )
