"""The data indexer: table, column and range indexes over BATON (§4.3).

Index formats follow Table 2 of the paper:

* **table index**  ``IT(table) -> [peer, ...]`` — which peers host a table,
* **column index** ``IC(column) -> [(peer, [tables]), ...]`` — which peers
  host a column (multi-tenant peers may hold different column subsets),
* **range index**  ``ID(table) -> [(column, min, max, peer), ...]`` — per
  peer min/max of an indexed column.

Query-side lookups apply the paper's priority **Range > Column > Table**:
"We will use the more accurate index whenever possible."  Peers also cache
index entries in memory (§5.2, first optimization) — cached lookups cost
zero routing hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baton.replication import ReplicatedOverlay
from repro.baton.tree import string_to_key
from repro.errors import BestPeerError


@dataclass(frozen=True)
class TableIndexEntry:
    table: str
    peer_id: str


@dataclass(frozen=True)
class ColumnIndexEntry:
    column: str
    peer_id: str
    tables: Tuple[str, ...]


@dataclass(frozen=True)
class RangeIndexEntry:
    table: str
    column: str
    low: object
    high: object
    peer_id: str


@dataclass
class PeerLookup:
    """Result of locating the data owners for one table access."""

    table: str
    peers: List[str]
    index_used: str  # "range" | "column" | "table"
    hops: int
    cache_hit: bool = False


@dataclass(frozen=True)
class PartialIndexPolicy:
    """The partial indexing scheme ([26], cited in §2/§7).

    "partial indexing scheme [was proposed] for reducing the index size" —
    instead of publishing an entry for every table and column, a peer
    publishes only what the policy admits: tables above a row threshold
    and/or an explicit column allow-list.  Lookups for unindexed data fall
    back to *broadcast* (asking every known peer), trading query messages
    for index maintenance cost.
    """

    min_table_rows: int = 0
    # None = index every column; otherwise only these (lowercase) columns.
    indexed_columns: Optional[frozenset] = None

    def admits_table(self, row_count: int) -> bool:
        return row_count >= self.min_table_rows

    def admits_column(self, column: str) -> bool:
        return (
            self.indexed_columns is None
            or column.lower() in self.indexed_columns
        )

    @property
    def is_partial(self) -> bool:
        """True when the policy can leave something unindexed."""
        return self.min_table_rows > 0 or self.indexed_columns is not None


FULL_INDEX_POLICY = PartialIndexPolicy()


class DataIndexer:
    """Publishes and queries the three index types for one peer."""

    def __init__(
        self,
        overlay: ReplicatedOverlay,
        cache_enabled: bool = True,
        policy: PartialIndexPolicy = FULL_INDEX_POLICY,
    ) -> None:
        self.overlay = overlay
        self.cache_enabled = cache_enabled
        self.policy = policy
        self._cache: Dict[float, list] = {}
        # Everything this indexer instance published, for clean departure.
        self._published: List[Tuple[float, object]] = []

    # ------------------------------------------------------------------
    # Keys (Table 2: each index type keyed by a string)
    # ------------------------------------------------------------------
    @staticmethod
    def table_key(table: str) -> float:
        return string_to_key(f"IT:{table.lower()}")

    @staticmethod
    def column_key(column: str) -> float:
        return string_to_key(f"IC:{column.lower()}")

    @staticmethod
    def range_key(table: str) -> float:
        # "key is the table name" for the range index too.
        return string_to_key(f"ID:{table.lower()}")

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_table(self, table: str, peer_id: str) -> int:
        entry = TableIndexEntry(table.lower(), peer_id)
        return self._publish(self.table_key(table), entry)

    def publish_column(
        self, column: str, peer_id: str, tables: Sequence[str]
    ) -> int:
        entry = ColumnIndexEntry(
            column.lower(), peer_id, tuple(sorted(t.lower() for t in tables))
        )
        return self._publish(self.column_key(column), entry)

    def publish_range(
        self, table: str, column: str, low: object, high: object, peer_id: str
    ) -> int:
        if low is not None and high is not None and low > high:
            raise BestPeerError(f"inverted range index bounds: {low} > {high}")
        entry = RangeIndexEntry(table.lower(), column.lower(), low, high, peer_id)
        return self._publish(self.range_key(table), entry)

    def unpublish_all(self, peer_id: str) -> int:
        """Withdraw every entry this indexer published for ``peer_id``."""
        hops = 0
        remaining: List[Tuple[float, object]] = []
        for key, entry in self._published:
            if getattr(entry, "peer_id", None) == peer_id:
                _, delete_hops = self.overlay.delete(key, entry)
                hops += delete_hops
                self._cache.pop(key, None)
            else:
                remaining.append((key, entry))
        self._published = remaining
        return hops

    def _publish(self, key: float, entry: object) -> int:
        hops = self.overlay.insert(key, entry)
        self._published.append((key, entry))
        self._cache.pop(key, None)
        return hops

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def peers_for_table(self, table: str) -> Tuple[Set[str], int, bool]:
        values, hops, cached = self._search(self.table_key(table))
        peers = {
            entry.peer_id
            for entry in values
            if isinstance(entry, TableIndexEntry) and entry.table == table.lower()
        }
        return peers, hops, cached

    def peers_for_column(
        self, column: str, table: Optional[str] = None
    ) -> Tuple[Set[str], int, bool]:
        values, hops, cached = self._search(self.column_key(column))
        peers = set()
        for entry in values:
            if not isinstance(entry, ColumnIndexEntry):
                continue
            if entry.column != column.lower():
                continue
            if table is not None and table.lower() not in entry.tables:
                continue
            peers.add(entry.peer_id)
        return peers, hops, cached

    def range_entries_for_table(
        self, table: str
    ) -> Tuple[List[RangeIndexEntry], int, bool]:
        values, hops, cached = self._search(self.range_key(table))
        entries = [
            entry
            for entry in values
            if isinstance(entry, RangeIndexEntry) and entry.table == table.lower()
        ]
        return entries, hops, cached

    def locate(
        self,
        table: str,
        column: Optional[str] = None,
        low: object = None,
        high: object = None,
        fallback_peers: Optional[Sequence[str]] = None,
    ) -> PeerLookup:
        """Find the data-owner peers for one table access.

        Applies the Range > Column > Table priority: a range constraint on an
        indexed column prunes peers by min/max overlap; otherwise a column
        constraint prunes to peers hosting that column; otherwise every peer
        hosting the table qualifies.

        Under a partial indexing policy a table may have no entries at all;
        when ``fallback_peers`` is given, the lookup then degrades to a
        broadcast over those peers (``index_used == "broadcast"``) instead of
        returning nobody — the just-in-time retrieval of [26].
        """
        if column is not None and (low is not None or high is not None):
            entries, hops, cached = self.range_entries_for_table(table)
            matching = [
                entry for entry in entries if entry.column == column.lower()
            ]
            if matching:
                peers = sorted(
                    {
                        entry.peer_id
                        for entry in matching
                        if _overlaps(entry.low, entry.high, low, high)
                    }
                )
                return PeerLookup(table.lower(), peers, "range", hops, cached)
        if column is not None:
            peers, hops, cached = self.peers_for_column(column, table)
            if peers:
                return PeerLookup(
                    table.lower(), sorted(peers), "column", hops, cached
                )
        peers, hops, cached = self.peers_for_table(table)
        if not peers and fallback_peers is not None:
            return PeerLookup(
                table.lower(), sorted(fallback_peers), "broadcast", hops, cached
            )
        return PeerLookup(table.lower(), sorted(peers), "table", hops, cached)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        self._cache.clear()

    def _search(self, key: float) -> Tuple[list, int, bool]:
        if self.cache_enabled and key in self._cache:
            return self._cache[key], 0, True
        result = self.overlay.search(key)
        if self.cache_enabled:
            self._cache[key] = result.values
        return result.values, result.hops, False


def _overlaps(entry_low, entry_high, query_low, query_high) -> bool:
    """Closed-interval overlap with open-ended sides allowed."""
    if entry_low is None or entry_high is None:
        return True
    if query_low is not None and entry_high < query_low:
        return False
    if query_high is not None and entry_low > query_high:
        return False
    return True
