"""BestPeer++'s MapReduce engine (§5.4).

"Besides its native processing strategy, we also implement a MapReduce-style
engine for BestPeer++ ... the mappers read data directly from the BestPeer++
instances and the output of reducers are written back to HDFS" — the job
shapes are the same as HadoopDB's (symmetric hash joins, one shuffle per
level), so the engine reuses the shared
:class:`~repro.hadoopdb.driver.DistributedPlanDriver`; only the input side
differs: splits run pushed-down SQL on the *normal peers'* local databases
through BestPeer++'s messaging substrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.accesscheck import require_unrestricted_read
from repro.core.execution import EngineContext, QueryExecution
from repro.errors import PeerUnavailableError
from repro.hadoopdb.driver import DistributedPlanDriver, LocalResult
from repro.hadoopdb.sms import SmsPlanner
from repro.mapreduce.engine import MapReduceConfig, MapReduceEngine
from repro.mapreduce.hdfs import Hdfs
from repro.sqlengine.parser import parse


class BestPeerMapReduceEngine:
    """Runs queries as MapReduce job chains over the normal peers."""

    def __init__(
        self,
        context: EngineContext,
        mr_config: Optional[MapReduceConfig] = None,
    ) -> None:
        self.context = context
        self.mr_config = mr_config or MapReduceConfig()
        self._query_counter = 0

    def execute(
        self,
        sql: str,
        user: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> QueryExecution:
        context = self.context
        stmt = parse(sql)
        plan = SmsPlanner(context.schemas).compile(stmt)

        # The engine runs over every peer holding any involved table.
        index_hops = 0
        involved: List[str] = []
        local_plans = [plan.base] + [stage.right for stage in plan.joins]
        for local_plan in local_plans:
            lookup = context.indexer.locate(local_plan.table)
            index_hops += lookup.hops
            for peer_id in lookup.peers:
                if peer_id not in involved:
                    involved.append(peer_id)
        if not involved:
            return QueryExecution(
                columns=[], records=[], latency_s=0.0, strategy="mapreduce"
            )
        for peer_id in involved:
            peer = context.peers.get(peer_id)
            if peer is None or not peer.online:
                raise PeerUnavailableError(peer_id)
        # Map tasks read raw fragments via execute_local, never through the
        # access-rewriting fetch path, so the whole job is gated up front:
        # every involved role must hold unrestricted reads (§4.4).
        require_unrestricted_read(context.peers, local_plans, involved, user)

        hosts = [context.peer(peer_id).host for peer_id in involved]
        host_to_peer = {context.peer(p).host: p for p in involved}

        # "a Hadoop distributed file system (HDFS) is mounted at system
        # start time" — mounted here over the involved instances.
        hdfs = Hdfs(context.network)
        for host in hosts:
            hdfs.register_datanode(host)
        engine = MapReduceEngine(hosts, context.network, hdfs, self.mr_config)

        def local_execute(host: str, fragment_sql: str) -> LocalResult:
            peer = context.peer(host_to_peer[host])
            # A map task reading its own host's database: the rows never
            # leave the instance here — HDFS reads and the shuffle price
            # every cross-host byte inside MapReduceEngine.
            execution = peer.execute_local(  # repro: allow[ISO002,RES001] map-side local read; shuffle prices the movement and MapReduce recovers by re-executing the job, not by retrying messages
                fragment_sql, query_timestamp=timestamp
            )
            return LocalResult(
                records=list(execution.result.rows),
                seconds=execution.seconds,
            )

        driver = DistributedPlanDriver(engine, hosts, local_execute)
        self._query_counter += 1
        result = driver.run(plan, f"bpmr-q{self._query_counter}")

        bytes_shuffled = sum(job.bytes_shuffled for job in result.jobs)
        latency = context.hop_cost_s(index_hops) + result.duration_s
        return QueryExecution(
            columns=result.columns,
            records=result.records,
            latency_s=latency,
            strategy="mapreduce",
            bytes_transferred=bytes_shuffled,
            peers_contacted=len(involved),
            index_hops=index_hops,
            dollar_cost=context.config.pricing.basic_cost(
                bytes_shuffled, latency
            ),
            engine_details={
                "jobs": float(len(result.jobs)),
                "startup_s": sum(job.timings.startup_s for job in result.jobs),
            },
        )
