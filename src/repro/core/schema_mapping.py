"""Schema mapping: local production schemas -> the global shared schema.

§4.1: the mapping "consists of metadata mappings (i.e., mapping local table
definitions to global table definitions) and value mappings (i.e., mapping
local terms to global terms)" and "BestPeer++ adopts templates to facilitate
the mapping process" — one template per popular production system (SAP,
PeopleSoft) that a business tweaks instead of authoring a mapping from
scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaMappingError
from repro.sqlengine.schema import TableSchema


@dataclass
class TableMapping:
    """Metadata + value mapping for one local table."""

    local_table: str
    global_table: str
    # local column -> global column
    column_map: Dict[str, str] = field(default_factory=dict)
    # global column -> {local term -> global term}
    value_map: Dict[str, Dict[object, object]] = field(default_factory=dict)

    def map_column(self, local_column: str) -> Optional[str]:
        return self.column_map.get(local_column.lower())


class SchemaMapping:
    """The full mapping owned by one normal peer."""

    def __init__(self, global_schemas: Dict[str, TableSchema]) -> None:
        self._global_schemas = {
            name.lower(): schema for name, schema in global_schemas.items()
        }
        self._by_local: Dict[str, TableMapping] = {}

    # ------------------------------------------------------------------
    # Authoring
    # ------------------------------------------------------------------
    def add_table_mapping(self, mapping: TableMapping) -> None:
        global_table = mapping.global_table.lower()
        schema = self._global_schemas.get(global_table)
        if schema is None:
            raise SchemaMappingError(
                f"global schema has no table {mapping.global_table!r}"
            )
        for local_column, global_column in mapping.column_map.items():
            if not schema.has_column(global_column):
                raise SchemaMappingError(
                    f"global table {global_table!r} has no column "
                    f"{global_column!r} (mapped from {local_column!r})"
                )
        self._by_local[mapping.local_table.lower()] = mapping

    def mapping_for(self, local_table: str) -> TableMapping:
        mapping = self._by_local.get(local_table.lower())
        if mapping is None:
            raise SchemaMappingError(
                f"no mapping defined for local table {local_table!r}"
            )
        return mapping

    def has_mapping(self, local_table: str) -> bool:
        return local_table.lower() in self._by_local

    # ------------------------------------------------------------------
    # Transformation (the offline data flow of Fig. 2)
    # ------------------------------------------------------------------
    def transform(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> Tuple[str, List[Tuple[object, ...]]]:
        """Rewrite local rows into global-schema rows.

        Unmapped local columns are dropped; unmapped global columns become
        NULL; value mappings translate local terms per column.  Returns
        ``(global_table, rows)``.
        """
        mapping = self.mapping_for(local_table)
        schema = self._global_schemas[mapping.global_table.lower()]
        positions: List[Tuple[int, int, Optional[Dict[object, object]]]] = []
        for local_position, local_column in enumerate(local_columns):
            global_column = mapping.map_column(local_column)
            if global_column is None:
                continue
            positions.append(
                (
                    local_position,
                    schema.column_index(global_column),
                    mapping.value_map.get(global_column.lower()),
                )
            )
        width = len(schema.columns)
        transformed: List[Tuple[object, ...]] = []
        for row in rows:
            if len(row) != len(local_columns):
                raise SchemaMappingError(
                    f"row width {len(row)} does not match local columns "
                    f"{len(local_columns)}"
                )
            values: List[object] = [None] * width
            for local_position, global_position, value_map in positions:
                value = row[local_position]
                if value_map is not None and value in value_map:
                    value = value_map[value]
                values[global_position] = value
            transformed.append(tuple(values))
        return mapping.global_table.lower(), transformed


# ----------------------------------------------------------------------
# Templates (§4.1: "for each popular production system ... we provide a
# mapping template").  A template is a mapping factory with renamable parts.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingTemplate:
    """A reusable mapping blueprint for one production system."""

    system: str
    # global table -> {local column -> global column} using the production
    # system's default table/column naming.
    tables: Dict[str, Dict[str, str]]
    local_table_names: Dict[str, str]  # global table -> default local name

    def instantiate(
        self,
        mapping: SchemaMapping,
        overrides: Optional[Dict[str, str]] = None,
    ) -> None:
        """Install the template, optionally renaming local tables.

        ``overrides`` maps global table name -> the business's actual local
        table name ("What the business only needs is to modify the mapping
        template to meet its own needs").
        """
        overrides = overrides or {}
        for global_table, column_map in self.tables.items():
            local_table = overrides.get(
                global_table, self.local_table_names[global_table]
            )
            mapping.add_table_mapping(
                TableMapping(
                    local_table=local_table,
                    global_table=global_table,
                    column_map=dict(column_map),
                )
            )


def identity_mapping(
    global_schemas: Dict[str, TableSchema],
    tables: Optional[Sequence[str]] = None,
) -> SchemaMapping:
    """The trivial mapping used by the performance benchmark (§6.1.4).

    "we set the local schema of each normal peer to be identical to the
    global schema. Therefore, the schema mapping is trivial."
    """
    mapping = SchemaMapping(global_schemas)
    for name, schema in global_schemas.items():
        if tables is not None and name.lower() not in {
            table.lower() for table in tables
        }:
            continue
        mapping.add_table_mapping(
            TableMapping(
                local_table=name,
                global_table=name,
                column_map={
                    column.name: column.name for column in schema.columns
                },
            )
        )
    return mapping
