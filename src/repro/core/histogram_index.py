"""Publishing histograms into BATON via iDistance (§5.1).

"Then, the buckets (multi-dimensional hypercube) are mapped into one
dimensional ranges using iDistance [12] and we index the buckets in BATON
based on their ranges."

Buckets are keyed by their iDistance value (scaled into the overlay's key
domain); a region query maps the query hyper-rectangle onto the relevant
iDistance partitions, range-searches the overlay and filters the returned
buckets by actual overlap.  The planner can thus estimate selectivities
from remotely stored buckets without contacting the data owners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baton.node import Range
from repro.baton.tree import BatonOverlay, string_to_key
from repro.core.histogram import Bucket, Histogram, idistance_key
from repro.errors import BestPeerError


@dataclass(frozen=True)
class PublishedBucket:
    """One bucket entry stored in the overlay."""

    table: str
    columns: Tuple[str, ...]
    lows: Tuple[float, ...]
    highs: Tuple[float, ...]
    count: int


class HistogramIndex:
    """Stores and retrieves histogram buckets in a BATON overlay."""

    def __init__(self, overlay, key_span: float = 0.25) -> None:
        """``overlay`` is a :class:`BatonOverlay` or a replicated wrapper.

        Each table's buckets are mapped into a sub-interval of the overlay's
        key domain starting at a hash of the table name and spanning
        ``key_span`` of the domain (wrapping is avoided by modular placement
        of partitions within the span).
        """
        if not 0 < key_span <= 1:
            raise BestPeerError(f"key_span must be in (0, 1]: {key_span}")
        self.overlay = overlay
        self.key_span = key_span
        # (table) -> (reference points, partition width, normalizer)
        self._layouts: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, table: str, histogram: Histogram) -> int:
        """Index every bucket of ``histogram``; returns routing hops."""
        table = table.lower()
        reference_points = self._reference_points(histogram)
        # The partition width must exceed any intra-partition distance.
        diameter = self._diameter(histogram) or 1.0
        partition_width = diameter * 1.01
        self._layouts[table] = (
            tuple(tuple(point) for point in reference_points),
            partition_width,
            partition_width * (len(reference_points) + 1),
        )
        hops = 0
        for bucket in histogram.buckets:
            key = self._bucket_key(table, bucket)
            entry = PublishedBucket(
                table=table,
                columns=tuple(histogram.columns),
                lows=bucket.lows,
                highs=bucket.highs,
                count=bucket.count,
            )
            hops += self.overlay.insert(key, entry)
        return hops

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def fetch(self, table: str) -> Tuple[Histogram, int]:
        """Reassemble a table's histogram from the overlay."""
        table = table.lower()
        layout = self._layouts.get(table)
        if layout is None:
            raise BestPeerError(f"no histogram published for {table!r}")
        low, high = self._table_key_range(table)
        result = self.overlay.range_search(low, high)
        buckets = []
        columns: Optional[Tuple[str, ...]] = None
        for _, entry in result.values:
            if not isinstance(entry, PublishedBucket) or entry.table != table:
                continue
            columns = entry.columns
            buckets.append(Bucket(entry.lows, entry.highs, entry.count))
        if columns is None:
            raise BestPeerError(f"no buckets found for {table!r}")
        return Histogram(list(columns), buckets), result.hops

    def estimate_region(
        self,
        table: str,
        lows: Optional[Dict[str, float]] = None,
        highs: Optional[Dict[str, float]] = None,
    ) -> Tuple[float, int]:
        """EC(H, Q_R) computed from the published buckets."""
        histogram, hops = self.fetch(table)
        return histogram.region_count(lows, highs), hops

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reference_points(self, histogram: Histogram) -> List[Tuple[float, ...]]:
        """iDistance reference points: corners of the data bounding box."""
        if not histogram.buckets:
            return [tuple(0.0 for _ in histogram.columns)]
        dims = len(histogram.columns)
        lows = tuple(
            min(bucket.lows[d] for bucket in histogram.buckets)
            for d in range(dims)
        )
        highs = tuple(
            max(bucket.highs[d] for bucket in histogram.buckets)
            for d in range(dims)
        )
        # Two opposite corners keep the partition count (and therefore the
        # key range) small while still spreading buckets.
        return [lows, highs]

    def _diameter(self, histogram: Histogram) -> float:
        if not histogram.buckets:
            return 1.0
        dims = len(histogram.columns)
        spans = []
        for d in range(dims):
            low = min(bucket.lows[d] for bucket in histogram.buckets)
            high = max(bucket.highs[d] for bucket in histogram.buckets)
            spans.append(high - low)
        return math.sqrt(sum(span * span for span in spans))

    def _bucket_key(self, table: str, bucket: Bucket) -> float:
        reference_points, partition_width, normalizer = self._layouts[table]
        raw = idistance_key(bucket.center(), reference_points, partition_width)
        low, high = self._table_key_range(table)
        return low + (raw / normalizer) * (high - low)

    def _table_key_range(self, table: str) -> Tuple[float, float]:
        domain = self.overlay.domain if hasattr(self.overlay, "domain") else (
            self.overlay.overlay.domain
        )
        start = string_to_key(f"HIST:{table}", domain)
        width = domain.width * self.key_span
        high = min(start + width, domain.high)
        return start, high
