"""The BestPeerNetwork facade: one object that is "the service".

Wires the simulated cloud, the BATON overlay, the bootstrap peer and the
normal peers into the system a user of the paper's platform would see:

* register the global schema, launch peers (each on its own dedicated
  instance inside a security group, §2.1),
* load each business's data (identity mapping by default; custom
  :class:`~repro.core.schema_mapping.SchemaMapping` supported),
* submit queries from any peer through any engine — ``basic``,
  ``parallel``, ``mapreduce`` or ``adaptive``,
* strong consistency under failures (§3.2): a query touching a crashed peer
  *blocks* until the bootstrap's fail-over completes, then transparently
  retries — it never returns partial data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baton.loadbalance import (
    LoadBalancer,
    LoadBalancerConfig,
    RebalanceReport,
)
from repro.baton.replication import ReplicatedOverlay
from repro.baton.tree import BatonOverlay
from repro.core.access_control import Role, full_access_role
from repro.core.adaptive import AdaptiveEngine, TableStatistics
from repro.core.bootstrap import (
    BootstrapCluster,
    BootstrapPeer,
    MaintenanceReport,
)
from repro.core.config import (
    BestPeerConfig,
    DaemonConfig,
    DEFAULT_ENGINE,
    DEFAULT_INSTANCE_TYPE,
    LeaseConfig,
    ServingConfig,
)
from repro.core.costmodel import CostParams
from repro.core.engine_basic import BasicEngine
from repro.core.engine_mapreduce import BestPeerMapReduceEngine
from repro.core.engine_parallel import ParallelP2PEngine
from repro.core.execution import EngineContext, QueryExecution
from repro.core.histogram import Histogram
from repro.core.indexer import (
    DataIndexer,
    FULL_INDEX_POLICY,
    PartialIndexPolicy,
)
from repro.core.metrics import MetricsRegistry
from repro.core.peer import NormalPeer
from repro.core.resilience import ResilienceContext
from repro.core.schema_mapping import SchemaMapping, identity_mapping
from repro.errors import (
    BestPeerError,
    PeerUnavailableError,
    QueryRejectedError,
    ReplicaUnavailableError,
    TransientNetworkError,
)
from repro.mapreduce.engine import MapReduceConfig
from repro.sim.clock import SimClock
from repro.sim.cloud import CloudProvider
from repro.sim.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.sim.failure import FaultPlan
from repro.sim.network import NetworkConfig, SimNetwork
from repro.sqlengine.schema import TableSchema

#: Sentinel peer id the resilience layer uses for bootstrap-metadata RPCs:
#: ``is_crashed``/``failover`` map it to leader liveness and standby
#: promotion instead of a normal peer's Algorithm-1 fail-over.
BOOTSTRAP_PEER_ID = "bootstrap"


class BestPeerNetwork:
    """A whole BestPeer++ deployment in one in-process object."""

    def __init__(
        self,
        global_schemas: Dict[str, TableSchema],
        secondary_indices: Optional[Dict[str, List[str]]] = None,
        config: Optional[BestPeerConfig] = None,
        daemon_config: Optional[DaemonConfig] = None,
        mr_config: Optional[MapReduceConfig] = None,
        cost_params: Optional[CostParams] = None,
        compute_model: Optional[ComputeModel] = None,
        network_config: Optional[NetworkConfig] = None,
        index_policy: Optional["PartialIndexPolicy"] = None,
        lease_config: Optional[LeaseConfig] = None,
    ) -> None:
        self.clock = SimClock()
        self.network = SimNetwork(network_config)
        self.cloud = CloudProvider(self.network, self.clock)
        self.overlay = ReplicatedOverlay(BatonOverlay())
        self.config = config or BestPeerConfig()
        self.mr_config = mr_config or MapReduceConfig()
        self.cost_params = cost_params or CostParams()
        self.compute_model = compute_model or DEFAULT_COMPUTE_MODEL
        self.global_schemas = {
            name.lower(): schema for name, schema in global_schemas.items()
        }
        self.secondary_indices = secondary_indices or {}
        self.metrics = MetricsRegistry()
        self.index_policy = index_policy or FULL_INDEX_POLICY
        self.peers: Dict[str, NormalPeer] = {}
        self.indexers: Dict[str, DataIndexer] = {}
        self.statistics: Dict[str, TableStatistics] = {}
        self._adaptive: Dict[str, AdaptiveEngine] = {}
        # Cumulative fail-over blocking time, exposed for benchmarks.
        self.total_blocked_s = 0.0
        # The retry/breaker/fail-over layer every engine call goes through.
        # Built before the bootstrap cluster: the cluster routes its log
        # shipping and lease RPCs through it.
        self.resilience = ResilienceContext(
            policy=self.config.fetch_retry,
            clock=self.clock,
            jitter_seed=self.config.retry_jitter_seed,
            metrics=self.metrics,
            breaker_failure_threshold=self.config.breaker_failure_threshold,
            breaker_reset_timeout_s=self.config.breaker_reset_timeout_s,
            is_crashed=self._peer_crashed,
            failover=self._failover_peer,
            deadline_s=self.config.query_deadline_s,
        )
        # The HA pair: primary + log-tailing standby behind a lease.
        self.bootstrap_cluster = BootstrapCluster(
            self.cloud, self.global_schemas, daemon_config,
            metrics=self.metrics,
            lease_config=lease_config,
            resilience=self.resilience,
        )
        # Current bootstrap-metadata operation; set by _bootstrap_op so
        # _bootstrap_attempt (the retried callable) can re-resolve the
        # leader on every attempt.
        self._bootstrap_fn = None
        # The serving front door, once attached (attach_serving).
        self.serving = None
        # Measured-load balancer over the overlay (hot-range migration,
        # census-gated); its counters mirror into metrics.overlay_load.
        self.load_balancer = LoadBalancer(self.overlay)

    # ------------------------------------------------------------------
    # Bootstrap access (leader discovery with retry)
    # ------------------------------------------------------------------
    @property
    def bootstrap(self) -> BootstrapPeer:
        """The current bootstrap leader (primary, or promoted standby)."""
        return self.bootstrap_cluster.leader

    def _bootstrap_op(self, fn):
        """Run a metadata operation against the current bootstrap leader.

        ``fn(leader)`` executes on whichever node currently leads; if the
        leader is down, ``resilience.call`` escalates through its
        fail-over callback (standby promotion via
        :meth:`BootstrapCluster.recover`) and retries against the new
        leader — so joins and fail-over requests issued during a
        bootstrap outage eventually succeed instead of erroring out.
        """
        previous = self._bootstrap_fn
        self._bootstrap_fn = fn
        try:
            return self.resilience.call(
                BOOTSTRAP_PEER_ID, self._bootstrap_attempt
            )
        finally:
            self._bootstrap_fn = previous

    def _bootstrap_attempt(self):
        leader = self.bootstrap_cluster.require_leader()
        return self._bootstrap_fn(leader)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(
        self,
        peer_id: str,
        instance_type: str = DEFAULT_INSTANCE_TYPE,
        tables: Optional[Sequence[str]] = None,
        mapping: Optional[SchemaMapping] = None,
    ) -> NormalPeer:
        """Launch a BestPeer++ instance for a new business and admit it.

        ``tables`` restricts which global tables this peer hosts (the
        throughput benchmark's supplier/retailer sub-schemas); default is
        all of them.
        """
        if peer_id in self.peers:
            raise BestPeerError(f"peer already exists: {peer_id!r}")
        if peer_id in self.bootstrap_cluster.nodes:
            raise BestPeerError(f"reserved peer id: {peer_id!r}")
        instance = self.cloud.launch_instance(
            instance_type=instance_type,
            security_group=f"vpn-{peer_id}",
        )
        peer = NormalPeer(
            peer_id, instance, config=self.config,
            compute_model=self.compute_model,
        )
        hosted = [
            name.lower() for name in (tables or self.global_schemas.keys())
        ]
        for name in hosted:
            peer.create_table(
                self.global_schemas[name],
                self.secondary_indices.get(name, ()),
            )
        peer.set_schema_mapping(
            mapping
            or identity_mapping(self.global_schemas, tables=hosted)
        )
        def _register(leader):
            # Retry idempotency: a crash on the commit's own transfers can
            # refuse the ack *after* the admission replicated; on the next
            # attempt the promoted standby already holds the entry, and
            # re-registering would double-admit.
            resumed = leader.resume_join(peer)
            if resumed is not None:
                return resumed
            return leader.register_peer(peer, now=self.clock.now)

        self._bootstrap_op(_register)
        self.overlay.join(peer_id)
        self.peers[peer_id] = peer
        self.indexers[peer_id] = DataIndexer(
            self.overlay,
            cache_enabled=self.config.index_cache_enabled,
            policy=self.index_policy,
        )
        return peer

    def depart_peer(self, peer_id: str) -> None:
        """Voluntary departure (§3.1): blacklist, revoke, withdraw indexes."""
        peer = self._peer(peer_id)
        self.indexers[peer_id].unpublish_all(peer_id)
        self.overlay.leave(peer_id)
        def _depart(leader):
            if not leader.resume_departure(peer_id):
                leader.handle_departure(peer_id)

        self._bootstrap_op(_depart)
        del self.peers[peer_id]
        del self.indexers[peer_id]
        self._adaptive.pop(peer_id, None)
        for indexer in self.indexers.values():
            indexer.clear_cache()

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load_peer(
        self,
        peer_id: str,
        data: Dict[str, List[tuple]],
        range_columns: Optional[Dict[str, Sequence[str]]] = None,
        backup: bool = True,
    ) -> None:
        """Initial-load a peer's partitions, publish indexes, snapshot.

        ``range_columns`` selects the columns to build BATON range indexes
        on (the throughput benchmark adds one on the nation key, §6.2.2).
        """
        peer = self._peer(peer_id)
        for table, rows in data.items():
            schema = self.global_schemas[table.lower()]
            peer.load_initial(
                table, schema.column_names, rows, now=self.clock.now
            )
            self._accumulate_statistics(peer, table.lower())
        peer.publish_indices(self.indexers[peer_id], range_columns)
        for indexer in self.indexers.values():
            indexer.clear_cache()
        if backup:
            peer.backup_to(self.cloud)

    def refresh_peer(
        self,
        peer_id: str,
        table: str,
        rows: List[tuple],
        range_columns: Optional[Dict[str, Sequence[str]]] = None,
        backup: bool = True,
    ):
        """Differential refresh of one table (the offline data flow, §4.2).

        Re-extracts the table through the snapshot-differential loader,
        republishes the peer's index entries (its min/max may have moved),
        and takes a fresh EBS snapshot.  Returns the
        :class:`~repro.core.loader.SnapshotDelta`.
        """
        peer = self._peer(peer_id)
        schema = self.global_schemas[table.lower()]
        delta = peer.refresh(
            table, schema.column_names, rows, now=self.clock.now
        )
        indexer = self.indexers[peer_id]
        indexer.unpublish_all(peer_id)
        peer.publish_indices(indexer, range_columns)
        for other in self.indexers.values():
            other.clear_cache()
        if backup:
            peer.backup_to(self.cloud)
        return delta

    def build_histogram(
        self, table: str, columns: Sequence[str], num_buckets: int = 16
    ) -> Histogram:
        """Build a global MHIST histogram over all peers' partitions."""
        rows: List[tuple] = []
        positions = None
        for peer in self.peers.values():
            if not peer.database.has_table(table):
                continue
            schema = peer.database.table(table).schema
            if positions is None:
                positions = [schema.column_index(column) for column in columns]
            for row in peer.database.table(table).rows():
                rows.append(tuple(row[position] for position in positions))
        histogram = Histogram.build(columns, rows, num_buckets)
        stats = self.statistics.get(table.lower())
        if stats is not None:
            stats.histogram = histogram
        return histogram

    def _accumulate_statistics(self, peer: NormalPeer, table: str) -> None:
        table_stats = peer.database.table_stats(table)
        entry = self.statistics.get(table)
        if entry is None:
            entry = TableStatistics(table, 0.0, 0)
            self.statistics[table] = entry
        entry.total_bytes += table_stats.byte_size
        entry.row_count += table_stats.row_count

    # ------------------------------------------------------------------
    # Users and roles
    # ------------------------------------------------------------------
    def define_role(self, role: Role) -> None:
        self._bootstrap_op(lambda leader: leader.define_role(role))

    def create_full_access_role(self, name: str = "R") -> Role:
        """The benchmark's role R, granted full access to all tables."""
        role = full_access_role(name, self.global_schemas.values())
        self.define_role(role)
        return role

    def create_user(self, user: str, origin_peer_id: str, role: Role) -> None:
        """Create a user at one peer and broadcast it network-wide (§4.4)."""
        self._bootstrap_op(
            lambda leader: leader.register_user(user, origin_peer_id)
        )
        for peer in self.peers.values():
            peer.access.assign(user, role)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        peer_id: Optional[str] = None,
        engine: str = DEFAULT_ENGINE,
        user: Optional[str] = None,
    ) -> QueryExecution:
        """Submit a query at ``peer_id`` (default: first peer).

        Handles the two §3.2/§5 failure semantics: a *rejected* query
        (Definition 2 snapshot conflict) is resubmitted with a fresh
        timestamp; an *unavailable* peer blocks the query until fail-over
        completes, charging the wait to the query's latency.
        """
        if not self.peers:
            raise BestPeerError("the network has no peers")
        if peer_id is None:
            peer_id = sorted(self.peers)[0]
        runner = self._engine(peer_id, engine)

        policy = self.config.query_retry
        blocked_s = 0.0   # time blocked on Algorithm-1 fail-over
        waited_s = 0.0    # retry backoff (sub-query and query level)
        advanced_s = 0.0  # sim-clock time the waits already advanced

        def absorb(session) -> None:
            """Fold one attempt's resilience accounting into the query's."""
            nonlocal blocked_s, waited_s, advanced_s
            waited_s += session.waited_s
            blocked_s += session.blocked_failover_s
            self.total_blocked_s += session.blocked_failover_s
            advanced_s += session.advanced_s

        for attempt in range(policy.max_attempts):
            session = self.resilience.begin_query()
            timestamp = self.clock.now
            try:
                execution = runner.execute(sql, user=user, timestamp=timestamp)
            except QueryRejectedError:
                absorb(session)
                if attempt == policy.max_attempts - 1:
                    raise
                # "it rejects the query and notifies the query processor,
                # which will terminate the query and resubmit it" — the
                # resubmission happens after the conflicting refresh, so its
                # fresh timestamp covers every peer's snapshot.
                latest_refresh = max(
                    peer.last_refresh_at for peer in self.peers.values()
                )
                if latest_refresh > self.clock.now:
                    self.clock.advance_to(latest_refresh)
                continue
            except TransientNetworkError:
                absorb(session)
                deadline = session.deadline
                if deadline is not None and deadline.exceeded(self.clock.now):
                    raise  # a blown deadline must not restart the query
                if attempt == policy.max_attempts - 1:
                    raise
                # The sub-query retry layer gave up on one partition; back
                # off and resubmit the whole query with a fresh timestamp.
                backoff = policy.backoff_s(attempt + 1, self.resilience.rng)
                self.clock.advance(backoff)
                waited_s += backoff
                advanced_s += backoff
                self.metrics.faults.retries += 1
                continue
            except (PeerUnavailableError, ReplicaUnavailableError):
                absorb(session)
                if attempt == policy.max_attempts - 1:
                    raise
                # Strong consistency: block until the bootstrap daemon has
                # failed the peer over, then retry.
                report = self.run_maintenance()
                waited = sum(event.duration_s for event in report.failovers)
                blocked_s += waited
                self.total_blocked_s += waited
                continue
            absorb(session)
            execution.latency_s += blocked_s + waited_s
            if blocked_s:
                execution.engine_details["blocked_on_failover_s"] = blocked_s
            if waited_s:
                execution.engine_details["retry_backoff_s"] = waited_s
            # Waits taken through the resilience layer already advanced the
            # clock; only advance by the remainder.
            self.clock.advance(max(0.0, execution.latency_s - advanced_s))
            self.metrics.record(execution)
            self._sync_fault_counters()
            self._sync_plan_cache_counters()
            return execution
        raise BestPeerError("unreachable")  # pragma: no cover

    def attach_serving(self, config: Optional[ServingConfig] = None):
        """Put the serving front door in front of every engine.

        Returns a :class:`repro.serving.frontdoor.ServingFrontDoor` whose
        executor is this network's :meth:`execute` — admitted requests run
        through whichever engine the request names (``basic``,
        ``parallel``, ``mapreduce`` or ``adaptive``) and the per-tenant
        SLO counters land in this network's metrics registry.
        """
        # Imported lazily: repro.serving builds on repro.core, so a
        # module-level import here would be circular.
        from repro.serving.frontdoor import ServingFrontDoor

        def run(request) -> QueryExecution:
            return self.execute(
                request.sql,
                peer_id=request.peer_id,
                engine=request.engine,
                user=request.user,
            )

        self.serving = ServingFrontDoor(
            self.clock, run, config=config, metrics=self.metrics
        )
        return self.serving

    def _engine(self, peer_id: str, engine: str):
        context = self._context(peer_id)
        if engine == "basic":
            return BasicEngine(context)
        if engine == "parallel":
            return ParallelP2PEngine(context)
        if engine == "mapreduce":
            return BestPeerMapReduceEngine(context, self.mr_config)
        if engine == "adaptive":
            adaptive = self._adaptive.get(peer_id)
            if adaptive is None:
                adaptive = AdaptiveEngine(
                    context,
                    params=self.cost_params,
                    mr_config=self.mr_config,
                    statistics=self.statistics,
                )
                self._adaptive[peer_id] = adaptive
            return adaptive
        raise BestPeerError(f"unknown engine: {engine!r}")

    def _context(self, peer_id: str) -> EngineContext:
        return EngineContext(
            query_peer=self._peer(peer_id),
            peers=self.peers,
            indexer=self.indexers[peer_id],
            network=self.network,
            schemas=self.global_schemas,
            config=self.config,
            compute_model=self.compute_model,
            resilience=self.resilience,
        )

    # ------------------------------------------------------------------
    # Failures and maintenance
    # ------------------------------------------------------------------
    def crash_peer(self, peer_id: str) -> None:
        peer = self._peer(peer_id)
        self.cloud.crash_instance(peer.host)
        self.overlay.mark_offline(peer_id)

    def install_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Arm message-level fault injection for subsequent queries.

        ``plan.crash_after`` entries may name peers or their hosts; when a
        trigger fires, the named peer's instance crashes mid-query exactly
        as a machine failure would — the resilience layer then recovers it
        through the bootstrap's fail-over.  Pass ``None`` to disarm.
        """
        if plan is None:
            self.network.install_fault_plan(None)
            return

        def on_crash(target: str) -> None:
            node = self.bootstrap_cluster.node_for(target)
            if node is not None:
                self.bootstrap_cluster.crash_node(node.node_id)
                return
            for peer_id, peer in self.peers.items():
                if target in (peer_id, peer.host):
                    if peer.online and not self.network.is_partitioned(
                        peer.host
                    ):
                        self.crash_peer(peer_id)
                    return

        self.network.install_fault_plan(plan, on_crash=on_crash)

    def crash_bootstrap(self) -> None:
        """Crash the current bootstrap leader's instance."""
        self.bootstrap_cluster.crash_node(self.bootstrap_cluster.leader_id)

    def run_maintenance(self) -> MaintenanceReport:
        """One epoch of the bootstrap's Algorithm-1 daemon.

        Runs on whichever node currently leads; a dead leader is replaced
        (standby promotion) before the epoch executes.
        """
        report = self._bootstrap_op(
            lambda leader: leader.run_maintenance_epoch(self.peers)
        )
        for event in report.failovers:
            # The peer is back on a fresh instance; overlay-wise it is the
            # same logical node.
            self.overlay.mark_online(event.peer_id)
            self.metrics.record_event(
                self.clock.now,
                f"failover: {event.peer_id} {event.old_instance_id} -> "
                f"{event.new_instance_id}",
            )
        self.metrics.faults.failovers += len(report.failovers)
        return report

    def _peer_crashed(self, peer_id: str) -> bool:
        """Is this peer genuinely down (vs. a transient delivery fault)?"""
        if peer_id == BOOTSTRAP_PEER_ID:
            return not self.bootstrap_cluster.leader_available()
        peer = self.peers.get(peer_id)
        if peer is None:
            return False
        return not peer.online or self.network.is_partitioned(peer.host)

    def _failover_peer(self, peer_id: str) -> float:
        """Block on the daemon until ``peer_id`` is failed over (§3.2).

        Returns the simulated seconds the query spent blocked.  With a
        suspicion threshold above one the daemon needs several epochs to
        act; each suspected-only epoch costs one heartbeat interval.  The
        bootstrap sentinel maps to standby promotion instead: the block
        is the remainder of the dead leader's lease.
        """
        if peer_id == BOOTSTRAP_PEER_ID:
            return self.bootstrap_cluster.recover()
        blocked = 0.0
        config = self.bootstrap.daemon_config
        for _ in range(config.suspicion_threshold + 1):
            report = self.run_maintenance()
            blocked += sum(event.duration_s for event in report.failovers)
            if peer_id in report.suspected_peers:
                blocked += config.epoch_s
            if not self._peer_crashed(peer_id):
                break
        return blocked

    def configure_load_balancer(
        self, config: LoadBalancerConfig
    ) -> LoadBalancer:
        """Replace the overlay load balancer's knobs (keeps its counters)."""
        self.load_balancer = LoadBalancer(self.overlay, config)
        return self.load_balancer

    def rebalance_overlay(self) -> RebalanceReport:
        """One measured-load balancing round over the BATON overlay.

        Detects nodes whose traffic exceeds ``hot_multiple`` times the
        overlay mean, migrates index entries off them (census-gated: a
        lost or duplicated entry raises
        :class:`~repro.errors.MigrationCensusError`), repairs replicas,
        and mirrors the balancer's counters into the metrics registry.
        Call it from maintenance loops alongside :meth:`run_maintenance`.
        """
        report = self.load_balancer.rebalance()
        if report.migrations:
            self.metrics.record_event(
                self.clock.now,
                f"overlay rebalance: moved {report.entries_moved} entries "
                f"off {len(report.hot_nodes)} hot node(s), "
                f"max/mean {report.ratio_before:.2f} -> "
                f"{report.ratio_after:.2f}",
            )
        self._sync_overlay_load_stats(last_ratio=report.ratio_after)
        return report

    def _sync_overlay_load_stats(
        self, last_ratio: Optional[float] = None
    ) -> None:
        """Mirror balancer + fan-out tallies into the metrics registry."""
        stats = self.metrics.overlay_load
        balancer = self.load_balancer
        stats.rebalance_rounds = balancer.rounds
        stats.migrations = balancer.total_migrations
        stats.entries_migrated = balancer.total_entries_moved
        stats.census_checks = balancer.census_checks
        stats.fanout_reads = self.overlay.fanout_reads
        stats.failover_reads = self.overlay.failover_reads
        stats.last_max_mean_ratio = (
            last_ratio
            if last_ratio is not None
            else balancer.max_mean_ratio()
        )

    def _sync_fault_counters(self) -> None:
        """Mirror the network's injected-fault tallies into the registry."""
        stats = self.network.fault_stats
        self.metrics.faults.dropped_messages = stats.dropped_messages
        self.metrics.faults.timeouts = stats.timeouts

    def _sync_plan_cache_counters(self) -> None:
        """Mirror every peer's plan-cache tallies into the registry."""
        self.metrics.plan_cache_hits = sum(
            peer.database.plan_cache_hits for peer in self.peers.values()
        )
        self.metrics.plan_cache_misses = sum(
            peer.database.plan_cache_misses for peer in self.peers.values()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peer(self, peer_id: str) -> NormalPeer:
        peer = self.peers.get(peer_id)
        if peer is None:
            raise BestPeerError(f"unknown peer: {peer_id!r}")
        return peer
