"""32-bit Rabin fingerprinting.

The data loader "fingerprints every tuple of the tables in the two snapshots
to a unique integer. We use 32Bits Rabin fingerprinting method [18]" (§4.2).

A Rabin fingerprint treats the input as a polynomial over GF(2) and reduces
it modulo a fixed irreducible polynomial of degree 32; two byte strings get
the same fingerprint iff they are congruent mod P (collisions are possible
but astronomically unlikely at table scale).  The implementation precomputes
a byte-indexed shift table, as the classic implementations do.
"""

from __future__ import annotations

from typing import Sequence, Tuple

# x^32 + x^7 + x^3 + x^2 + 1 — an irreducible polynomial over GF(2).
# Represented without the leading x^32 term (it is implicit in the modulus).
IRREDUCIBLE_POLY = 0x0000008D
_DEGREE = 32
_MASK = (1 << _DEGREE) - 1


def _build_shift_table() -> Tuple[int, ...]:
    """table[b] = (b << 32) mod P for every byte value b."""
    table = []
    for byte in range(256):
        value = byte
        for _ in range(_DEGREE):
            carry = value >> 31
            value = (value << 1) & _MASK
            if carry:
                value ^= IRREDUCIBLE_POLY
        table.append(value)
    return tuple(table)


_SHIFT_TABLE = _build_shift_table()


def fingerprint_bytes(data: bytes) -> int:
    """The 32-bit Rabin fingerprint of a byte string."""
    value = 0
    for byte in data:
        value = ((value << 8) & _MASK) ^ byte ^ _SHIFT_TABLE[value >> 24]
    return value


def fingerprint_tuple(row: Sequence[object]) -> int:
    """Fingerprint one relational tuple.

    Values are rendered with an unambiguous, type-tagged encoding so that
    e.g. ``(1, "2")`` and ``("1", 2)`` fingerprint differently.
    """
    parts = []
    for value in row:
        if value is None:
            parts.append("N|")
        else:
            parts.append(f"{type(value).__name__}:{value!r}|")
    return fingerprint_bytes("".join(parts).encode("utf-8"))
