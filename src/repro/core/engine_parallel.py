"""The parallel P2P engine: replicated joins over a processing graph (§5.3).

Instead of shipping every qualified tuple to the query-submitting peer, each
join level runs *at the data-owner peers of the joined table*: the (small)
intermediate result is replicated to all ``t(T_i)`` owners, each of which
joins it against its local partition — the replicated-join of Fig. 4.  The
result parts stay distributed and feed the next level; the root finally
collects the (much smaller) top-level stream, aggregates and projects.

This trades network cost (the broadcast) for parallelism, exactly the
trade-off the cost model (Eq. 8) prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.execution import EngineContext, QueryExecution
from repro.core.indexer import PeerLookup
from repro.errors import BestPeerError, PeerUnavailableError
from repro.hadoopdb.driver import finalize_records
from repro.hadoopdb.sms import DistributedPlan, SmsPlanner
from repro.mapreduce.engine import records_byte_size
from repro.sim.clock import parallel_duration
from repro.sqlengine.compile import compile_predicate
from repro.sqlengine.executor import compute_aggregates
from repro.sqlengine.expr import RowLayout
from repro.sqlengine.parser import parse


@dataclass
class _StreamPart:
    """A slice of the intermediate result living at one peer."""

    peer_id: str
    rows: List[tuple]


class ParallelP2PEngine:
    """Replicated-join execution over the data-owner peers."""

    def __init__(self, context: EngineContext) -> None:
        self.context = context

    def execute(
        self,
        sql: str,
        user: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> QueryExecution:
        context = self.context
        stmt = parse(sql)
        plan = SmsPlanner(context.schemas).compile(stmt)

        lookups: Dict[str, PeerLookup] = {}
        index_hops = 0
        for local_plan in [plan.base] + [stage.right for stage in plan.joins]:
            lookup = context.indexer.locate(local_plan.table)
            lookups[local_plan.binding] = lookup
            index_hops += lookup.hops
            self._require_online(lookup.peers)

        bytes_transferred = 0
        peers_contacted: Set[str] = set()
        level_seconds: List[float] = []

        # Level L: scan the base table at its owners; parts stay local.
        # The base subquery is identical at every owner: prepare it once at
        # the first owner and ship the plan to the rest (shared schema, §4.1).
        stream: List[_StreamPart] = []
        scan_durations = []
        base_prepared: List[object] = []
        for peer_id in lookups[plan.base.binding].peers:

            def scan_one(peer_id: str = peer_id):
                owner = context.peer(peer_id)
                if not base_prepared:
                    base_prepared.append(owner.prepare_fetch(plan.base.sql))
                # The scanned parts *stay on the owner* (that is the point
                # of the replicated-join strategy); the per-part broadcast
                # in join_at_owner prices every byte when parts do move.
                execution = owner.execute_fetch(  # repro: allow[ISO002] parts stay local; the join-level broadcast prices shipping
                    plan.base.table, plan.base.sql, user=user,
                    query_timestamp=timestamp,
                    prepared=base_prepared[0],
                )
                return list(execution.result.rows), execution.seconds

            rows, scan_seconds = context.call_resilient(peer_id, scan_one)
            stream.append(_StreamPart(peer_id, rows))
            scan_durations.append(scan_seconds)
            peers_contacted.add(peer_id)
        level_seconds.append(parallel_duration(*scan_durations))
        columns = list(plan.base.columns)

        # One level per join: broadcast the stream to the owners of the new
        # table, join locally in parallel.
        for stage in plan.joins:
            owners = lookups[stage.right.binding].peers
            if not owners:
                stream = []
                columns = columns + stage.right.columns
                continue
            stream_rows = [row for part in stream for row in part.rows]
            stream_bytes = records_byte_size(stream_rows)

            left_layout = RowLayout(columns)
            left_position = left_layout.resolve(stage.left_key)
            right_layout = RowLayout(stage.right.columns)
            right_position = right_layout.resolve(stage.right_key)
            out_columns = columns + stage.right.columns
            out_layout = RowLayout(out_columns)
            # The residual predicate runs per joined row at every owner:
            # compile it once per stage instead of tree-walking per row.
            residual = (
                None
                if stage.residual is None
                else compile_predicate(stage.residual, out_layout)
            )

            join_durations = []
            new_stream: List[_StreamPart] = []
            # As with the base scan: one prepare for the stage's subquery,
            # shared by every owner of the joined table.
            stage_prepared: List[object] = []
            for peer_id in owners:
                peers_contacted.add(peer_id)

                def join_at_owner(
                    peer_id: str = peer_id,
                    stream: List[_StreamPart] = stream,
                    stage=stage,
                    residual=residual,
                    stage_prepared: List[object] = stage_prepared,
                ):
                    owner = context.peer(peer_id)
                    # Replicate the full intermediate result to this owner:
                    # one transfer per current part holder.
                    broadcast_seconds = 0.0
                    for part in stream:
                        part_bytes = records_byte_size(part.rows)
                        broadcast_seconds += context.network.transfer(
                            context.peer(part.peer_id).host,
                            owner.host,
                            part_bytes,
                        )

                    if not stage_prepared:
                        stage_prepared.append(
                            owner.prepare_fetch(stage.right.sql)
                        )
                    execution = owner.execute_fetch(
                        stage.right.table, stage.right.sql, user=user,
                        query_timestamp=timestamp,
                        prepared=stage_prepared[0],
                    )
                    local_rows = execution.result.rows

                    buckets: Dict[object, List[tuple]] = {}
                    for row in local_rows:
                        key = row[right_position]
                        if key is not None:
                            buckets.setdefault(key, []).append(row)
                    joined: List[tuple] = []
                    for left_row in stream_rows:
                        key = left_row[left_position]
                        for right_row in buckets.get(key, ()):
                            combined = left_row + right_row
                            if residual is None or residual(combined):
                                joined.append(combined)
                    join_seconds = context.compute_model.rows_seconds(
                        len(stream_rows) + len(local_rows) + len(joined),
                        owner.compute_units,
                    )
                    return joined, (
                        broadcast_seconds + execution.seconds + join_seconds
                    )

                joined, owner_seconds = context.call_resilient(
                    peer_id, join_at_owner
                )
                bytes_transferred += stream_bytes
                join_durations.append(owner_seconds)
                new_stream.append(_StreamPart(peer_id, joined))
            level_seconds.append(parallel_duration(*join_durations))
            stream = new_stream
            columns = out_columns

        # Root: collect the final stream at the query peer.
        collect_durations = []
        final_rows: List[tuple] = []
        for part in stream:
            part_bytes = records_byte_size(part.rows)

            def collect_part(part=part, part_bytes=part_bytes):
                return context.network.transfer(
                    context.peer(part.peer_id).host,
                    context.query_peer.host,
                    part_bytes,
                )

            collect_durations.append(
                context.call_resilient(part.peer_id, collect_part)
            )
            bytes_transferred += part_bytes
            final_rows.extend(part.rows)
        level_seconds.append(parallel_duration(*collect_durations))

        # Group-by level + every unassigned operator run at the root.
        if plan.aggregate is not None:
            final_rows, columns = self._aggregate(plan, final_rows, columns)
        root_seconds = context.compute_model.rows_seconds(
            len(final_rows), context.query_peer.compute_units
        )
        records, out_columns = finalize_records(plan, final_rows, columns)

        latency = (
            context.hop_cost_s(index_hops)
            + sum(level_seconds)
            + root_seconds
        )
        return QueryExecution(
            columns=out_columns,
            records=records,
            latency_s=latency,
            strategy="parallel-p2p",
            bytes_transferred=bytes_transferred,
            peers_contacted=len(peers_contacted),
            index_hops=index_hops,
            dollar_cost=context.config.pricing.basic_cost(
                bytes_transferred, latency
            ),
            engine_details={
                f"level_{i}_s": seconds
                for i, seconds in enumerate(level_seconds)
            },
        )

    # ------------------------------------------------------------------
    # Aggregation at the root
    # ------------------------------------------------------------------
    def _aggregate(
        self, plan: DistributedPlan, rows: List[tuple], columns: List[str]
    ) -> Tuple[List[tuple], List[str]]:
        aggregate = plan.aggregate
        layout = RowLayout(columns)
        groups: Dict[tuple, List[tuple]] = {}
        order: List[tuple] = []
        for row in rows:
            key = tuple(
                expr.evaluate(row, layout) for expr in aggregate.group_exprs
            )
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if not groups and not aggregate.group_exprs:
            groups[()] = []
            order.append(())
        out_rows = [
            key + compute_aggregates(aggregate.aggregates, groups[key], layout)
            for key in order
        ]
        out_columns = aggregate.group_names + [
            call.to_sql().lower() for call in aggregate.aggregates
        ]
        return out_rows, out_columns

    def _require_online(self, peer_ids: Sequence[str]) -> None:
        for peer_id in peer_ids:
            peer = self.context.peers.get(peer_id)
            if peer is None or not peer.online:
                if not self.context.ensure_peer_available(peer_id):
                    raise PeerUnavailableError(peer_id)
