"""Certificate authority for peer identity (simulated PKI).

"BestPeer++ employs the standard PKI encryption scheme ... the bootstrap
peer also acts as a certificate authority (CA) center for certifying the
identities of normal peers" (§2.2).  Real asymmetric crypto would add
nothing to the reproduction, so certificates are HMAC-style tokens over a
CA secret: unforgeable within the simulation, verifiable, revocable.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import CertificateError


@dataclass(frozen=True)
class Certificate:
    """An identity certificate issued to one peer."""

    serial: int
    peer_id: str
    issued_at: float
    signature: str

    def __str__(self) -> str:
        return f"cert#{self.serial}<{self.peer_id}>"


class CertificateAuthority:
    """Issues, verifies and revokes peer certificates."""

    def __init__(self, secret: str = "bestpeer-ca") -> None:
        self._secret = secret.encode("utf-8")
        self._serials = itertools.count(1)
        self._issued: Dict[int, Certificate] = {}
        self._revoked: Set[int] = set()

    def issue(
        self, peer_id: str, now: float = 0.0, serial: Optional[int] = None
    ) -> Certificate:
        """Issue a certificate binding ``peer_id`` to this CA.

        ``serial`` defaults to the CA's own monotone counter (standalone
        operation); an HA bootstrap passes an explicit epoch-strided
        serial from :func:`repro.core.metalog.next_serial` instead, so a
        deposed leader and its successor can never collide.
        """
        if not peer_id:
            raise CertificateError("cannot certify an empty peer id")
        if serial is None:
            serial = next(self._serials)
        elif serial in self._issued:
            raise CertificateError(f"serial already issued: {serial}")
        certificate = Certificate(
            serial=serial,
            peer_id=peer_id,
            issued_at=now,
            signature=self._sign(serial, peer_id, now),
        )
        self._issued[serial] = certificate
        return certificate

    def install(self, certificate: Certificate) -> None:
        """Adopt a certificate issued by a replica CA sharing this secret.

        Lets a standby bootstrap mirror the primary's issuances while
        tailing the metadata log: the certificate must carry a genuine
        signature under the shared secret, and its serial must not clash
        with a *different* certificate already known here.  Idempotent
        for a certificate that is already installed.
        """
        if not self.verify(certificate):
            raise CertificateError(
                f"refusing to install unverifiable certificate "
                f"{certificate}"
            )
        existing = self._issued.get(certificate.serial)
        if existing is not None and existing != certificate:
            raise CertificateError(
                f"serial clash installing {certificate}: serial "
                f"{certificate.serial} already bound to {existing}"
            )
        self._issued[certificate.serial] = certificate

    def verify(self, certificate: Certificate) -> bool:
        """True iff the certificate is genuine and not revoked."""
        if certificate.serial in self._revoked:
            return False
        expected = self._sign(
            certificate.serial, certificate.peer_id, certificate.issued_at
        )
        return hmac.compare_digest(expected, certificate.signature)

    def revoke(self, certificate: Certificate) -> None:
        """Mark a certificate invalid (peer departed or was blacklisted)."""
        if certificate.serial not in self._issued:
            raise CertificateError(
                f"cannot revoke unknown certificate {certificate}"
            )
        self._revoked.add(certificate.serial)

    def is_revoked(self, certificate: Certificate) -> bool:
        return certificate.serial in self._revoked

    def _sign(self, serial: int, peer_id: str, issued_at: float) -> str:
        message = f"{serial}|{peer_id}|{issued_at}".encode("utf-8")
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()
