"""Lease/epoch leadership for the bootstrap HA pair.

The primary bootstrap holds a time-bounded lease on a (simulated) lock
service.  Every metadata commit runs under ``ensure_leader()``, which
returns the current lease — renewing it over the priced network when it
is close to expiry — or raises :class:`~repro.errors.StaleLeaderError`
when the node can no longer prove it leads.  The epoch in the lease is
the fencing token: it is stamped into every log entry and strides the
certificate serial space, so writes from a deposed leader are rejected
by :class:`repro.core.metalog.MetadataLog` even if they reach it.

Epochs bump only when leadership actually moves (or a lease is
re-acquired after expiring), never on simple renewal, so "exactly one
leader per epoch" is an invariant the chaos harness can check directly
against :attr:`LeaseService.transitions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.config import LeaseConfig
from repro.errors import LeadershipError, NetworkError, StaleLeaderError


@dataclass(frozen=True)
class Lease:
    """A time-bounded claim to leadership under one epoch."""

    holder: str
    epoch: int
    acquired_at: float
    expires_at: float

    def valid(self, now: float) -> bool:
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)


class LeaseService:
    """Deterministic stand-in for a highly-available lock service.

    Holds at most one live lease.  ``acquire`` by a different node only
    succeeds once the current lease has expired, and bumps the epoch;
    ``renew`` extends the holder's own live lease without bumping it.
    """

    def __init__(self, config: Optional[LeaseConfig] = None) -> None:
        self.config = config or LeaseConfig()
        self.lease: Optional[Lease] = None
        self.epoch = 0
        #: Complete leadership history as (epoch, holder, acquired_at).
        self.transitions: List[Tuple[int, str, float]] = []

    def current(self, now: float) -> Optional[Lease]:
        """The live lease, or ``None`` if unheld/expired."""
        if self.lease is not None and self.lease.valid(now):
            return self.lease
        return None

    def acquire(self, node_id: str, now: float) -> Lease:
        live = self.current(now)
        if live is not None and live.holder != node_id:
            raise LeadershipError(
                f"lease held by {live.holder!r} (epoch {live.epoch}) "
                f"until t={live.expires_at}"
            )
        if live is not None:
            # Same holder re-acquiring: just extend, same epoch.
            lease = Lease(node_id, live.epoch, live.acquired_at,
                          now + self.config.duration_s)
            self.lease = lease
            return lease
        self.epoch += 1
        lease = Lease(node_id, self.epoch, now,
                      now + self.config.duration_s)
        self.lease = lease
        self.transitions.append((self.epoch, node_id, now))
        return lease

    def renew(self, node_id: str, now: float) -> Lease:
        live = self.current(now)
        if live is None or live.holder != node_id:
            raise StaleLeaderError(
                f"{node_id!r} cannot renew: lease is "
                + ("expired" if live is None else f"held by {live.holder!r}")
            )
        lease = Lease(node_id, live.epoch, live.acquired_at,
                      now + self.config.duration_s)
        self.lease = lease
        return lease


class LeadershipHandle:
    """One bootstrap node's view of its own leadership.

    ``send`` is an optional zero-argument callable that models the priced
    round trip to the lock service; a :class:`~repro.errors.NetworkError`
    from it means the service is unreachable from this node (e.g. the
    node sits on the wrong side of a partition).  While the local lease
    is still within its term the node may keep acting on it; once the
    term lapses and the service cannot be reached, the node self-fences.
    """

    def __init__(
        self,
        node_id: str,
        service: LeaseService,
        clock,
        send: Optional[Callable[[], float]] = None,
    ) -> None:
        self.node_id = node_id
        self.service = service
        self.clock = clock
        self.send = send
        self.lease: Optional[Lease] = None

    @property
    def config(self) -> LeaseConfig:
        return self.service.config

    @property
    def epoch(self) -> int:
        return self.lease.epoch if self.lease is not None else 0

    def acquire(self) -> Lease:
        """Claim (or extend) the lease; raises if someone else holds it."""
        self._rpc()
        self.lease = self.service.acquire(self.node_id, self.clock.now)
        return self.lease

    def ensure_leader(self) -> Lease:
        """Return a lease this node may commit under, or self-fence."""
        now = self.clock.now
        lease = self.lease
        if (lease is not None and lease.valid(now)
                and lease.remaining(now) > self.config.renew_margin_s):
            return lease
        try:
            self._rpc()
        except NetworkError as exc:
            if lease is not None and lease.valid(now):
                # Can't reach the service but the term hasn't lapsed:
                # the lease itself is still the proof of leadership.
                return lease
            self.lease = None
            raise StaleLeaderError(
                f"{self.node_id!r} lost its lease and cannot reach the "
                f"lock service"
            ) from exc
        # The service is reachable — it is the source of truth now.
        try:
            live = self.service.current(now)
            if live is not None and live.holder == self.node_id:
                self.lease = self.service.renew(self.node_id, now)
            else:
                self.lease = self.service.acquire(self.node_id, now)
        except LeadershipError as exc:
            self.lease = None
            raise StaleLeaderError(
                f"{self.node_id!r} is fenced: {exc}"
            ) from exc
        return self.lease

    def _rpc(self) -> None:
        if self.send is not None:
            self.send()
