"""Bloom filters for the bloom-join optimization (§5.2).

"for equi-join queries, the system employs bloom join algorithm to reduce
the volume of data transmitted through the network."

The filter is the classic bit-array + k hash functions construction; the two
properties the join relies on are (a) **no false negatives** — a matching
row is never filtered out, so bloom joins stay exact — and (b) a tunable,
small false-positive rate — a few non-matching rows may still be shipped and
are discarded by the real join.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

from repro.errors import BestPeerError


class BloomFilter:
    """A fixed-size Bloom filter over arbitrary hashable values."""

    def __init__(
        self,
        expected_keys: int,
        bits_per_key: int = 10,
        num_hashes: int = 4,
    ) -> None:
        if expected_keys < 1:
            raise BestPeerError(f"expected_keys must be >= 1: {expected_keys}")
        if bits_per_key < 1 or num_hashes < 1:
            raise BestPeerError("bits_per_key and num_hashes must be >= 1")
        self.num_bits = expected_keys * bits_per_key
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def add(self, value: object) -> None:
        for position in self._positions(value):
            self._bits |= 1 << position
        self._count += 1

    def __contains__(self, value: object) -> bool:
        return all(
            self._bits & (1 << position) for position in self._positions(value)
        )

    def update(self, values: Iterable[object]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Wire size (what the optimization actually ships)
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _positions(self, value: object) -> Iterator[int]:
        # Double hashing: h_i = h1 + i*h2, the standard k-hash construction.
        digest = hashlib.sha256(repr(value).encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits


def build_filter(
    values: Iterable[object], bits_per_key: int = 10, num_hashes: int = 4
) -> BloomFilter:
    """Build a filter sized for ``values`` (at least one slot)."""
    collected = list(values)
    bloom = BloomFilter(
        expected_keys=max(1, len(collected)),
        bits_per_key=bits_per_key,
        num_hashes=num_hashes,
    )
    bloom.update(collected)
    return bloom
