"""BestPeer++ core: the paper's primary contribution.

The package mirrors the system's decomposition (Fig. 1/Fig. 2):

* :mod:`~repro.core.bootstrap` — the provider-run bootstrap peer (§3),
* :mod:`~repro.core.peer` — the normal peer with its five components (§4):
  schema mapping, data loader, data indexer, access control, query executor,
* the executors — :mod:`~repro.core.engine_basic` (fetch-and-process, §5.2),
  :mod:`~repro.core.engine_parallel` (replicated joins, §5.3),
  :mod:`~repro.core.engine_mapreduce` (§5.4) and :mod:`~repro.core.adaptive`
  (Algorithm 2, §5.5) with the cost models of Eqs. 1-11,
* :mod:`~repro.core.network` — the one-object deployment facade.
"""

from repro.core.access_control import (
    READ,
    WRITE,
    AccessController,
    AccessRule,
    Role,
    full_access_role,
    rule,
)
from repro.core.adaptive import AdaptiveEngine, TableStatistics
from repro.core.bloom import BloomFilter, build_filter
from repro.core.bootstrap import (
    BootstrapCluster,
    BootstrapPeer,
    MaintenanceReport,
)
from repro.core.certificates import Certificate, CertificateAuthority
from repro.core.config import (
    BestPeerConfig,
    DaemonConfig,
    LANE_BULK,
    LANE_INTERACTIVE,
    LeaseConfig,
    PricingConfig,
    SERVING_LANES,
    ServingConfig,
)
from repro.core.leadership import Lease, LeadershipHandle, LeaseService
from repro.core.metalog import BootstrapState, LogEntry, MetadataLog
from repro.core.costmodel import (
    CostEstimate,
    CostParams,
    FeedbackCalibrator,
    LevelSpec,
)
from repro.core.engine_basic import BasicEngine
from repro.core.engine_mapreduce import BestPeerMapReduceEngine
from repro.core.engine_parallel import ParallelP2PEngine
from repro.core.execution import EngineContext, QueryExecution
from repro.core.fingerprint import fingerprint_bytes, fingerprint_tuple
from repro.core.histogram import Histogram
from repro.core.histogram_index import HistogramIndex
from repro.core.indexer import (
    DataIndexer,
    FULL_INDEX_POLICY,
    PartialIndexPolicy,
    PeerLookup,
)
from repro.core.instance_mapping import InstanceMatcher, InstanceMatchResult
from repro.core.metrics import (
    BoundedSamples,
    EngineMetrics,
    FaultCounters,
    LaneServingStats,
    MetricsRegistry,
)
from repro.core.loader import DataLoader, SnapshotDelta, snapshot_diff
from repro.core.online_aggregation import (
    OnlineEstimate,
    OnlineSumAggregator,
    online_aggregate,
)
from repro.core.network import BestPeerNetwork
from repro.core.peer import NormalPeer
from repro.core.processing_graph import ProcessingGraph
from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceContext,
    ResilienceSession,
    RetryPolicy,
)
from repro.core.schema_mapping import (
    MappingTemplate,
    SchemaMapping,
    TableMapping,
    identity_mapping,
)

__all__ = [
    "BestPeerNetwork",
    "BestPeerConfig",
    "DaemonConfig",
    "PricingConfig",
    "BootstrapPeer",
    "BootstrapCluster",
    "MaintenanceReport",
    "LeaseConfig",
    "Lease",
    "LeaseService",
    "LeadershipHandle",
    "MetadataLog",
    "LogEntry",
    "BootstrapState",
    "NormalPeer",
    "QueryExecution",
    "EngineContext",
    "BasicEngine",
    "ParallelP2PEngine",
    "BestPeerMapReduceEngine",
    "AdaptiveEngine",
    "TableStatistics",
    "CostParams",
    "CostEstimate",
    "LevelSpec",
    "FeedbackCalibrator",
    "ProcessingGraph",
    "Histogram",
    "HistogramIndex",
    "InstanceMatcher",
    "InstanceMatchResult",
    "DataIndexer",
    "PeerLookup",
    "PartialIndexPolicy",
    "FULL_INDEX_POLICY",
    "MetricsRegistry",
    "EngineMetrics",
    "FaultCounters",
    "BoundedSamples",
    "LaneServingStats",
    "ServingConfig",
    "SERVING_LANES",
    "LANE_INTERACTIVE",
    "LANE_BULK",
    "RetryPolicy",
    "CircuitBreaker",
    "Deadline",
    "ResilienceContext",
    "ResilienceSession",
    "DataLoader",
    "SnapshotDelta",
    "snapshot_diff",
    "OnlineEstimate",
    "OnlineSumAggregator",
    "online_aggregate",
    "SchemaMapping",
    "TableMapping",
    "MappingTemplate",
    "identity_mapping",
    "Role",
    "AccessRule",
    "AccessController",
    "rule",
    "full_access_role",
    "READ",
    "WRITE",
    "Certificate",
    "CertificateAuthority",
    "BloomFilter",
    "build_filter",
    "fingerprint_bytes",
    "fingerprint_tuple",
]
