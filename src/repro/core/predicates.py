"""Predicate-bound extraction shared by the engines and the planner.

Turns a statement's WHERE conjuncts into per-table ``(column, low, high)``
constraints; the basic engine feeds them to the range index (§4.3) and the
adaptive planner feeds them to the histograms (§5.1) for selectivity
estimation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sqlengine.expr import Between, BinaryOp, ColumnRef, Expr, Literal
from repro.sqlengine.planner import _normalize_comparison
from repro.sqlengine.schema import TableSchema


def range_constraint(
    schema: TableSchema, conjuncts: List[Expr]
) -> Optional[Tuple[str, object, object]]:
    """The first ``col <op> literal`` constraint over ``schema``'s columns.

    Returns ``(column, low, high)`` with open sides as ``None``, or ``None``
    when no conjunct constrains a column of this table.
    """
    for conjunct in conjuncts:
        if isinstance(conjunct, Between) and not conjunct.negated:
            if (
                isinstance(conjunct.operand, ColumnRef)
                and isinstance(conjunct.low, Literal)
                and isinstance(conjunct.high, Literal)
            ):
                column = conjunct.operand.name.rsplit(".", 1)[-1].lower()
                if schema.has_column(column):
                    return column, conjunct.low.value, conjunct.high.value
        if not isinstance(conjunct, BinaryOp):
            continue
        column, literal, op = _normalize_comparison(conjunct)
        if column is None or not schema.has_column(column):
            continue
        if op == "=":
            return column, literal, literal
        if op in ("<", "<="):
            return column, None, literal
        if op in (">", ">="):
            return column, literal, None
    return None
