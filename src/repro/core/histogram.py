"""Multi-dimensional histograms (MHIST) with iDistance bucket mapping (§5.1).

"Since attributes in a relation are correlated, single-dimensional
histograms are not sufficient ... BestPeer++ adopts MHIST [17] to build
multi-dimensional histograms adaptively. Each normal peer invokes MHIST to
iteratively split the attribute which is most valuable for building
histograms until enough histogram buckets are generated. Then, the buckets
(multi-dimensional hypercube) are mapped into one dimensional ranges using
iDistance [12] and we index the buckets in BATON based on their ranges."

The module provides:

* :class:`Histogram` — MHIST-style construction plus the paper's three
  estimators: relation size ES(R), region count EC(H, Q_R), and pairwise
  join result size ES(q),
* :func:`idistance_key` — the hypercube -> 1-D mapping for BATON indexing.
"""

from __future__ import annotations

import datetime
import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BestPeerError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


def numeric_value(value: object) -> Optional[float]:
    """Map a column value onto the histogram's numeric axis.

    Numbers pass through; ISO dates (the engine's DATE representation) map
    to their ordinal day number so date histograms and date query regions
    work; everything else (free text, NULL) is not histogrammable and
    yields ``None``.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str) and _DATE_RE.match(value):
        return float(datetime.date.fromisoformat(value).toordinal())
    return None


@dataclass
class Bucket:
    """One histogram bucket: a hypercube with a tuple count."""

    lows: Tuple[float, ...]
    highs: Tuple[float, ...]
    count: int

    def volume(self) -> float:
        """Area(H_i): the region covered by the bucket."""
        volume = 1.0
        for low, high in zip(self.lows, self.highs):
            volume *= max(high - low, 0.0)
        return volume

    def overlap_volume(
        self, query_lows: Sequence[Optional[float]],
        query_highs: Sequence[Optional[float]],
    ) -> float:
        """Area_o(H_i, Q_R): overlap between the bucket and the query region."""
        volume = 1.0
        for low, high, query_low, query_high in zip(
            self.lows, self.highs, query_lows, query_highs
        ):
            effective_low = low if query_low is None else max(low, query_low)
            effective_high = high if query_high is None else min(high, query_high)
            width = effective_high - effective_low
            if width <= 0:
                return 0.0
            volume *= width
        return volume

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(
            low <= value <= high
            for low, high, value in zip(self.lows, self.highs, point)
        )

    def center(self) -> Tuple[float, ...]:
        return tuple(
            (low + high) / 2.0 for low, high in zip(self.lows, self.highs)
        )


class Histogram:
    """An MHIST multi-dimensional histogram over numeric columns."""

    def __init__(
        self, columns: Sequence[str], buckets: List[Bucket]
    ) -> None:
        if not columns:
            raise BestPeerError("a histogram needs at least one column")
        self.columns = [column.lower() for column in columns]
        self.buckets = buckets

    # ------------------------------------------------------------------
    # Construction (MHIST: iterative splitting of the most valuable bucket)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        columns: Sequence[str],
        rows: Sequence[Sequence[float]],
        num_buckets: int = 16,
    ) -> "Histogram":
        """Build an MHIST histogram from ``rows`` of numeric column values.

        Starting from one bucket covering the bounding box, repeatedly split
        the bucket holding the most tuples along its highest-spread dimension
        at the median, "until enough histogram buckets are generated".
        """
        if num_buckets < 1:
            raise BestPeerError(f"need at least one bucket: {num_buckets}")
        columns = [column.lower() for column in columns]
        points = []
        for row in rows:
            converted = tuple(numeric_value(value) for value in row)
            if all(value is not None for value in converted):
                points.append(converted)
        if not points:
            zero = tuple(0.0 for _ in columns)
            return cls(columns, [Bucket(zero, zero, 0)])

        dimensions = len(columns)
        lows = tuple(min(point[d] for point in points) for d in range(dimensions))
        highs = tuple(max(point[d] for point in points) for d in range(dimensions))
        # Working state: (bucket, member points).
        working: List[Tuple[Bucket, List[tuple]]] = [
            (Bucket(lows, highs, len(points)), points)
        ]

        while len(working) < num_buckets:
            candidate_index = max(
                range(len(working)), key=lambda i: working[i][0].count
            )
            bucket, members = working[candidate_index]
            split = cls._split_bucket(bucket, members)
            if split is None:
                break  # nothing left to split (all points identical)
            working[candidate_index : candidate_index + 1] = split
        return cls(columns, [bucket for bucket, _ in working])

    @staticmethod
    def _split_bucket(
        bucket: Bucket, members: List[tuple]
    ) -> Optional[List[Tuple[Bucket, List[tuple]]]]:
        """Split at the median of the most-spread dimension, MaxDiff style."""
        dimensions = len(bucket.lows)
        best_dimension = None
        best_spread = 0.0
        for dimension in range(dimensions):
            values = [point[dimension] for point in members]
            spread = max(values) - min(values)
            if spread > best_spread:
                best_spread = spread
                best_dimension = dimension
        if best_dimension is None:
            return None
        values = sorted(point[best_dimension] for point in members)
        median = values[len(values) // 2]
        if median == values[0]:
            # Degenerate median; split just above the minimum instead.
            above = [v for v in values if v > median]
            if not above:
                return None
            median = above[0]
        left_members = [p for p in members if p[best_dimension] < median]
        right_members = [p for p in members if p[best_dimension] >= median]
        if not left_members or not right_members:
            return None
        left_highs = list(bucket.highs)
        left_highs[best_dimension] = median
        right_lows = list(bucket.lows)
        right_lows[best_dimension] = median
        return [
            (
                Bucket(bucket.lows, tuple(left_highs), len(left_members)),
                left_members,
            ),
            (
                Bucket(tuple(right_lows), bucket.highs, len(right_members)),
                right_members,
            ),
        ]

    # ------------------------------------------------------------------
    # Estimators (§5.1)
    # ------------------------------------------------------------------
    def relation_size(self) -> int:
        """ES(R) = Σ_i H(R)_i."""
        return sum(bucket.count for bucket in self.buckets)

    def region_count(
        self,
        lows: Dict[str, Optional[float]] = None,
        highs: Dict[str, Optional[float]] = None,
    ) -> float:
        """EC(H(R)) = Σ_i H(R)_i · Area_o(H_i, Q_R) / Area(H_i).

        Bounds may be numbers or ISO date strings (converted like the data).
        """
        query_lows = [
            numeric_value((lows or {}).get(column)) for column in self.columns
        ]
        query_highs = [
            numeric_value((highs or {}).get(column)) for column in self.columns
        ]
        total = 0.0
        for bucket in self.buckets:
            area = bucket.volume()
            if area <= 0.0:
                # A degenerate (point) bucket is inside the region iff its
                # corner satisfies the constraints.
                inside = all(
                    (ql is None or value >= ql) and (qh is None or value <= qh)
                    for value, ql, qh in zip(bucket.lows, query_lows, query_highs)
                )
                total += bucket.count if inside else 0
                continue
            overlap = bucket.overlap_volume(query_lows, query_highs)
            total += bucket.count * (overlap / area)
        return total

    def selectivity(
        self,
        lows: Dict[str, Optional[float]] = None,
        highs: Dict[str, Optional[float]] = None,
    ) -> float:
        """Fraction of tuples inside the query region (g(i) in Table 3)."""
        size = self.relation_size()
        if size == 0:
            return 0.0
        return min(1.0, self.region_count(lows, highs) / size)


def estimate_join_size(
    left: Histogram,
    right: Histogram,
    query_widths: Sequence[float],
    left_lows: Dict[str, Optional[float]] = None,
    left_highs: Dict[str, Optional[float]] = None,
    right_lows: Dict[str, Optional[float]] = None,
    right_highs: Dict[str, Optional[float]] = None,
) -> float:
    """ES(q) = EC(H(R_x)) · EC(H(R_y)) / Π_i W_i   (§5.1).

    ``query_widths`` are the widths W_i of the queried region per join
    dimension.
    """
    if any(width <= 0 for width in query_widths):
        raise BestPeerError("query region widths must be positive")
    numerator = left.region_count(left_lows, left_highs) * right.region_count(
        right_lows, right_highs
    )
    denominator = 1.0
    for width in query_widths:
        denominator *= width
    return numerator / denominator


# ----------------------------------------------------------------------
# iDistance mapping (§5.1: buckets -> one-dimensional ranges)
# ----------------------------------------------------------------------
def idistance_key(
    point: Sequence[float],
    reference_points: Sequence[Sequence[float]],
    partition_width: float = 1.0,
) -> float:
    """Map a point to its iDistance key.

    iDistance assigns each point to its nearest reference point ``O_j`` and
    keys it as ``j · c + dist(point, O_j)`` where ``c`` (the partition
    width) exceeds any intra-partition distance — giving every partition a
    disjoint one-dimensional range.
    """
    if not reference_points:
        raise BestPeerError("iDistance needs at least one reference point")
    best_index = 0
    best_distance = math.inf
    for index, reference in enumerate(reference_points):
        distance = math.dist(point, reference)
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index * partition_width + best_distance


def bucket_idistance_ranges(
    histogram: Histogram,
    reference_points: Sequence[Sequence[float]],
    partition_width: float = 1.0,
) -> List[Tuple[float, Bucket]]:
    """The 1-D key of every bucket (by its center), for BATON indexing."""
    return [
        (
            idistance_key(bucket.center(), reference_points, partition_width),
            bucket,
        )
        for bucket in histogram.buckets
    ]
