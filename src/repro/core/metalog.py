"""Write-ahead metadata log for the bootstrap peer (§3 made survivable).

The paper's bootstrap peer is the network's administrator: membership,
certificates, the global schema, roles, the user registry and the
fail-over daemon's bookkeeping all live on it.  PRs 1-3 made *normal*
peers survive faults; this module is the first half of doing the same for
the bootstrap itself.  Every metadata mutation becomes a typed record
appended to a :class:`MetadataLog` and applied through the single
deterministic :func:`apply` reducer, so

* a standby bootstrap that receives the same entries reconstructs the
  exact same :class:`BootstrapState` (promotion = replay),
* every entry carries the epoch of the leader that wrote it — the log
  refuses appends from a stale epoch, the second fence behind the lease
  protocol of :mod:`repro.core.leadership`, and
* certificate serials are strided by epoch, so two leaders that were ever
  alive under different epochs can never issue the same serial.

The reducer is the *only* place bootstrap metadata may be mutated;
analysis rule RES002 enforces that project-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.access_control import Role
from repro.core.certificates import Certificate
from repro.errors import (
    BestPeerError,
    CertificateError,
    MembershipError,
    StaleLeaderError,
)

#: Serial-number stride per epoch: serials issued under epoch ``e`` lie in
#: ``(e * SERIAL_STRIDE, (e + 1) * SERIAL_STRIDE]``, so serials from
#: different epochs are disjoint by construction (split-brain safe).
SERIAL_STRIDE = 1_000_000


@dataclass
class PeerRecord:
    """Bookkeeping for one admitted peer."""

    peer_id: str
    certificate: Certificate
    instance_id: str


# ----------------------------------------------------------------------
# Typed log records (one per kind of metadata mutation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemaRegistered:
    """A global-schema table definition entered the shared catalog."""

    name: str
    schema: object

    def describe(self) -> str:
        return f"schema:{self.name}"


@dataclass(frozen=True)
class RoleDefined:
    role: Role

    def describe(self) -> str:
        return f"role:{self.role.name}"


@dataclass(frozen=True)
class UserRegistered:
    user: str
    origin_peer_id: str

    def describe(self) -> str:
        return f"user:{self.user}@{self.origin_peer_id}"


@dataclass(frozen=True)
class PeerAdmitted:
    peer_id: str
    certificate: Certificate
    instance_id: str

    def describe(self) -> str:
        return (
            f"admit:{self.peer_id}:serial={self.certificate.serial}"
            f":instance={self.instance_id}"
        )


@dataclass(frozen=True)
class PeerDeparted:
    peer_id: str

    def describe(self) -> str:
        return f"depart:{self.peer_id}"


@dataclass(frozen=True)
class FailoverStarted:
    """Algorithm 1 declared a peer failed; its replacement is in flight."""

    peer_id: str
    old_instance_id: str

    def describe(self) -> str:
        return f"failover-start:{self.peer_id}:{self.old_instance_id}"


@dataclass(frozen=True)
class FailoverCompleted:
    peer_id: str
    old_instance_id: str
    new_instance_id: str

    def describe(self) -> str:
        return (
            f"failover-done:{self.peer_id}"
            f":{self.old_instance_id}->{self.new_instance_id}"
        )


@dataclass(frozen=True)
class BlacklistReleased:
    """Epoch-end release of blacklisted instances (resources reclaimed)."""

    instance_ids: Tuple[str, ...]

    def describe(self) -> str:
        return f"release:{','.join(self.instance_ids)}"


MetaRecord = Union[
    SchemaRegistered,
    RoleDefined,
    UserRegistered,
    PeerAdmitted,
    PeerDeparted,
    FailoverStarted,
    FailoverCompleted,
    BlacklistReleased,
]


@dataclass(frozen=True)
class LogEntry:
    """One committed record: 1-based index, writer's epoch, the record."""

    index: int
    epoch: int
    record: MetaRecord

    def nbytes(self, base_bytes: int) -> int:
        """Priced size when shipped to the standby (stable, repr-free)."""
        return base_bytes + len(self.record.describe())


class MetadataLog:
    """An append-only, epoch-fenced sequence of :class:`LogEntry`.

    Appends must carry an epoch no older than the newest entry — a stale
    leader whose epoch was superseded cannot extend the log even if it
    somehow bypassed the lease check.
    """

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def last_epoch(self) -> int:
        return self.entries[-1].epoch if self.entries else 0

    def append(self, record: MetaRecord, epoch: int) -> LogEntry:
        if epoch < self.last_epoch:
            raise StaleLeaderError(
                f"append at epoch {epoch} refused: log is at epoch "
                f"{self.last_epoch}"
            )
        entry = LogEntry(index=len(self.entries) + 1, epoch=epoch,
                         record=record)
        self.entries.append(entry)
        return entry

    def receive(self, entry: LogEntry) -> LogEntry:
        """Adopt an entry shipped by the leader (standby tailing the log)."""
        if entry.epoch < self.last_epoch:
            raise StaleLeaderError(
                f"replicated entry at epoch {entry.epoch} refused: log is "
                f"at epoch {self.last_epoch}"
            )
        if entry.index != len(self.entries) + 1:
            raise BestPeerError(
                f"log gap: expected entry {len(self.entries) + 1}, "
                f"got {entry.index}"
            )
        self.entries.append(entry)
        return entry

    def entries_since(self, length: int) -> List[LogEntry]:
        """Entries a follower whose log has ``length`` entries is missing."""
        return list(self.entries[length:])

    def fingerprint(self) -> Tuple:
        """Hashable digest for bit-for-bit determinism comparisons."""
        return tuple(
            (entry.index, entry.epoch, entry.record.describe())
            for entry in self.entries
        )


# ----------------------------------------------------------------------
# The state every entry folds into, and the single reducer
# ----------------------------------------------------------------------
@dataclass
class BootstrapState:
    """Everything the bootstrap is authoritative for, WAL-materialized."""

    schemas: Dict[str, object] = field(default_factory=dict)
    roles: Dict[str, Role] = field(default_factory=dict)
    user_registry: Dict[str, str] = field(default_factory=dict)
    peers: Dict[str, PeerRecord] = field(default_factory=dict)
    blacklist: List[PeerRecord] = field(default_factory=list)
    # serial -> peer it was issued to (duplicate-serial detection).
    serials: Dict[int, str] = field(default_factory=dict)
    # peer -> epoch under which it was admitted (split-brain detection).
    admission_epochs: Dict[str, int] = field(default_factory=dict)
    # peer -> old instance of a fail-over that has started but not
    # completed; a promoted standby finishes these first.
    pending_failovers: Dict[str, str] = field(default_factory=dict)


def apply(state: BootstrapState, entry: LogEntry) -> None:
    """Fold one log entry into the state.  The ONLY metadata mutator.

    Deterministic and side-effect-free beyond ``state`` itself, so a
    standby replaying the same entries reaches the identical state.
    Raises on records that violate admission/serial invariants — a fenced
    split-brain write is rejected here even if it reached the log.
    """
    record = entry.record
    if isinstance(record, SchemaRegistered):
        _apply_schema(state, record)
    elif isinstance(record, RoleDefined):
        state.roles[record.role.name] = record.role
    elif isinstance(record, UserRegistered):
        state.user_registry[record.user] = record.origin_peer_id
    elif isinstance(record, PeerAdmitted):
        _apply_admitted(state, entry, record)
    elif isinstance(record, PeerDeparted):
        _apply_departed(state, record)
    elif isinstance(record, FailoverStarted):
        _apply_failover_started(state, record)
    elif isinstance(record, FailoverCompleted):
        _apply_failover_completed(state, record)
    elif isinstance(record, BlacklistReleased):
        _apply_blacklist_released(state, record)
    else:  # pragma: no cover - the MetaRecord union is closed
        raise BestPeerError(f"unknown metadata record: {record!r}")


def _apply_schema(state: BootstrapState, record: SchemaRegistered) -> None:
    if record.name in state.schemas:
        raise BestPeerError(
            f"global table already registered: {record.name!r}"
        )
    state.schemas[record.name] = record.schema


def _apply_admitted(
    state: BootstrapState, entry: LogEntry, record: PeerAdmitted
) -> None:
    if record.peer_id in state.peers:
        raise MembershipError(f"peer already joined: {record.peer_id!r}")
    if record.peer_id in state.admission_epochs:
        raise MembershipError(
            f"peer {record.peer_id!r} was already admitted under epoch "
            f"{state.admission_epochs[record.peer_id]}"
        )
    if any(held.peer_id == record.peer_id for held in state.blacklist):
        raise MembershipError(f"peer is blacklisted: {record.peer_id!r}")
    serial = record.certificate.serial
    if serial in state.serials:
        raise CertificateError(
            f"duplicate certificate serial {serial}: already issued to "
            f"{state.serials[serial]!r}"
        )
    state.peers[record.peer_id] = PeerRecord(
        peer_id=record.peer_id,
        certificate=record.certificate,
        instance_id=record.instance_id,
    )
    state.serials[serial] = record.peer_id
    state.admission_epochs[record.peer_id] = entry.epoch


def _apply_departed(state: BootstrapState, record: PeerDeparted) -> None:
    member = state.peers.pop(record.peer_id, None)
    if member is None:
        raise MembershipError(f"unknown peer: {record.peer_id!r}")
    state.pending_failovers.pop(record.peer_id, None)
    state.blacklist.append(member)


def _apply_failover_started(
    state: BootstrapState, record: FailoverStarted
) -> None:
    if record.peer_id not in state.peers:
        raise MembershipError(
            f"cannot fail over unknown peer: {record.peer_id!r}"
        )
    state.pending_failovers[record.peer_id] = record.old_instance_id


def _apply_failover_completed(
    state: BootstrapState, record: FailoverCompleted
) -> None:
    member = state.peers.get(record.peer_id)
    if member is None:
        raise MembershipError(
            f"cannot complete fail-over of unknown peer: {record.peer_id!r}"
        )
    state.pending_failovers.pop(record.peer_id, None)
    state.blacklist.append(
        PeerRecord(
            record.peer_id, member.certificate, record.old_instance_id
        )
    )
    member.instance_id = record.new_instance_id


def _apply_blacklist_released(
    state: BootstrapState, record: BlacklistReleased
) -> None:
    released = set(record.instance_ids)
    state.blacklist = [
        held for held in state.blacklist
        if held.instance_id not in released
    ]


def replay(entries: Iterable[LogEntry]) -> BootstrapState:
    """Materialize a fresh state from scratch (standby promotion path)."""
    state = BootstrapState()
    for entry in entries:
        apply(state, entry)
    return state


def next_serial(state: BootstrapState, epoch: int) -> int:
    """The next epoch-strided certificate serial.

    Derived deterministically from the materialized state, so a promoted
    standby continues the sequence exactly where its log left off.
    """
    floor = epoch * SERIAL_STRIDE
    ceiling = floor + SERIAL_STRIDE
    in_epoch = [
        serial for serial in state.serials if floor < serial <= ceiling
    ]
    serial = (max(in_epoch) if in_epoch else floor) + 1
    if serial > ceiling:
        raise CertificateError(
            f"epoch {epoch} exhausted its serial range at {ceiling}"
        )
    return serial
