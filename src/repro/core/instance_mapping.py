"""Instance-level schema matching (§4.1).

"Besides schema-level mapping, BestPeer++ can also support instance-level
mapping [19], which complements the mapping process when there is not
sufficient schema information."

Given sample rows of an unlabelled local table and samples of the global
tables, the matcher scores every (local column, global column) pair by how
compatible their *values* are — exact-value overlap for discrete data,
range overlap for numeric data, plus a type-compatibility gate — and emits
the best one-to-one assignment as a ready-to-review
:class:`~repro.core.schema_mapping.TableMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schema_mapping import TableMapping
from repro.errors import SchemaMappingError
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.types import ColumnType


@dataclass
class ColumnMatch:
    """One scored candidate correspondence."""

    local_column: str
    global_column: str
    score: float


@dataclass
class InstanceMatchResult:
    """The inferred mapping plus its evidence, for human review."""

    global_table: str
    mapping: TableMapping
    matches: List[ColumnMatch]
    unmatched_local: List[str]

    @property
    def confidence(self) -> float:
        if not self.matches:
            return 0.0
        return sum(match.score for match in self.matches) / len(self.matches)


def _value_profile(values: Sequence[object]):
    """Summarize a column sample: (kind, subkind, distinct set, min, max)."""
    non_null = [value for value in values if value is not None]
    if not non_null:
        return ("empty", "", set(), None, None)
    if all(isinstance(value, (int, float)) and not isinstance(value, bool)
           for value in non_null):
        subkind = "int" if all(
            isinstance(value, int) for value in non_null
        ) else "float"
        return (
            "numeric",
            subkind,
            set(non_null),
            min(non_null),
            max(non_null),
        )
    return ("text", "", {str(value) for value in non_null}, None, None)


def _pair_score(local_profile, global_profile) -> float:
    """Similarity of two column samples in [0, 1]."""
    local_kind, local_sub, local_values, local_low, local_high = local_profile
    global_kind, global_sub, global_values, global_low, global_high = (
        global_profile
    )
    if "empty" in (local_kind, global_kind):
        return 0.0
    if local_kind != global_kind:
        return 0.0
    # Jaccard overlap of distinct values catches identifiers and categories.
    intersection = len(local_values & global_values)
    union = len(local_values | global_values)
    jaccard = intersection / union if union else 0.0
    if local_kind == "text":
        return jaccard
    # Numeric columns: combine value overlap with range overlap, so columns
    # sampled from the same distribution still match when exact values miss.
    span = max(local_high, global_high) - min(local_low, global_low)
    if span <= 0:
        range_overlap = 1.0 if local_low == global_low else 0.0
    else:
        covered = min(local_high, global_high) - max(local_low, global_low)
        range_overlap = max(0.0, covered) / span
    score = 0.5 * jaccard + 0.5 * range_overlap
    if local_sub != global_sub:
        # Penalize int-vs-float mismatches so a float column prefers float
        # targets when overlap scores tie (IDs stay with IDs).
        score *= 0.75
    return score


class InstanceMatcher:
    """Infers local->global column mappings from data samples."""

    def __init__(
        self,
        global_schemas: Dict[str, TableSchema],
        min_score: float = 0.1,
        sample_limit: int = 200,
    ) -> None:
        if not 0 <= min_score <= 1:
            raise SchemaMappingError(f"min_score must be in [0, 1]: {min_score}")
        self._global_schemas = {
            name.lower(): schema for name, schema in global_schemas.items()
        }
        self.min_score = min_score
        self.sample_limit = sample_limit
        # global table -> {column -> profile}
        self._profiles: Dict[str, Dict[str, tuple]] = {}

    # ------------------------------------------------------------------
    # Reference samples
    # ------------------------------------------------------------------
    def register_global_sample(
        self, global_table: str, rows: Sequence[Sequence[object]]
    ) -> None:
        """Provide sample rows of one global table (schema column order)."""
        schema = self._global_schemas.get(global_table.lower())
        if schema is None:
            raise SchemaMappingError(
                f"global schema has no table {global_table!r}"
            )
        sample = list(rows)[: self.sample_limit]
        profiles = {}
        for position, column in enumerate(schema.columns):
            profiles[column.name] = _value_profile(
                [row[position] for row in sample]
            )
        self._profiles[schema.name] = profiles

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
        global_table: Optional[str] = None,
    ) -> InstanceMatchResult:
        """Infer the mapping for one local table from its data.

        With ``global_table=None`` the best-scoring registered global table
        is chosen automatically.
        """
        if not self._profiles:
            raise SchemaMappingError(
                "no global samples registered; call register_global_sample()"
            )
        sample = list(rows)[: self.sample_limit]
        local_profiles = {
            column: _value_profile([row[index] for row in sample])
            for index, column in enumerate(local_columns)
        }
        candidates = (
            [global_table.lower()] if global_table is not None
            else sorted(self._profiles)
        )
        best: Optional[InstanceMatchResult] = None
        for candidate in candidates:
            if candidate not in self._profiles:
                raise SchemaMappingError(
                    f"no sample registered for global table {candidate!r}"
                )
            result = self._match_against(
                local_table, local_columns, local_profiles, candidate
            )
            if best is None or result.confidence > best.confidence:
                best = result
        return best

    def _match_against(
        self,
        local_table: str,
        local_columns: Sequence[str],
        local_profiles: Dict[str, tuple],
        global_table: str,
    ) -> InstanceMatchResult:
        global_profiles = self._profiles[global_table]
        scored: List[ColumnMatch] = []
        for local_column in local_columns:
            for global_column, global_profile in global_profiles.items():
                score = _pair_score(
                    local_profiles[local_column], global_profile
                )
                if score >= self.min_score:
                    scored.append(
                        ColumnMatch(local_column, global_column, score)
                    )
        # Greedy one-to-one assignment, best score first.
        scored.sort(key=lambda match: (-match.score, match.local_column,
                                       match.global_column))
        used_local = set()
        used_global = set()
        chosen: List[ColumnMatch] = []
        for match in scored:
            if match.local_column in used_local:
                continue
            if match.global_column in used_global:
                continue
            used_local.add(match.local_column)
            used_global.add(match.global_column)
            chosen.append(match)
        mapping = TableMapping(
            local_table=local_table,
            global_table=global_table,
            column_map={
                match.local_column: match.global_column for match in chosen
            },
        )
        return InstanceMatchResult(
            global_table=global_table,
            mapping=mapping,
            matches=chosen,
            unmatched_local=[
                column for column in local_columns if column not in used_local
            ],
        )
