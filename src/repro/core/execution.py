"""Shared execution context and result types for the query engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import BestPeerConfig
from repro.core.indexer import DataIndexer
from repro.core.peer import NormalPeer
from repro.core.resilience import ResilienceContext
from repro.errors import BestPeerError
from repro.sim.compute import ComputeModel
from repro.sim.network import SimNetwork
from repro.sqlengine.schema import TableSchema


@dataclass
class EngineContext:
    """Everything an engine needs to evaluate a query from one peer."""

    query_peer: NormalPeer
    peers: Dict[str, NormalPeer]
    indexer: DataIndexer
    network: SimNetwork
    schemas: Dict[str, TableSchema]
    config: BestPeerConfig
    compute_model: ComputeModel
    resilience: Optional[ResilienceContext] = None

    def peer(self, peer_id: str) -> NormalPeer:
        peer = self.peers.get(peer_id)
        if peer is None:
            raise BestPeerError(f"unknown peer: {peer_id!r}")
        return peer

    def hop_cost_s(self, hops: int) -> float:
        """Network cost of BATON routing hops (one message per hop)."""
        config = self.network.config
        return hops * (config.latency_s + config.per_message_overhead_s)

    def call_resilient(self, peer_id: str, fn: Callable[[], object]) -> object:
        """Run a per-peer operation under the retry/breaker/fail-over layer.

        Without a resilience context (engines constructed standalone) the
        operation runs bare, preserving the original fail-fast behaviour.
        """
        if self.resilience is None:
            return fn()
        return self.resilience.call(peer_id, fn)

    def ensure_peer_available(self, peer_id: str) -> bool:
        """Recover a crashed peer before fanning a query out to it."""
        if self.resilience is None:
            return False
        return self.resilience.ensure_available(peer_id)


@dataclass
class QueryExecution:
    """The result of one distributed query plus its cost breakdown."""

    columns: List[str]
    records: List[tuple]
    latency_s: float
    strategy: str  # "single-peer" | "fetch-and-process" | "parallel-p2p" | "mapreduce"
    bytes_transferred: int = 0
    peers_contacted: int = 0
    index_hops: int = 0
    bloom_joins: int = 0
    memtable_spills: int = 0
    dollar_cost: float = 0.0
    engine_details: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def column(self, name: str) -> List[object]:
        lowered = name.lower()
        try:
            position = self.columns.index(lowered)
        except ValueError:
            raise BestPeerError(f"no output column {name!r}") from None
        return [row[position] for row in self.records]

    def scalar(self) -> object:
        if len(self.records) != 1 or len(self.records[0]) != 1:
            raise BestPeerError(
                f"scalar() needs a 1x1 result, got {len(self.records)} rows"
            )
        return self.records[0][0]


def makespan(durations: List[float], workers: int) -> float:
    """Completion time of tasks spread over ``workers`` parallel slots.

    Longest-processing-time-first greedy assignment; models the peer's pool
    of concurrent fetch threads (§6.1.2: 20 threads).
    """
    if workers < 1:
        raise BestPeerError(f"need at least one worker: {workers}")
    if not durations:
        return 0.0
    slots = [0.0] * min(workers, len(durations))
    for duration in sorted(durations, reverse=True):
        slots[slots.index(min(slots))] += duration
    return max(slots)
