"""The data loader: production system -> normal peer, with snapshot diffs.

§4.2: the loader extracts rows from the business's production system,
transforms them through the schema mapping, and stores them in the peer's
local database.  Consistency with the (continuously updated) production
system is maintained by snapshot differentials:

1. every extraction also stores a *snapshot* of the extracted data
   ("in a separate database"),
2. at refresh time a new snapshot is taken and compared with the stored one:
   every tuple is fingerprinted with 32-bit Rabin fingerprinting, both
   fingerprint tables are sorted, and a sort-merge pass reveals the changes
   (the algorithm of Garcia-Molina & Labio [8]),
3. the delta (inserts + deletes; an update is a delete-insert pair) is
   applied to the peer's MySQL database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprint import fingerprint_tuple
from repro.core.schema_mapping import SchemaMapping
from repro.errors import SchemaMappingError
from repro.sqlengine.database import Database


@dataclass
class SnapshotDelta:
    """The outcome of one differential refresh of one global table."""

    table: str
    inserted: List[tuple] = field(default_factory=list)
    deleted: List[tuple] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    @property
    def change_count(self) -> int:
        return len(self.inserted) + len(self.deleted)


def snapshot_diff(
    old_rows: Sequence[tuple], new_rows: Sequence[tuple]
) -> Tuple[List[tuple], List[tuple]]:
    """Sort-merge differential of two snapshots; returns (inserted, deleted).

    Implements the fingerprint-sort-merge algorithm of §4.2: each tuple is
    reduced to its Rabin fingerprint, both sides are sorted by fingerprint,
    and one merge pass emits the rows present on only one side.  Duplicate
    tuples are handled by multiplicity (two copies vs. one copy = one
    change).
    """
    old_sorted = sorted(
        ((fingerprint_tuple(row), row) for row in old_rows), key=_merge_key
    )
    new_sorted = sorted(
        ((fingerprint_tuple(row), row) for row in new_rows), key=_merge_key
    )
    inserted: List[tuple] = []
    deleted: List[tuple] = []
    i = j = 0
    while i < len(old_sorted) and j < len(new_sorted):
        old_key = _merge_key(old_sorted[i])
        new_key = _merge_key(new_sorted[j])
        if old_key == new_key:
            i += 1
            j += 1
        elif old_key < new_key:
            deleted.append(old_sorted[i][1])
            i += 1
        else:
            inserted.append(new_sorted[j][1])
            j += 1
    deleted.extend(row for _, row in old_sorted[i:])
    inserted.extend(row for _, row in new_sorted[j:])
    return inserted, deleted


def _merge_key(entry: Tuple[int, tuple]) -> Tuple[int, str]:
    # The fingerprint orders the merge; repr breaks (rare) collisions so the
    # merge never misclassifies two different tuples with equal fingerprints.
    return entry[0], repr(entry[1])


class DataLoader:
    """Loads and refreshes one peer's share of the corporate network data."""

    def __init__(self, database: Database, mapping: SchemaMapping) -> None:
        self.database = database
        self.mapping = mapping
        # The snapshot store ("also stored in the normal peer instance but
        # in a separate database"): global table -> last extracted rows.
        self._snapshots: Dict[str, List[tuple]] = {}

    # ------------------------------------------------------------------
    # Initial extraction
    # ------------------------------------------------------------------
    def initial_load(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> SnapshotDelta:
        """First extraction of one local table into the peer database."""
        global_table, transformed = self.mapping.transform(
            local_table, local_columns, rows
        )
        if global_table in self._snapshots:
            raise SchemaMappingError(
                f"{global_table!r} already loaded; use refresh()"
            )
        self.database.table(global_table).insert_many(transformed)
        self._snapshots[global_table] = list(transformed)
        return SnapshotDelta(global_table, inserted=list(transformed))

    # ------------------------------------------------------------------
    # Differential refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        local_table: str,
        local_columns: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> SnapshotDelta:
        """Re-extract a table and apply only the changes."""
        global_table, transformed = self.mapping.transform(
            local_table, local_columns, rows
        )
        old_snapshot = self._snapshots.get(global_table)
        if old_snapshot is None:
            raise SchemaMappingError(
                f"{global_table!r} was never loaded; use initial_load()"
            )
        inserted, deleted = snapshot_diff(old_snapshot, transformed)
        table = self.database.table(global_table)
        for row in deleted:
            # Delete exactly one occurrence (duplicates are legal in tables
            # without a primary key and the delta counts multiplicity).
            victim = next(
                (
                    row_id
                    for row_id in table.row_ids()
                    if table.row_by_id(row_id) == row
                ),
                None,
            )
            if victim is None:
                raise SchemaMappingError(
                    f"snapshot delta wants to delete a missing row from "
                    f"{global_table!r}: {row!r}"
                )
            table.delete_row(victim)
        table.insert_many(inserted)
        self._snapshots[global_table] = list(transformed)
        return SnapshotDelta(global_table, inserted=inserted, deleted=deleted)

    def snapshot_of(self, global_table: str) -> Optional[List[tuple]]:
        snapshot = self._snapshots.get(global_table.lower())
        return list(snapshot) if snapshot is not None else None

    def export_snapshots(self) -> Dict[str, List[tuple]]:
        """The whole snapshot store (for EBS backups: the snapshots live
        "in the normal peer instance but in a separate database", §4.2)."""
        return {table: list(rows) for table, rows in self._snapshots.items()}

    def restore_snapshots(self, snapshots: Dict[str, List[tuple]]) -> None:
        """Reinstall a backed-up snapshot store after fail-over recovery."""
        self._snapshots = {
            table: list(rows) for table, rows in snapshots.items()
        }
