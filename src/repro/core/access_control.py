"""Distributed role-based access control (§4.4).

Definition 1: a role is a set of rules ``(column, privileges, range)`` —
which columns a user may touch, with which privileges (read/write), and for
which value range.  Roles compose with three operators:

* ``role_b = role_a.inherit(...)``       — the ⊢ operator,
* ``role_b = role_a.minus(rule)``        — the − operator,
* ``role_b = role_a.plus(rule)``         — the + operator.

Enforcement happens *at the data owner peer*: "The peer, upon receiving the
request, will transform it based on u's access role. The data that cannot be
accessed by u will not be returned" — out-of-scope columns come back as
NULL, and readable columns with a range condition return NULL outside the
range (the paper's Role_sales example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import AccessControlError

READ = "read"
WRITE = "write"
_PRIVILEGES = frozenset({READ, WRITE})


@dataclass(frozen=True)
class AccessRule:
    """One (column, privileges, range) triple.

    ``column`` is ``table.column`` in the global schema.  ``value_range`` is
    an inclusive ``(low, high)`` pair or ``None`` for unrestricted values
    (the paper's ``null`` range).
    """

    column: str
    privileges: FrozenSet[str]
    value_range: Optional[Tuple[object, object]] = None

    def __post_init__(self) -> None:
        if "." not in self.column:
            raise AccessControlError(
                f"rule columns are qualified table.column names: "
                f"{self.column!r}"
            )
        object.__setattr__(self, "column", self.column.lower())
        bad = set(self.privileges) - _PRIVILEGES
        if bad:
            raise AccessControlError(f"unknown privileges: {sorted(bad)}")
        if not self.privileges:
            raise AccessControlError("a rule needs at least one privilege")

    def allows_value(self, value: object) -> bool:
        if self.value_range is None or value is None:
            return True
        low, high = self.value_range
        try:
            return low <= value <= high
        except TypeError:
            return False


def rule(
    column: str,
    privileges: Sequence[str] = (READ,),
    value_range: Optional[Tuple[object, object]] = None,
) -> AccessRule:
    """Convenience constructor for :class:`AccessRule`."""
    return AccessRule(column, frozenset(privileges), value_range)


class Role:
    """A named set of access rules."""

    def __init__(self, name: str, rules: Sequence[AccessRule] = ()) -> None:
        if not name:
            raise AccessControlError("a role needs a name")
        self.name = name
        self._rules: Dict[str, AccessRule] = {}
        for access_rule in rules:
            self._rules[access_rule.column] = access_rule

    @property
    def rules(self) -> List[AccessRule]:
        return list(self._rules.values())

    def rule_for(self, column: str) -> Optional[AccessRule]:
        return self._rules.get(column.lower())

    # -- the three composition operators of §4.4 -------------------------
    def inherit(self, name: str) -> "Role":
        """``Role_i ⊢ Role_j``: the new role gets all privileges of this one."""
        return Role(name, self.rules)

    def plus(self, access_rule: AccessRule, name: Optional[str] = None) -> "Role":
        """``Role_j = Role_i + (c, p, d)``."""
        derived = Role(name or self.name, self.rules)
        derived._rules[access_rule.column] = access_rule
        return derived

    def minus(self, column: str, name: Optional[str] = None) -> "Role":
        """``Role_j = Role_i − (c, p, d)``: drop the rule for ``column``."""
        lowered = column.lower()
        if lowered not in self._rules:
            raise AccessControlError(
                f"role {self.name!r} has no rule for {column!r}"
            )
        derived = Role(name or self.name, self.rules)
        del derived._rules[lowered]
        return derived

    # -- checks -----------------------------------------------------------
    def can_read(self, column: str) -> bool:
        access_rule = self.rule_for(column)
        return access_rule is not None and READ in access_rule.privileges

    def can_write(self, column: str) -> bool:
        access_rule = self.rule_for(column)
        return access_rule is not None and WRITE in access_rule.privileges


def full_access_role(name: str, schemas) -> Role:
    """A role granting read+write on every column of every schema.

    The performance benchmark creates exactly this: "a unique role R ...
    granted full access to all eight tables" (§6.1.4).
    """
    rules = []
    for schema in schemas:
        for column in schema.columns:
            rules.append(
                AccessRule(
                    f"{schema.name}.{column.name}", frozenset({READ, WRITE})
                )
            )
    return Role(name, rules)


class AccessController:
    """Per-peer enforcement point: user -> role assignment plus rewriting."""

    def __init__(self) -> None:
        self._assignments: Dict[str, Role] = {}

    def assign(self, user: str, role: Role) -> None:
        self._assignments[user] = role

    def role_of(self, user: str) -> Role:
        role = self._assignments.get(user)
        if role is None:
            raise AccessControlError(f"user {user!r} has no role at this peer")
        return role

    def has_user(self, user: str) -> bool:
        return user in self._assignments

    def rewrite_rows(
        self,
        user: str,
        table: str,
        columns: Sequence[str],
        rows: Sequence[tuple],
    ) -> List[tuple]:
        """Mask values the user's role does not permit.

        ``columns`` are the bare output column names of ``table``.  A column
        without read privilege returns NULL; a readable column with a range
        condition returns NULL outside the range (values "are marked as
        NULL", §4.4).
        """
        role = self.role_of(user)
        rules = [role.rule_for(f"{table.lower()}.{column}") for column in columns]
        readable = [
            access_rule is not None and READ in access_rule.privileges
            for access_rule in rules
        ]
        rewritten: List[tuple] = []
        for row in rows:
            values = []
            for value, ok, access_rule in zip(row, readable, rules):
                if not ok:
                    values.append(None)
                elif access_rule is not None and not access_rule.allows_value(
                    value
                ):
                    values.append(None)
                else:
                    values.append(value)
            rewritten.append(tuple(values))
        return rewritten

    def check_readable(self, user: str, table: str, columns: Sequence[str]) -> bool:
        """True iff every listed column is readable for ``user``."""
        role = self.role_of(user)
        return all(
            role.can_read(f"{table.lower()}.{column}") for column in columns
        )
