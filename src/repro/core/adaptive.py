"""Adaptive query processing (Algorithm 2, §5.5).

"When a query is submitted, the query planner retrieves related histogram
and index information from the bootstrap node, analyzes the query and
constructs a processing graph for the query. Then the costs of both the P2P
engine and MapReduce engine are predicted ... The query planner compares the
costs between two methods and executes the one with lower cost."

The estimator turns the compiled plan into the cost model's level specs:

* ``S(T_i)`` — the table's global size (bytes), summed over peers' published
  statistics,
* ``g(i)`` — the selectivity of the level's predicates, estimated from the
  table's histogram when one is registered (else a neutral default),
* ``t(T_i)`` — the number of peers hosting the table, from the table index.

A feedback loop (:class:`~repro.core.costmodel.FeedbackCalibrator`) adjusts
the per-engine network ratios from measured runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.costmodel import (
    CostEstimate,
    CostParams,
    FeedbackCalibrator,
    LevelSpec,
    estimate,
)
from repro.core.engine_basic import BasicEngine
from repro.core.engine_mapreduce import BestPeerMapReduceEngine
from repro.core.engine_parallel import ParallelP2PEngine
from repro.core.execution import EngineContext, QueryExecution
from repro.core.histogram import Histogram
from repro.core.predicates import range_constraint
from repro.core.processing_graph import ProcessingGraph
from repro.errors import BestPeerError
from repro.hadoopdb.sms import DistributedPlan, SmsPlanner
from repro.mapreduce.engine import MapReduceConfig
from repro.sqlengine.expr import Expr
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import _split_conjuncts

DEFAULT_SELECTIVITY = 0.5


@dataclass
class TableStatistics:
    """Per-table global statistics held by the statistics module."""

    table: str
    total_bytes: float
    row_count: int
    histogram: Optional[Histogram] = None


@dataclass
class AdaptiveDecision:
    """What the planner decided for one query, for inspection."""

    chosen_engine: str
    estimate: CostEstimate
    levels: List[LevelSpec]
    graph: ProcessingGraph


class AdaptiveEngine:
    """Algorithm 2: predict both engines' costs, run the cheaper one."""

    def __init__(
        self,
        context: EngineContext,
        params: Optional[CostParams] = None,
        mr_config: Optional[MapReduceConfig] = None,
        statistics: Optional[Dict[str, TableStatistics]] = None,
    ) -> None:
        self.context = context
        self.calibrator = FeedbackCalibrator(params or CostParams())
        self.statistics = statistics or {}
        self._parallel = ParallelP2PEngine(context)
        self._basic = BasicEngine(context)
        self._mapreduce = BestPeerMapReduceEngine(context, mr_config)
        self.last_decision: Optional[AdaptiveDecision] = None

    # ------------------------------------------------------------------
    # Statistics registration (fed by the bootstrap's statistics module)
    # ------------------------------------------------------------------
    def register_statistics(self, stats: TableStatistics) -> None:
        self.statistics[stats.table.lower()] = stats

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        user: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> QueryExecution:
        plan = SmsPlanner(self.context.schemas).compile(parse(sql))
        decision = self.plan_decision(plan)
        self.last_decision = decision

        if decision.chosen_engine == "p2p":
            # "The original P2P strategy executes this query by first
            # fetching all qualified tuples to the query submitting peer"
            # (§6.1.11) — the P2P choice runs the basic fetch-and-process
            # engine; the replicated-join executor remains available as the
            # explicit "parallel" engine.
            execution = self._basic.execute(sql, user, timestamp)
            predicted = decision.estimate.p2p
            engine_name = "p2p"
        else:
            execution = self._mapreduce.execute(sql, user, timestamp)
            predicted = decision.estimate.mapreduce
            engine_name = "mapreduce"

        # Feedback loop: normalize measured seconds into the model's byte
        # units via mu (bytes one node processes per second).
        measured_model_units = execution.latency_s * self.calibrator.params.mu
        self.calibrator.observe(engine_name, predicted, measured_model_units)
        execution.engine_details["predicted_p2p"] = decision.estimate.p2p
        execution.engine_details["predicted_mr"] = decision.estimate.mapreduce
        return execution

    # ------------------------------------------------------------------
    # Cost prediction
    # ------------------------------------------------------------------
    def plan_decision(self, plan: DistributedPlan) -> AdaptiveDecision:
        levels = self.levels_for(plan)
        graph = ProcessingGraph.from_plan(plan, self._partitions(plan))
        if not levels:
            # No joins and no aggregation: the P2P engine trivially wins
            # (the paper's low-overhead query class).
            return AdaptiveDecision(
                chosen_engine="p2p",
                estimate=CostEstimate(p2p=0.0, mapreduce=float("inf")),
                levels=[],
                graph=graph,
            )
        base_size = self._table_bytes(
            plan.base.table, self._where_conjuncts(plan)
        )
        costs = estimate(self.calibrator.params, levels, base_size)
        return AdaptiveDecision(
            chosen_engine=costs.cheaper_engine,
            estimate=costs,
            levels=levels,
            graph=graph,
        )

    def levels_for(self, plan: DistributedPlan) -> List[LevelSpec]:
        """Translate a compiled plan into cost-model level specs.

        The join selectivity ``g(i)`` is derived from the foreign-key join
        estimate ES(q) of §5.1: the intermediate result after joining a
        table of size S to a stream of size s carries roughly ``s + S``
        bytes (each stream row matches its FK parent / children, so bytes
        accumulate rather than multiply).  Solving ``s·S·g = s + S`` for g
        gives the per-level selectivity the literal Eq. (5) product then
        reproduces.
        """
        specs: List[LevelSpec] = []
        conjuncts = self._where_conjuncts(plan)
        stream_bytes = self._table_bytes(plan.base.table, conjuncts)
        for stage in plan.joins:
            table = stage.right.table
            table_bytes = self._table_bytes(table, conjuncts)
            joined_bytes = stream_bytes + table_bytes
            if stream_bytes > 0 and table_bytes > 1:
                selectivity = min(
                    1.0, max(1e-9, joined_bytes / (stream_bytes * table_bytes))
                )
            else:
                selectivity = DEFAULT_SELECTIVITY
            specs.append(
                LevelSpec(
                    table=table,
                    table_size=table_bytes,
                    selectivity=selectivity,
                    partitions=self._partition_count(table),
                )
            )
            stream_bytes = joined_bytes
        if plan.aggregate is not None and specs:
            # The GROUP BY level re-shuffles the last intermediate result.
            last = specs[-1]
            specs.append(
                LevelSpec(
                    table=f"groupby({last.table})",
                    table_size=1.0,
                    selectivity=1.0,
                    partitions=last.partitions,
                )
            )
        return specs

    def _where_conjuncts(self, plan: DistributedPlan) -> List[Expr]:
        if plan.statement is None or plan.statement.where is None:
            return []
        return _split_conjuncts(plan.statement.where)

    def _table_bytes(self, table: str, conjuncts: List[Expr]) -> float:
        """S(T_i), scaled by the histogram selectivity of its predicates."""
        stats = self.statistics.get(table)
        if stats is None:
            return 1.0
        size = stats.total_bytes
        if stats.histogram is not None:
            constraint = range_constraint(
                self.context.schemas[table], conjuncts
            )
            if constraint is not None:
                column, low, high = constraint
                if column in stats.histogram.columns:
                    selectivity = stats.histogram.selectivity(
                        lows={column: low}, highs={column: high}
                    )
                    size *= max(1e-6, min(1.0, selectivity))
        return max(1.0, size)

    def _partition_count(self, table: str) -> int:
        peers, _, _ = self.context.indexer.peers_for_table(table)
        return max(1, len(peers))

    def _partitions(self, plan: DistributedPlan) -> Dict[str, int]:
        tables = [plan.base.table] + [stage.right.table for stage in plan.joins]
        return {table: self._partition_count(table) for table in tables}
