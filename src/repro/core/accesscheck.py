"""The shared §4.4 pushdown gate: may a whole query run unmasked?

The access-control enforcement point is
:meth:`~repro.core.peer.NormalPeer.execute_fetch`, which rewrites every
outgoing row against the user's role before it leaves the owner.  Three
execution paths cannot route through it — the single-peer optimization
(§6.2.3) ships the *original* SQL, partial-aggregate pushdowns ship
derived values no rule can mask, and the MapReduce engine's map tasks
read raw fragments — so each of them must first prove that masking could
never have changed the answer: the user's role at **every** involved
peer grants an unrestricted ``read`` on **every** referenced column.

Centralising the proof here keeps the three engines agreeing on what
"unrestricted" means and gives the SEC001 taint rule one call-graph
anchor (``rule_for``) to find on those paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.core.access_control import READ
from repro.errors import AccessControlError

if TYPE_CHECKING:
    from repro.core.peer import NormalPeer
    from repro.hadoopdb.sms import TableLocalPlan


def _first_restriction(
    peers: Mapping[str, "NormalPeer"],
    local_plans: Iterable["TableLocalPlan"],
    peer_ids: Iterable[str],
    user: Optional[str],
) -> Optional[str]:
    """The first reason the read is restricted, or None if unrestricted."""
    if user is None:
        return None
    for local_plan in local_plans:
        table = local_plan.table
        bare_columns = [
            name.rsplit(".", 1)[-1] for name in local_plan.columns
        ]
        for peer_id in sorted(peer_ids):
            owner = peers.get(peer_id)
            if owner is None:
                return f"peer {peer_id!r} is unknown"
            if not owner.access.has_user(user):
                return f"user {user!r} does not exist at peer {peer_id!r}"
            role = owner.access.role_of(user)
            for column in bare_columns:
                access_rule = role.rule_for(f"{table}.{column}")
                if access_rule is None:
                    return (
                        f"role {role.name!r} at peer {peer_id!r} has no "
                        f"rule for {table}.{column}"
                    )
                if READ not in access_rule.privileges:
                    return (
                        f"role {role.name!r} at peer {peer_id!r} cannot "
                        f"read {table}.{column}"
                    )
                if access_rule.value_range is not None:
                    return (
                        f"role {role.name!r} at peer {peer_id!r} reads "
                        f"{table}.{column} under a value range"
                    )
    return None


def unrestricted_read(
    peers: Mapping[str, "NormalPeer"],
    local_plans: Iterable["TableLocalPlan"],
    peer_ids: Iterable[str],
    user: Optional[str],
) -> bool:
    """True when no access rewriting could change any fetched row."""
    return _first_restriction(peers, local_plans, peer_ids, user) is None


def require_unrestricted_read(
    peers: Mapping[str, "NormalPeer"],
    local_plans: Iterable["TableLocalPlan"],
    peer_ids: Iterable[str],
    user: Optional[str],
) -> None:
    """Raise :class:`AccessControlError` unless the read is unrestricted.

    Guards execution paths that bypass per-row rewriting entirely; callers
    that can fall back to a masked path should test
    :func:`unrestricted_read` instead.
    """
    reason = _first_restriction(peers, local_plans, peer_ids, user)
    if reason is not None:
        raise AccessControlError(
            f"query cannot bypass access rewriting: {reason}"
        )
