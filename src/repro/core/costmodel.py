"""The pay-as-you-go cost models (Equations 1-11, §5.2-§5.5).

Notation (Table 3): a processing graph has levels L (deepest) down to 1;
level ``i`` joins in table ``T_i`` with size ``S(T_i)``, selectivity
``g(i)`` and ``t(T_i)`` partitions.  The intermediate result entering level
``i`` has size ``s(i+1)``; the recurrence

    s(i) = s(i+1) · S(T_i) · g(i)                                   (4)

gives  s(i) = Π_{j=L..i} S(T_j) g(j)                                 (5).

The **P2P engine** (replicated join) broadcasts each level's intermediate
result to every partition of the new table:

    W_BP(i) = t(T_i) · Π_{j=L..i} S(T_j) g(j)                        (6)
    C_BP    = (α + β_BP) · Σ_i W_BP(i)                               (8)

The **MapReduce engine** (symmetric hash join) shuffles each tuple once per
level but pays a per-job constant φ:

    W_MR(i) = s(i+1) + S(T_i) + φ                                    (9)
    C_MR    = (α + β_MR) · [Σ_i Π_j S g + Σ_i S(T_i) + φ(L-1)]      (11)

"Comparing between two cost models, we can observe that table size and
query complexity are the key factors ... With more levels of join, and
larger size of tables, the query planner tends to choose the MapReduce
method."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import BestPeerError


@dataclass(frozen=True)
class CostParams:
    """Runtime parameters of the cost models (Table 3).

    ``alpha`` — local I/O cost ratio (per byte),
    ``beta_bp`` / ``beta_mr`` — network cost ratios of the two engines,
    ``gamma`` — processing-node cost per second (Eq. 1),
    ``phi`` — the constant per-job MapReduce overhead (bytes-equivalent),
    ``mu`` — bytes one processing node handles per second (Eq. 2).
    """

    alpha: float = 1e-8
    beta_bp: float = 1e-8
    beta_mr: float = 1.2e-8  # MR shuffles through disk + HTTP: slightly costlier
    gamma: float = 0.08 / 3600.0
    phi: float = 1.2e9  # ~12 s of startup at mu bytes/s
    mu: float = 1e8

    def __post_init__(self) -> None:
        for name in ("alpha", "beta_bp", "beta_mr", "gamma", "phi", "mu"):
            if getattr(self, name) < 0:
                raise BestPeerError(f"{name} must be non-negative")
        if self.mu == 0:
            raise BestPeerError("mu must be positive")


@dataclass(frozen=True)
class LevelSpec:
    """One join level, ordered from L (first) downwards.

    ``table_size`` — S(T_i) in bytes, ``selectivity`` — g(i),
    ``partitions`` — t(T_i).
    """

    table: str
    table_size: float
    selectivity: float
    partitions: int

    def __post_init__(self) -> None:
        if self.table_size < 0:
            raise BestPeerError("table size cannot be negative")
        if not 0 <= self.selectivity <= 1:
            raise BestPeerError(
                f"selectivity must be in [0, 1]: {self.selectivity}"
            )
        if self.partitions < 1:
            raise BestPeerError("a table has at least one partition")


def basic_cost(params: CostParams, nbytes: float, pricing_beta: Optional[float] = None) -> float:
    """Equation (2): C_basic = (α + β)·N + γ·N/μ."""
    if nbytes < 0:
        raise BestPeerError("byte count cannot be negative")
    beta = params.beta_bp if pricing_beta is None else pricing_beta
    return (params.alpha + beta) * nbytes + params.gamma * nbytes / params.mu


def intermediate_sizes(
    levels: Sequence[LevelSpec], base_size: float = 1.0
) -> List[float]:
    """s(i) for every level, Eq. (5): s(i) = Π_{j=L..i} S(T_j)·g(j).

    ``levels[0]`` is level L; the returned list aligns with ``levels``.
    ``base_size`` seeds the recurrence — the paper's literal form uses the
    empty product (1), which loses the size of the level-(L+1) scan feeding
    the first join; passing the filtered base-table size there makes s(i)
    track actual intermediate-result bytes.
    """
    if base_size <= 0:
        raise BestPeerError(f"base size must be positive: {base_size}")
    sizes: List[float] = []
    running = float(base_size)
    for level in levels:
        running *= level.table_size * level.selectivity
        sizes.append(running)
    return sizes


def p2p_workloads(
    levels: Sequence[LevelSpec], base_size: float = 1.0
) -> List[float]:
    """W_BP(i) per level, Eq. (6)."""
    return [
        level.partitions * size
        for level, size in zip(levels, intermediate_sizes(levels, base_size))
    ]


def p2p_cost(
    params: CostParams, levels: Sequence[LevelSpec], base_size: float = 1.0
) -> float:
    """C_BP, Eq. (8)."""
    _require_levels(levels)
    return (params.alpha + params.beta_bp) * sum(
        p2p_workloads(levels, base_size)
    )


def mapreduce_workloads(
    params: CostParams, levels: Sequence[LevelSpec], base_size: float = 1.0
) -> List[float]:
    """W_MR(i) per level, Eq. (9): s(i+1) + S(T_i) + φ."""
    sizes = intermediate_sizes(levels, base_size)
    workloads: List[float] = []
    for index, level in enumerate(levels):
        incoming = sizes[index - 1] if index > 0 else base_size
        workloads.append(incoming + level.table_size + params.phi)
    return workloads


def mapreduce_cost(
    params: CostParams, levels: Sequence[LevelSpec], base_size: float = 1.0
) -> float:
    """C_MR, Eq. (11).

    One deviation from the equation as printed: the startup constant is
    charged once *per job* (φ·L) rather than φ·(L−1).  The printed form
    gives single-job queries zero startup overhead, which contradicts the
    measured behaviour the paper itself reports ("Hadoop requires
    approximately 10-15 sec to launch all map tasks", §6.1.6) — every job,
    including the first, pays it.
    """
    _require_levels(levels)
    sizes = intermediate_sizes(levels, base_size)
    total = (
        sum(sizes)
        + sum(level.table_size for level in levels)
        + params.phi * len(levels)
    )
    return (params.alpha + params.beta_mr) * total


def _require_levels(levels: Sequence[LevelSpec]) -> None:
    if not levels:
        raise BestPeerError("cost models need at least one level")


@dataclass
class CostEstimate:
    """Both engines' predicted costs for one query."""

    p2p: float
    mapreduce: float

    @property
    def cheaper_engine(self) -> str:
        return "p2p" if self.p2p <= self.mapreduce else "mapreduce"


def estimate(
    params: CostParams, levels: Sequence[LevelSpec], base_size: float = 1.0
) -> CostEstimate:
    """Evaluate both cost models over the same processing graph."""
    return CostEstimate(
        p2p=p2p_cost(params, levels, base_size),
        mapreduce=mapreduce_cost(params, levels, base_size),
    )


class FeedbackCalibrator:
    """The statistics module's feedback loop (§5.5).

    "the statistics module is extended with a feedback-loop mechanism
    capable of adjusting the query parameter based on recently measured
    values."  After each query it compares predicted vs. measured cost and
    nudges the engine's network ratio with exponential smoothing.
    """

    def __init__(self, params: CostParams, smoothing: float = 0.3) -> None:
        if not 0 < smoothing <= 1:
            raise BestPeerError(f"smoothing must be in (0, 1]: {smoothing}")
        self.params = params
        self.smoothing = smoothing
        self.observations: List[float] = []

    def observe(self, engine: str, predicted: float, measured: float) -> CostParams:
        """Record one (predicted, measured) pair and recalibrate.

        Returns the updated :class:`CostParams`; also stored on ``params``.
        """
        if predicted <= 0 or measured <= 0:
            return self.params
        ratio = measured / predicted
        self.observations.append(ratio)
        adjust = 1.0 + self.smoothing * (ratio - 1.0)
        if engine == "p2p":
            self.params = CostParams(
                alpha=self.params.alpha,
                beta_bp=self.params.beta_bp * adjust,
                beta_mr=self.params.beta_mr,
                gamma=self.params.gamma,
                phi=self.params.phi,
                mu=self.params.mu,
            )
        elif engine == "mapreduce":
            self.params = CostParams(
                alpha=self.params.alpha,
                beta_bp=self.params.beta_bp,
                beta_mr=self.params.beta_mr * adjust,
                gamma=self.params.gamma,
                phi=self.params.phi,
                mu=self.params.mu,
            )
        else:
            raise BestPeerError(f"unknown engine: {engine!r}")
        return self.params
