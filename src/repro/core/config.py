"""BestPeer++ configuration.

Collects the tunables of §6.1.2 (MemTable capacity, concurrent fetch
threads), the pay-as-you-go pricing ratios of §5.2 (α, β, γ), and the
thresholds of the bootstrap peer's monitoring daemon (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.resilience import RetryPolicy
from repro.errors import BestPeerError

# Cross-module defaults live here, nowhere else (enforced by CFG001 in
# repro.analysis): call sites reference these names instead of re-stating
# the literal, so the default cannot silently drift between the facade,
# the console and the benchmarks.
#: Instance type a new normal peer launches on (§6.1.1 ran m1.smalls).
DEFAULT_INSTANCE_TYPE = "m1.small"
#: Query engine used when the caller doesn't pick one.
DEFAULT_ENGINE = "basic"
#: Priority lanes of the serving front door.  Interactive traffic is
#: dispatched (and protected under overload) ahead of bulk/analytics.
LANE_INTERACTIVE = "interactive"
LANE_BULK = "bulk"
SERVING_LANES = (LANE_INTERACTIVE, LANE_BULK)
#: Tenant weight used when a tenant was never explicitly registered.
DEFAULT_TENANT_WEIGHT = 1.0


@dataclass(frozen=True)
class PricingConfig:
    """Pay-as-you-go cost ratios (Equation 1).

    ``alpha`` — local disk usage ($/byte), ``beta`` — network usage
    ($/byte), ``gamma`` — processing-node rental ($/second).
    """

    alpha: float = 1e-10
    beta: float = 5e-10
    gamma: float = 0.08 / 3600.0  # an m1.small's hourly price, per second

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise BestPeerError("pricing ratios must be non-negative")

    def basic_cost(self, nbytes: int, seconds: float) -> float:
        """Equation (1): C = (α + β)·N + γ·t."""
        if nbytes < 0 or seconds < 0:
            raise BestPeerError("cost inputs must be non-negative")
        return (self.alpha + self.beta) * nbytes + self.gamma * seconds


@dataclass(frozen=True)
class BestPeerConfig:
    """Normal-peer and engine configuration."""

    # §6.1.2: "maximum memory consumed by the MemTable to be 100 MB".
    memtable_capacity_bytes: int = 100 * 1024 * 1024
    # §6.1.2: "20 concurrent threads for fetching data from remote peers".
    fetch_threads: int = 20
    # Bloom-join: equi-join optimization of §5.2.
    bloom_join_enabled: bool = True
    bloom_filter_bits_per_key: int = 10
    bloom_filter_hashes: int = 4
    # Index entry cache (§5.2: peers cache index entries in memory).
    index_cache_enabled: bool = True
    pricing: PricingConfig = field(default_factory=PricingConfig)
    # Whole-query resubmission (snapshot rejections, unrecoverable peers).
    # max_attempts=4 preserves the historical 3-retries-then-fail loop.
    query_retry: RetryPolicy = field(default_factory=RetryPolicy)
    # Sub-query fetch retries against one peer (drops, outages, timeouts).
    fetch_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8, base_backoff_s=0.02, max_backoff_s=2.0
        )
    )
    # Per-peer circuit breaker: open after this many consecutive transient
    # failures, probe again after the cooldown.
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_s: float = 30.0
    # Query-wide deadline propagated into every retry loop (None = none).
    query_deadline_s: Optional[float] = None
    # Seed for backoff jitter; fixed so chaos runs replay bit-for-bit.
    retry_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.memtable_capacity_bytes <= 0:
            raise BestPeerError("MemTable capacity must be positive")
        if self.fetch_threads < 1:
            raise BestPeerError("need at least one fetch thread")
        if self.bloom_filter_bits_per_key < 1 or self.bloom_filter_hashes < 1:
            raise BestPeerError("bloom filter parameters must be positive")
        if self.breaker_failure_threshold < 1:
            raise BestPeerError("breaker threshold must be >= 1")
        if self.breaker_reset_timeout_s < 0:
            raise BestPeerError("breaker cooldown must be non-negative")
        if self.query_deadline_s is not None and self.query_deadline_s <= 0:
            raise BestPeerError("query deadline must be positive")


@dataclass(frozen=True)
class ServingConfig:
    """The serving front door's admission/scheduling tunables.

    Every query enters the platform through a bounded per-tenant admission
    queue (one per priority lane) feeding a weighted-fair scheduler and a
    bounded worker pool.  ``queue_depth`` bounds each (tenant, lane) queue;
    a request arriving at a full queue is shed immediately with a
    retry-after hint instead of queueing forever.

    Backpressure: when the estimated queue delay (backlog drained by
    ``workers`` at the smoothed service rate) exceeds
    ``bulk_backpressure_s``, new *bulk* requests are shed while interactive
    ones still queue — the bulk lane degrades first, by design.  A request
    whose estimated start would already blow its deadline is rejected up
    front (counted as deadline-missed), and admitted requests whose
    deadline expires while queued are dropped at dispatch time rather than
    wasting a worker.
    """

    #: Size of the worker pool dispatching admitted requests to engines.
    workers: int = 4
    #: Per-(tenant, lane) admission queue bound.
    queue_depth: int = 16
    #: Default deadlines (relative, simulated seconds) per lane when the
    #: request does not carry its own.
    interactive_deadline_s: float = 30.0
    bulk_deadline_s: float = 600.0
    #: Estimated queue delay above which new bulk requests are shed.  Kept
    #: below the interactive deadline so the bulk lane degrades first: as
    #: saturation grows, bulk backpressure trips before the estimated
    #: delay can render interactive deadlines unmeetable.
    bulk_backpressure_s: float = 15.0
    #: Smoothing factor for the service-time EWMA feeding the delay
    #: estimate (1.0 = only the latest sample).
    service_ewma_alpha: float = 0.2
    #: Initial service-time estimate before any request completed.
    initial_service_estimate_s: float = 1.0
    #: Floor for the retry-after hint attached to shed requests.
    retry_after_min_s: float = 0.5
    #: How many queue-wait / end-to-end latency samples each (tenant,
    #: lane) keeps for percentile reporting (bounded by construction).
    latency_sample_cap: int = 512

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise BestPeerError(f"need at least one worker: {self.workers}")
        if self.queue_depth < 1:
            raise BestPeerError(
                f"queue depth must be positive: {self.queue_depth}"
            )
        if self.interactive_deadline_s <= 0 or self.bulk_deadline_s <= 0:
            raise BestPeerError("lane deadlines must be positive")
        if self.bulk_backpressure_s <= 0:
            raise BestPeerError("backpressure threshold must be positive")
        if not 0.0 < self.service_ewma_alpha <= 1.0:
            raise BestPeerError("EWMA alpha must be in (0, 1]")
        if self.initial_service_estimate_s <= 0:
            raise BestPeerError("initial service estimate must be positive")
        if self.retry_after_min_s < 0:
            raise BestPeerError("retry-after floor must be non-negative")
        if self.latency_sample_cap < 1:
            raise BestPeerError("latency sample cap must be positive")

    def lane_deadline_s(self, lane: str) -> float:
        """The default relative deadline for ``lane``."""
        if lane == LANE_INTERACTIVE:
            return self.interactive_deadline_s
        if lane == LANE_BULK:
            return self.bulk_deadline_s
        raise BestPeerError(f"unknown serving lane: {lane!r}")


@dataclass(frozen=True)
class LeaseConfig:
    """Lease/epoch leadership protocol for the bootstrap HA pair.

    The leader holds a time-bounded lease on the (simulated) lock service;
    it renews whenever less than ``renew_margin_s`` remains.  A standby may
    only acquire the lease — and bump the epoch — after the current lease
    expired, so two leaders can never act under the same epoch.  Lease RPCs
    are priced on the simulated network (``rpc_bytes`` per round trip), and
    log entries shipped to the standby cost ``entry_base_bytes`` plus the
    rendered record size.
    """

    duration_s: float = 120.0
    renew_margin_s: float = 30.0
    rpc_bytes: int = 64
    entry_base_bytes: int = 128

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise BestPeerError("lease duration must be positive")
        if not 0 <= self.renew_margin_s < self.duration_s:
            raise BestPeerError(
                "renew margin must be in [0, lease duration)"
            )
        if self.rpc_bytes < 1 or self.entry_base_bytes < 1:
            raise BestPeerError("RPC/entry byte sizes must be positive")


@dataclass(frozen=True)
class DaemonConfig:
    """Thresholds for Algorithm 1 (auto fail-over / auto-scaling)."""

    cpu_overload_threshold: float = 0.85
    free_storage_threshold_gb: float = 1.0
    storage_increment_gb: float = 5.0
    # How often the daemon wakes up, and how long failure detection takes.
    epoch_s: float = 60.0
    detection_delay_s: float = 30.0
    # Consecutive missed heartbeats before a peer is declared failed.  The
    # default of 1 keeps the historical fail-on-first-miss behaviour; any
    # higher value makes the detector tolerate transient unreachability
    # (message loss, short outages) without spurious fail-overs.
    suspicion_threshold: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.cpu_overload_threshold <= 1:
            raise BestPeerError("CPU threshold must be in (0, 1]")
        if self.epoch_s <= 0:
            raise BestPeerError("epoch must be positive")
        if self.suspicion_threshold < 1:
            raise BestPeerError("suspicion threshold must be >= 1")
