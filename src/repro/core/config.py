"""BestPeer++ configuration.

Collects the tunables of §6.1.2 (MemTable capacity, concurrent fetch
threads), the pay-as-you-go pricing ratios of §5.2 (α, β, γ), and the
thresholds of the bootstrap peer's monitoring daemon (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BestPeerError


@dataclass(frozen=True)
class PricingConfig:
    """Pay-as-you-go cost ratios (Equation 1).

    ``alpha`` — local disk usage ($/byte), ``beta`` — network usage
    ($/byte), ``gamma`` — processing-node rental ($/second).
    """

    alpha: float = 1e-10
    beta: float = 5e-10
    gamma: float = 0.08 / 3600.0  # an m1.small's hourly price, per second

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise BestPeerError("pricing ratios must be non-negative")

    def basic_cost(self, nbytes: int, seconds: float) -> float:
        """Equation (1): C = (α + β)·N + γ·t."""
        if nbytes < 0 or seconds < 0:
            raise BestPeerError("cost inputs must be non-negative")
        return (self.alpha + self.beta) * nbytes + self.gamma * seconds


@dataclass(frozen=True)
class BestPeerConfig:
    """Normal-peer and engine configuration."""

    # §6.1.2: "maximum memory consumed by the MemTable to be 100 MB".
    memtable_capacity_bytes: int = 100 * 1024 * 1024
    # §6.1.2: "20 concurrent threads for fetching data from remote peers".
    fetch_threads: int = 20
    # Bloom-join: equi-join optimization of §5.2.
    bloom_join_enabled: bool = True
    bloom_filter_bits_per_key: int = 10
    bloom_filter_hashes: int = 4
    # Index entry cache (§5.2: peers cache index entries in memory).
    index_cache_enabled: bool = True
    pricing: PricingConfig = field(default_factory=PricingConfig)

    def __post_init__(self) -> None:
        if self.memtable_capacity_bytes <= 0:
            raise BestPeerError("MemTable capacity must be positive")
        if self.fetch_threads < 1:
            raise BestPeerError("need at least one fetch thread")
        if self.bloom_filter_bits_per_key < 1 or self.bloom_filter_hashes < 1:
            raise BestPeerError("bloom filter parameters must be positive")


@dataclass(frozen=True)
class DaemonConfig:
    """Thresholds for Algorithm 1 (auto fail-over / auto-scaling)."""

    cpu_overload_threshold: float = 0.85
    free_storage_threshold_gb: float = 1.0
    storage_increment_gb: float = 5.0
    # How often the daemon wakes up, and how long failure detection takes.
    epoch_s: float = 60.0
    detection_delay_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0 < self.cpu_overload_threshold <= 1:
            raise BestPeerError("CPU threshold must be in (0, 1]")
        if self.epoch_s <= 0:
            raise BestPeerError("epoch must be positive")
