"""BestPeer++ reproduction.

A from-scratch, laptop-scale reproduction of *"BestPeer++: A Peer-to-Peer
Based Large-Scale Data Processing Platform"* (Chen, Hu, Jiang, Lu, Tan, Vo,
Wu — ICDE 2012 / TKDE 26(6) 2014): a cloud-deployed, BATON-organized data
sharing platform for corporate networks, benchmarked against HadoopDB.

Quickstart::

    from repro import BestPeerNetwork
    from repro.tpch import TPCH_SCHEMAS, SECONDARY_INDICES, TpchGenerator, Q2

    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    gen = TpchGenerator(seed=42)
    for i in range(4):
        net.add_peer(f"corp-{i}")
        net.load_peer(f"corp-{i}", gen.generate_peer(i))
    print(net.execute(Q2(), engine="adaptive").scalar())

Package map: :mod:`repro.core` (BestPeer++ itself), :mod:`repro.baton`
(the overlay), :mod:`repro.sqlengine` (the embedded relational engine),
:mod:`repro.mapreduce` (mini Hadoop + HDFS), :mod:`repro.hadoopdb` (the
baseline system), :mod:`repro.tpch` (workloads), :mod:`repro.sim` (the
simulated cloud substrate), :mod:`repro.bench` (benchmark harness).
"""

from repro.core import (
    AdaptiveEngine,
    BasicEngine,
    BestPeerConfig,
    BestPeerMapReduceEngine,
    BestPeerNetwork,
    BootstrapPeer,
    NormalPeer,
    ParallelP2PEngine,
    QueryExecution,
    Role,
)
from repro.hadoopdb import HadoopDbCluster

__version__ = "1.0.0"

__all__ = [
    "BestPeerNetwork",
    "BestPeerConfig",
    "NormalPeer",
    "BootstrapPeer",
    "QueryExecution",
    "BasicEngine",
    "ParallelP2PEngine",
    "BestPeerMapReduceEngine",
    "AdaptiveEngine",
    "Role",
    "HadoopDbCluster",
    "__version__",
]
